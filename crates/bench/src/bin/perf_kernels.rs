//! Criterion-free throughput harness for the four diffusion hot kernels
//! (FTCS step, velocity field, cell advection, density splat) at 1/2/4/8
//! worker threads on 256×256 and 1024×1024 bin grids.
//!
//! Writes `BENCH_kernels.json` at the repository root (or the current
//! directory when not run from the workspace). All workloads are
//! deterministic, so the per-thread runs do identical arithmetic — the
//! timings differ only in scheduling.
//!
//! Usage: `cargo run --release --bin perf_kernels [-- <output-path>]`

use dpm_diffusion::{DiffusionConfig, DiffusionEngine, GlobalDiffusion};
use dpm_geom::Point;
use dpm_netlist::{CellKind, Netlist, NetlistBuilder};
use dpm_par::ThreadPool;
use dpm_place::{BinGrid, DensityMap, Die, Placement};
use std::fmt::Write as _;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured kernel configuration.
struct Sample {
    kernel: &'static str,
    threads: usize,
    calls: u64,
    ns_per_call: f64,
}

/// Deterministic bumpy density field with a wall block, mirroring the
/// bit-identity tests: enough structure that no kernel short-circuits.
fn bumpy_field(n: usize) -> (Vec<f64>, Vec<bool>) {
    let mut density = vec![0.0; n * n];
    for (i, d) in density.iter_mut().enumerate() {
        *d = 0.25 + ((i as u64).wrapping_mul(2654435761) % 997) as f64 / 997.0;
    }
    let mut wall = vec![false; n * n];
    for k in n / 4..n / 4 + n / 8 {
        for j in n / 2..n / 2 + n / 8 {
            wall[k * n + j] = true;
            density[k * n + j] = 0.0;
        }
    }
    (density, wall)
}

/// Synthetic overfull design on an n×n bin grid: cells clustered into the
/// central quarter of the die so the splat, velocity and advection
/// kernels all see real work.
fn clustered_design(n: usize, num_cells: usize) -> (Netlist, Placement, Die) {
    let mut b = NetlistBuilder::new();
    for i in 0..num_cells {
        b.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable);
    }
    let nl = b.build().expect("valid synthetic netlist");
    let side = n as f64;
    let die = Die::new(side, side, 1.0);
    let mut p = Placement::new(nl.num_cells());
    let span = side / 2.0 - 2.0;
    for (i, c) in nl.cell_ids().enumerate() {
        // Deterministic low-discrepancy scatter over the central quarter.
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let fx = (h >> 32) as f64 / 4294967296.0;
        let fy = (h & 0xFFFF_FFFF) as f64 / 4294967296.0;
        p.set(
            c,
            Point::new(side / 4.0 + fx * span, side / 4.0 + fy * span),
        );
    }
    (nl, p, die)
}

fn time_ftcs(n: usize, threads: usize, reps: u64) -> Sample {
    let (density, wall) = bumpy_field(n);
    let mut e = DiffusionEngine::from_raw(n, n, density, Some(wall));
    e.set_threads(threads);
    e.step_density(0.1); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        e.step_density(0.1);
    }
    Sample {
        kernel: "ftcs",
        threads,
        calls: reps,
        ns_per_call: t0.elapsed().as_nanos() as f64 / reps as f64,
    }
}

fn time_velocity(n: usize, threads: usize, reps: u64) -> Sample {
    let (density, wall) = bumpy_field(n);
    let mut e = DiffusionEngine::from_raw(n, n, density, Some(wall));
    e.set_threads(threads);
    e.compute_velocities(); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        e.compute_velocities();
    }
    Sample {
        kernel: "velocity",
        threads,
        calls: reps,
        ns_per_call: t0.elapsed().as_nanos() as f64 / reps as f64,
    }
}

fn time_splat(n: usize, num_cells: usize, threads: usize, reps: u64) -> Sample {
    let (nl, p, die) = clustered_design(n, num_cells);
    let grid = BinGrid::new(die.outline(), 1.0);
    let pool = ThreadPool::new(threads);
    let mut map = DensityMap::from_placement_with_pool(&nl, &p, grid, &pool); // warm-up
    let t0 = Instant::now();
    for _ in 0..reps {
        map.recompute_with_pool(&nl, &p, &pool);
    }
    Sample {
        kernel: "splat",
        threads,
        calls: reps,
        ns_per_call: t0.elapsed().as_nanos() as f64 / reps as f64,
    }
}

fn time_advect(n: usize, num_cells: usize, threads: usize, steps: usize) -> Sample {
    let (nl, mut p, die) = clustered_design(n, num_cells);
    let cfg = DiffusionConfig::default()
        .with_bin_size(1.0)
        .with_max_steps(steps)
        .with_threads(threads);
    let result = GlobalDiffusion::new(cfg).run(&nl, &die, &mut p);
    let advect = result.telemetry.kernels().advect;
    Sample {
        kernel: "advect",
        threads,
        calls: advect.calls,
        ns_per_call: advect.total_ns() as f64 / advect.calls.max(1) as f64,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    eprintln!("perf_kernels: {cores} hardware thread(s) available");

    let mut grids_json = Vec::new();
    for &n in &[256usize, 1024] {
        // Scale repetitions so the large grid stays in budget on one core.
        let reps: u64 = if n <= 256 { 40 } else { 8 };
        let steps: usize = if n <= 256 { 10 } else { 4 };
        // Central-quarter cluster at ~2× target density so global
        // diffusion has genuine overflow to relieve on every grid.
        let num_cells = n * n / 2;

        let mut samples = Vec::new();
        for &t in &THREAD_COUNTS {
            eprintln!("  grid {n}x{n}, {t} thread(s)...");
            samples.push(time_ftcs(n, t, reps));
            samples.push(time_velocity(n, t, reps));
            samples.push(time_splat(n, num_cells, t, reps.min(10)));
            samples.push(time_advect(n, num_cells, t, steps));
        }

        // Speedup at 4 threads vs 1 thread, per kernel.
        let ns_of = |kernel: &str, threads: usize| {
            samples
                .iter()
                .find(|s| s.kernel == kernel && s.threads == threads)
                .map(|s| s.ns_per_call)
                .unwrap_or(f64::NAN)
        };
        let mut body = String::new();
        let _ = write!(body, "    {{\n      \"nx\": {n},\n      \"ny\": {n},\n      \"cells\": {num_cells},\n      \"samples\": [\n");
        for (i, s) in samples.iter().enumerate() {
            let sep = if i + 1 == samples.len() { "" } else { "," };
            let _ = writeln!(
                body,
                "        {{\"kernel\": \"{}\", \"threads\": {}, \"calls\": {}, \"ns_per_call\": {:.1}}}{sep}",
                s.kernel, s.threads, s.calls, s.ns_per_call
            );
        }
        let _ = write!(body, "      ],\n      \"speedup_4t_vs_1t\": {{");
        for (i, k) in ["ftcs", "velocity", "advect", "splat"].iter().enumerate() {
            let sep = if i == 3 { "" } else { ", " };
            let speedup = ns_of(k, 1) / ns_of(k, 4);
            if speedup.is_finite() {
                let _ = write!(body, "\"{k}\": {speedup:.3}{sep}");
            } else {
                let _ = write!(body, "\"{k}\": null{sep}");
            }
        }
        let _ = write!(body, "}}\n    }}");
        grids_json.push(body);
    }

    let json = format!(
        "{{\n  \"bench\": \"perf_kernels\",\n  \"hardware_threads\": {cores},\n  \"thread_counts\": [1, 2, 4, 8],\n  \"note\": \"Deterministic workloads; parallel results are bit-identical to serial. Speedups above 1.0 require more than one hardware thread.\",\n  \"grids\": [\n{}\n  ]\n}}\n",
        grids_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
