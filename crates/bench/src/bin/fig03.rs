//! Fig. 3 — a cell's movement trajectory during diffusion: a smooth,
//! non-direct route around blockages whose steps shrink toward
//! equilibrium. Prints the trajectory and writes an SVG.

use dpm_bench::suite::diffusion_cfg;
use dpm_bench::{scale_from_env, write_result_file, CKT_DEFAULT_SCALE};
use dpm_diffusion::trace_global_diffusion;
use dpm_gen::suites::ckt_suite;
use dpm_gen::InflationSpec;
use dpm_viz::SvgScene;

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Fig. 3 at scale {scale} (ckt1 with macros, hotspot, traced cells).");
    let entry = &ckt_suite(scale)[0];
    let mut spec = entry.spec.clone();
    spec.num_macros = 2; // trajectories must bend around blockages
    let mut bench = spec.generate();
    bench.inflate(&InflationSpec::centered(0.18, 0.3, 33));

    // Trace the ten cells nearest the die center.
    let center = bench.die.outline().center();
    let mut by_dist: Vec<_> = bench.netlist.movable_cell_ids().collect();
    by_dist.sort_by(|&a, &b| {
        bench
            .placement
            .cell_center(&bench.netlist, a)
            .distance(center)
            .total_cmp(
                &bench
                    .placement
                    .cell_center(&bench.netlist, b)
                    .distance(center),
            )
    });
    let traced: Vec<_> = by_dist.into_iter().take(10).collect();

    let cfg = diffusion_cfg(&bench).with_delta(0.05); // long run → visible route
    let mut placement = bench.placement.clone();
    let run = trace_global_diffusion(&cfg, &bench.netlist, &bench.die, &mut placement, &traced);
    println!(
        "diffused {} steps (converged: {})",
        run.result.steps, run.result.converged
    );

    // Print the most-travelled trajectory like the paper's figure.
    let star = run
        .trajectories
        .iter()
        .max_by(|a, b| a.path_length().total_cmp(&b.path_length()))
        .expect("traced cells");
    println!(
        "cell {} travelled {:.1} (net {:.1}) over {} steps:",
        star.cell,
        star.path_length(),
        star.net_displacement(),
        star.points.len() - 1
    );
    let lens = star.step_lengths();
    for (i, chunk) in lens.chunks(lens.len().div_ceil(9).max(1)).enumerate() {
        let d: f64 = chunk.iter().sum();
        println!("  phase {i}: moved {d:.2}");
    }

    // SVG with the routes drawn as polylines.
    let lines: Vec<Vec<dpm_geom::Point>> =
        run.trajectories.iter().map(|t| t.points.clone()).collect();
    let scene = SvgScene::new(bench.die.outline())
        .with_placement(&bench.netlist, &placement)
        .with_polylines(&lines, "black")
        .render();
    let path = write_result_file("fig03_trajectories.svg", &scene);
    println!("wrote {}", path.display());
}
