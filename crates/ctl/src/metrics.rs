//! Control-plane metrics: one `dpm-obs` registry, with per-tenant
//! instruments named via [`labeled`].
//!
//! Global counters mirror the single-server
//! [`StatsSnapshot`] so existing clients can
//! ask a control plane for stats over the same wire frame; on top of
//! those, the cache/delta/failover counters and the per-tenant
//! `jobs_ok{tenant="…"}` / `e2e_ns{tenant="…"}` family only the
//! control plane has.

use dpm_obs::{labeled, Counter, Histogram, HistogramSnapshot, Registry};
use dpm_serve::wire::StatsSnapshot;

/// Handles for one tenant's instruments.
pub struct TenantMetrics {
    /// The tenant's configured name (the metric label value).
    pub name: String,
    /// Jobs finished with a success reply.
    pub jobs_ok: Counter,
    /// Jobs finished with an error reply.
    pub jobs_err: Counter,
    /// Admission → reply-queued latency, nanoseconds.
    pub e2e: Histogram,
}

/// All control-plane instruments, pre-registered at startup so the hot
/// path never takes the registry lock.
pub struct CtlMetrics {
    registry: Registry,
    /// Frames read off connections (any kind).
    pub received: Counter,
    /// Jobs admitted to the fair queue.
    pub admitted: Counter,
    /// Jobs served to completion (ok or error reply).
    pub served: Counter,
    /// Jobs rejected with a full tenant queue.
    pub overloaded: Counter,
    /// Frames or payloads that failed to decode, plus unknown tenants.
    pub malformed: Counter,
    /// Jobs rejected for invalid diffusion parameters.
    pub invalid_config: Counter,
    /// Jobs rejected during shutdown.
    pub rejected_shutdown: Counter,
    /// Jobs whose deadline expired.
    pub deadline_expired: Counter,
    /// Worker-side failures converted to internal-error replies.
    pub internal_errors: Counter,
    /// Progress frames streamed to clients.
    pub progress_frames: Counter,
    /// Baseline uploads accepted.
    pub put_designs: Counter,
    /// Delta requests received.
    pub delta_requests: Counter,
    /// Delta requests whose baseline was resident.
    pub cache_hits: Counter,
    /// Delta requests answered with `NeedDesign`.
    pub need_design: Counter,
    /// Baselines evicted from the design cache.
    pub cache_evictions: Counter,
    /// Intra-job warm-spare failovers reported by the shard router.
    pub failovers: Counter,
    /// Permanent primary replacements performed by the registry.
    pub replacements: Counter,
    /// Queue-wait latency, nanoseconds.
    pub queue_hist: Histogram,
    /// Diffusion service latency, nanoseconds.
    pub service_hist: Histogram,
    /// End-to-end latency, nanoseconds.
    pub e2e_hist: Histogram,
    tenants: Vec<TenantMetrics>,
}

impl CtlMetrics {
    /// Registers the full instrument set for the given tenants.
    pub fn new(tenant_names: &[String]) -> Self {
        let registry = Registry::new();
        let bounds = Histogram::latency_bounds();
        let counter = |name: &str| registry.counter(name);
        let tenants = tenant_names
            .iter()
            .map(|name| TenantMetrics {
                name: name.clone(),
                jobs_ok: registry.counter(&labeled("jobs_ok", &[("tenant", name)])),
                jobs_err: registry.counter(&labeled("jobs_err", &[("tenant", name)])),
                e2e: registry.histogram(&labeled("e2e_ns", &[("tenant", name)]), &bounds),
            })
            .collect();
        Self {
            received: counter("received"),
            admitted: counter("admitted"),
            served: counter("served"),
            overloaded: counter("overloaded"),
            malformed: counter("malformed"),
            invalid_config: counter("invalid_config"),
            rejected_shutdown: counter("rejected_shutdown"),
            deadline_expired: counter("deadline_expired"),
            internal_errors: counter("internal_errors"),
            progress_frames: counter("progress_frames"),
            put_designs: counter("put_designs"),
            delta_requests: counter("delta_requests"),
            cache_hits: counter("cache_hits"),
            need_design: counter("need_design"),
            cache_evictions: counter("cache_evictions"),
            failovers: counter("failovers"),
            replacements: counter("replacements"),
            queue_hist: registry.histogram("queue_ns", &bounds),
            service_hist: registry.histogram("service_ns", &bounds),
            e2e_hist: registry.histogram("e2e_ns", &bounds),
            tenants,
            registry,
        }
    }

    /// Instruments for the tenant at `index` (fair-queue order).
    pub fn tenant(&self, index: usize) -> &TenantMetrics {
        &self.tenants[index]
    }

    /// All per-tenant instrument sets, in fair-queue order.
    pub fn tenants(&self) -> &[TenantMetrics] {
        &self.tenants
    }

    /// The underlying registry, for text exposition or merging.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Builds the wire-compatible stats snapshot a `StatsRequest`
    /// frame is answered with. Control-plane-only counters (cache,
    /// failover, per-tenant) are visible via
    /// [`registry`](Self::registry) instead — the wire snapshot keeps
    /// the single-server shape so v2 clients can decode it.
    pub fn stats_snapshot(&self, queue_depth: u64) -> StatsSnapshot {
        StatsSnapshot {
            queue_depth,
            received: self.received.get(),
            admitted: self.admitted.get(),
            served: self.served.get(),
            overloaded: self.overloaded.get(),
            invalid_config: self.invalid_config.get(),
            malformed: self.malformed.get(),
            deadline_expired: self.deadline_expired.get(),
            rejected_shutdown: self.rejected_shutdown.get(),
            internal_errors: self.internal_errors.get(),
            progress_frames: self.progress_frames.get(),
            queue_hist: self.queue_hist.snapshot(),
            service_hist: self.service_hist.snapshot(),
            e2e_hist: self.e2e_hist.snapshot(),
            kernels: Default::default(),
        }
    }

    /// Convenience: a tenant's end-to-end latency distribution.
    pub fn tenant_e2e(&self, index: usize) -> HistogramSnapshot {
        self.tenants[index].e2e.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tenant_instruments_are_labeled_and_independent() {
        let m = CtlMetrics::new(&["acme".into(), "zeta".into()]);
        m.tenant(0).jobs_ok.inc();
        m.tenant(1).jobs_ok.add(3);
        m.tenant(0).e2e.record(1_000);
        assert_eq!(m.tenant(0).jobs_ok.get(), 1);
        assert_eq!(m.tenant(1).jobs_ok.get(), 3);
        let text = m.registry().snapshot().to_text();
        assert!(text.contains("jobs_ok{tenant=\"acme\"} 1"), "{text}");
        assert!(text.contains("jobs_ok{tenant=\"zeta\"} 3"), "{text}");
        assert_eq!(m.tenant_e2e(0).count, 1);
        assert_eq!(m.tenant_e2e(1).count, 0);
    }

    #[test]
    fn stats_snapshot_round_trips_the_wire_shape() {
        let m = CtlMetrics::new(&["a".into()]);
        m.received.add(5);
        m.served.add(4);
        let snap = m.stats_snapshot(2);
        assert_eq!(snap.queue_depth, 2);
        assert_eq!(snap.received, 5);
        let bytes = dpm_serve::wire::encode_stats(&snap);
        let back = dpm_serve::wire::decode_stats(&bytes).unwrap();
        assert_eq!(back, snap);
    }
}
