#!/usr/bin/env bash
# Hermetic CI gate: formatting, lints, docs, build, tests, a thread-count
# determinism matrix and two service smoke tests, all offline.
#
# The workspace has zero registry dependencies by design — everything
# resolves from path crates — so `--offline` must always succeed. Any
# registry access here is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

# Every tempfile is tracked and removed on any exit path (success,
# failure, or signal) — a failing grep must not leak mktemp droppings.
tmpfiles=()
cleanup() {
    ((${#tmpfiles[@]})) && rm -f "${tmpfiles[@]}" || true
}
trap cleanup EXIT
mktemp_tracked() {
    local f
    f="$(mktemp)"
    tmpfiles+=("$f")
    printf '%s' "$f"
}

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --release --offline --workspace --all-targets -- -D warnings

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --release --offline --workspace

echo "==> determinism matrix (DPM_SOLVER in ftcs spectral, DPM_THREADS in 1 2 4)"
# The dpm-par decomposition is independent of the worker count, so the
# core diffusion suite must pass and the golden placement checksum must
# be bit-identical at every thread count — for both the stepped FTCS
# solver and the closed-form spectral solver (whose transforms are
# serial by design; its velocity/advect/splat kernels still fan out).
# Each solver pins its own reference checksum: the two solvers produce
# different (both valid) placements, but neither may vary with threads.
for solver in ftcs spectral; do
    checksum_ref=""
    vol_ref=""
    for t in 1 2 4; do
        echo "  -> DPM_SOLVER=$solver DPM_THREADS=$t: dpm-diffusion test suite"
        DPM_SOLVER=$solver DPM_THREADS=$t cargo test -q --release --offline -p dpm-diffusion
        sum_out="$(mktemp_tracked)"
        DPM_SOLVER=$solver DPM_THREADS=$t cargo run --release --offline -p dpm-bench --bin golden_checksum >"$sum_out" 2>/dev/null
        if [[ -z "$checksum_ref" ]]; then
            checksum_ref="$sum_out"
            echo "  -> golden checksum ($solver) @1 thread: $(cat "$sum_out")"
        elif ! diff -q "$checksum_ref" "$sum_out" >/dev/null; then
            echo "DETERMINISM BREAK: $solver checksum at DPM_THREADS=$t differs:" >&2
            diff "$checksum_ref" "$sum_out" >&2 || true
            exit 1
        fi
        # The volumetric (3-tier) leg of the same matrix: one 3D
        # migration, hashed over position, depth, and field bits.
        vol_out="$(mktemp_tracked)"
        DPM_SOLVER=$solver DPM_THREADS=$t cargo run --release --offline -p dpm-bench --bin golden_checksum -- vol >"$vol_out" 2>/dev/null
        if [[ -z "$vol_ref" ]]; then
            vol_ref="$vol_out"
            echo "  -> volumetric checksum ($solver) @1 thread: $(cat "$vol_out")"
        elif ! diff -q "$vol_ref" "$vol_out" >/dev/null; then
            echo "DETERMINISM BREAK: $solver volumetric checksum at DPM_THREADS=$t differs:" >&2
            diff "$vol_ref" "$vol_out" >&2 || true
            exit 1
        fi
    done
done

echo "==> kernel smoke test (perf_kernels --smoke)"
# Runs the kernel harness on a 64x64 grid, including the spectral-vs-FTCS
# race; the greps pin the race section (wall-clock jump comparison and
# the field-update FLOP model) into the emitted JSON.
kernels_out="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_kernels -- --smoke "$kernels_out" >/dev/null
grep -q '"bench": "perf_kernels"' "$kernels_out"
grep -q '"spectral_vs_ftcs"' "$kernels_out"
grep -q '"spectral_round_trip_ns"' "$kernels_out"
grep -q '"field_update_flops"' "$kernels_out"
grep -q '"flops_ratio"' "$kernels_out"
# The volumetric 7-point stencil section, timed at every thread count.
grep -q '"stencil3d"' "$kernels_out"
grep -q '"nz": 4' "$kernels_out"
grep -Eq '"kernel": "stencil3d", "threads": 8' "$kernels_out"

echo "==> service smoke test (perf_serve --smoke --pipeline 2)"
# Boots a real server on an ephemeral port, replays a deterministic
# open-loop schedule with two requests pipelined per connection, and
# asserts every request was answered and the shutdown drained cleanly
# (the binary exits non-zero otherwise). The schedule includes streamed
# requests, so at least one in-flight progress frame must arrive before
# its response, and the wire-level stats snapshot must agree with the
# server's own counters — both enforced inside the binary; the greps
# below pin the observability fields into the emitted JSON.
smoke_out="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_serve -- "$smoke_out" --smoke --pipeline 2 >/dev/null
grep -q '"bench": "perf_serve"' "$smoke_out"
grep -q '"hardware_threads"' "$smoke_out"
grep -q '"p99_us"' "$smoke_out"
grep -q '"head_of_line"' "$smoke_out"
grep -Eq '"progress_frames": [1-9][0-9]*' "$smoke_out"

echo "==> control-plane smoke test (perf_serve --smoke --tenants 2)"
# Boots the dpm-ctl control plane in sharded mode over a backend
# registry seeded with one dead primary and a warm spare, opens 1000
# idle connections through the poll-based front-end, and replays two
# tenants' ECO loops: one NeedDesign upload each, then delta-only
# requests with a cold full resend mixed in. The binary asserts every
# request was answered, exact cache-hit accounting, and that the dead
# primary was permanently replaced; the greps pin the multi-tenant
# telemetry — cache traffic, delta traffic, and per-tenant tail
# latency — into the emitted JSON.
ctl_out="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_serve -- "$ctl_out" --smoke --tenants 2 >/dev/null
grep -q '"bench": "perf_serve"' "$ctl_out"
grep -q '"mode": "multi_tenant_smoke"' "$ctl_out"
grep -q '"tenants": 2' "$ctl_out"
grep -Eq '"idle_connections": 1000' "$ctl_out"
grep -Eq '"cache_hits": [1-9][0-9]*' "$ctl_out"
grep -Eq '"delta_requests": [1-9][0-9]*' "$ctl_out"
grep -Eq '"need_design": [1-9][0-9]*' "$ctl_out"
grep -Eq '"replacements": [1-9][0-9]*' "$ctl_out"
grep -q '"tenant0": {"weight"' "$ctl_out"
grep -q '"tenant1": {"weight"' "$ctl_out"
grep -q '"p99_us"' "$ctl_out"

echo "==> trace smoke test (perf_serve --smoke --tenants 2 --trace-out)"
# Re-runs the control-plane smoke with tracing armed on one extra job
# and exports its stitched span tree as Chrome trace_event JSONL. The
# greps pin the fleet-wide trace shape: every line carries the same
# trace_id (root + front-end admission + shard dispatches + kernel
# spans all stitched into one tree), and the tenant label rides the
# root span's args.
trace_json="$(mktemp_tracked)"
trace_jsonl="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_serve -- "$trace_json" --smoke --tenants 2 --trace-out "$trace_jsonl" >/dev/null
grep -q '"name":"client.request"' "$trace_jsonl"
grep -q '"name":"ctl.admit' "$trace_jsonl"
grep -q '"name":"queue.wait"' "$trace_jsonl"
grep -q '"name":"shard.dispatch"' "$trace_jsonl"
grep -q '"name":"kernel.' "$trace_jsonl"
grep -q '"tenant":"tenant0"' "$trace_jsonl"
trace_ids=$(grep -o '"trace_id":"[0-9a-f]*"' "$trace_jsonl" | sort -u | wc -l)
if [[ "$trace_ids" -ne 1 ]]; then
    echo "TRACE BREAK: expected one trace_id in $trace_jsonl, found $trace_ids" >&2
    exit 1
fi

echo "==> bench guard (committed BENCH_*.json keys must not disappear)"
# A benchmark rewrite that drops a previously-recorded field silently
# erases history — every key present in the committed BENCH_*.json must
# survive in the worktree copy (new keys are fine).
for f in BENCH_*.json; do
    [[ -f "$f" ]] || continue
    git cat-file -e "HEAD:$f" 2>/dev/null || continue
    head_keys="$(mktemp_tracked)"
    work_keys="$(mktemp_tracked)"
    git show "HEAD:$f" | grep -o '"[A-Za-z0-9_]*":' | sort -u >"$head_keys"
    grep -o '"[A-Za-z0-9_]*":' "$f" | sort -u >"$work_keys"
    lost=$(comm -23 "$head_keys" "$work_keys")
    if [[ -n "$lost" ]]; then
        echo "BENCH GUARD: $f lost committed keys:" >&2
        echo "$lost" >&2
        exit 1
    fi
done

echo "==> shard smoke test (perf_shard --smoke)"
# Boots a 2-shard router over two TCP servers on ephemeral ports and
# replays one streamed request. The binary asserts the maximum-principle
# trace, error-free shards, and nonzero progress frames; the greps pin
# the shard telemetry into the emitted JSON.
shard_out="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_shard -- "$shard_out" --smoke >/dev/null
grep -q '"bench": "perf_shard"' "$shard_out"
grep -q '"shards": 2' "$shard_out"
grep -Eq '"halo_exchanges": [1-9][0-9]*' "$shard_out"

echo "CI green."
