//! End-to-end integration tests: generate → inflate → legalize → verify,
//! across every legalizer and workload family.

use diffuplace::gen::{CircuitSpec, InflationSpec};
use diffuplace::legalize::{
    run_legalizer, DetailedLegalizer, DiffusionLegalizer, FlowLegalizer, GemLegalizer,
    GreedyLegalizer, Legalizer, RowDpLegalizer, TetrisLegalizer,
};
use diffuplace::place::{check_legality, hpwl, MovementStats};
use diffuplace::sta::{DelayModel, TimingAnalyzer};

fn all_legalizers() -> Vec<Box<dyn Legalizer>> {
    vec![
        Box::new(DetailedLegalizer::new()),
        Box::new(GreedyLegalizer::new()),
        Box::new(FlowLegalizer::new()),
        Box::new(TetrisLegalizer::new()),
        Box::new(RowDpLegalizer::new()),
        Box::new(GemLegalizer::new()),
        Box::new(DiffusionLegalizer::global_default()),
        Box::new(DiffusionLegalizer::local_default()),
    ]
}

#[test]
fn every_legalizer_produces_legal_placements_on_random_inflation() {
    let mut bench = CircuitSpec::small(101).generate();
    bench.inflate(&InflationSpec::random_width(0.1, 1.6, 102));
    for legalizer in all_legalizers() {
        let mut placement = bench.placement.clone();
        let outcome = run_legalizer(
            legalizer.as_ref(),
            &bench.netlist,
            &bench.die,
            &mut placement,
        );
        assert!(outcome.is_legal, "{} failed: {outcome}", legalizer.name());
    }
}

#[test]
fn every_legalizer_produces_legal_placements_on_hotspot() {
    let mut bench = CircuitSpec::small(103).generate();
    bench.inflate(&InflationSpec::centered(0.15, 0.3, 104));
    for legalizer in all_legalizers() {
        let mut placement = bench.placement.clone();
        let outcome = run_legalizer(
            legalizer.as_ref(),
            &bench.netlist,
            &bench.die,
            &mut placement,
        );
        assert!(outcome.is_legal, "{} failed: {outcome}", legalizer.name());
    }
}

#[test]
fn every_legalizer_handles_macros() {
    let mut bench = CircuitSpec::small(105).with_macros(3).generate();
    bench.inflate(&InflationSpec::random_width(0.08, 1.5, 106));
    for legalizer in all_legalizers() {
        let mut placement = bench.placement.clone();
        let outcome = run_legalizer(
            legalizer.as_ref(),
            &bench.netlist,
            &bench.die,
            &mut placement,
        );
        assert!(
            outcome.is_legal,
            "{} failed with macros: {outcome}",
            legalizer.name()
        );
        // Macros themselves must not have been moved.
        for m in bench.netlist.macro_ids() {
            assert_eq!(
                placement.get(m),
                bench.placement.get(m),
                "{} moved a macro",
                legalizer.name()
            );
        }
    }
}

#[test]
fn diffusion_preserves_wirelength_better_than_packing_on_hotspot() {
    // The paper's central quality claim, end to end.
    let mut bench = CircuitSpec::with_size("e2e", 2_000, 107).generate();
    bench.inflate(&InflationSpec::center_width(0.1, 1.6));

    let mut p_diff = bench.placement.clone();
    run_legalizer(
        &DiffusionLegalizer::local_default(),
        &bench.netlist,
        &bench.die,
        &mut p_diff,
    );
    let twl_diff = hpwl(&bench.netlist, &p_diff);

    let mut p_tetris = bench.placement.clone();
    run_legalizer(
        &TetrisLegalizer::new(),
        &bench.netlist,
        &bench.die,
        &mut p_tetris,
    );
    let twl_tetris = hpwl(&bench.netlist, &p_tetris);

    assert!(
        twl_diff < twl_tetris,
        "diffusion TWL {twl_diff} should beat Tetris packing {twl_tetris} on a hotspot"
    );
}

#[test]
fn diffusion_max_movement_beats_baselines_on_hotspot() {
    let mut bench = CircuitSpec::with_size("e2e_mv", 2_000, 109).generate();
    bench.inflate(&InflationSpec::center_width(0.1, 1.6));

    let mut p_diff = bench.placement.clone();
    run_legalizer(
        &DiffusionLegalizer::local_default(),
        &bench.netlist,
        &bench.die,
        &mut p_diff,
    );
    let m_diff = MovementStats::between(&bench.netlist, &bench.placement, &p_diff);

    let mut p_tetris = bench.placement.clone();
    run_legalizer(
        &TetrisLegalizer::new(),
        &bench.netlist,
        &bench.die,
        &mut p_tetris,
    );
    let m_tetris = MovementStats::between(&bench.netlist, &bench.placement, &p_tetris);

    assert!(
        m_diff.max < m_tetris.max,
        "diffusion max move {} should beat Tetris {}",
        m_diff.max,
        m_tetris.max
    );
}

#[test]
fn timing_pipeline_is_consistent_across_legalization() {
    let mut bench = CircuitSpec::small(111).generate();
    let sta = TimingAnalyzer::new(&bench.netlist, DelayModel::default());
    let clock = sta.critical_path_delay(&bench.netlist, &bench.placement) * 1.05;
    let before = sta.analyze(&bench.netlist, &bench.placement, clock);
    assert!(
        before.wns > 0.0,
        "base design should meet a 5%-relaxed clock"
    );

    bench.inflate(&InflationSpec::random_width(0.1, 1.6, 112));
    let mut placement = bench.placement.clone();
    run_legalizer(
        &DiffusionLegalizer::local_default(),
        &bench.netlist,
        &bench.die,
        &mut placement,
    );
    let after = TimingAnalyzer::new(&bench.netlist, DelayModel::default()).analyze(
        &bench.netlist,
        &placement,
        clock,
    );
    // Timing may degrade but must stay in a sane band.
    assert!(after.wns > -(clock * 2.0), "WNS collapsed: {}", after.wns);
}

#[test]
fn legalization_is_idempotent() {
    // Running a legalizer on its own (legal) output must not change it
    // materially.
    let mut bench = CircuitSpec::small(113).generate();
    bench.inflate(&InflationSpec::random_width(0.1, 1.6, 114));
    for legalizer in [
        Box::new(DiffusionLegalizer::local_default()) as Box<dyn Legalizer>,
        Box::new(GreedyLegalizer::new()),
        Box::new(DetailedLegalizer::new()),
    ] {
        let mut once = bench.placement.clone();
        run_legalizer(legalizer.as_ref(), &bench.netlist, &bench.die, &mut once);
        let mut twice = once.clone();
        run_legalizer(legalizer.as_ref(), &bench.netlist, &bench.die, &mut twice);
        let m = MovementStats::between(&bench.netlist, &once, &twice);
        assert!(
            m.max < bench.die.row_height() * 3.0,
            "{} is not near-idempotent: max re-move {}",
            legalizer.name(),
            m.max
        );
        assert!(check_legality(&bench.netlist, &bench.die, &twice, 0).is_legal());
    }
}

#[test]
fn results_are_deterministic_across_runs() {
    let run = || {
        let mut bench = CircuitSpec::small(115).generate();
        bench.inflate(&InflationSpec::centered(0.12, 0.3, 116));
        let mut placement = bench.placement.clone();
        run_legalizer(
            &DiffusionLegalizer::local_default(),
            &bench.netlist,
            &bench.die,
            &mut placement,
        );
        hpwl(&bench.netlist, &placement)
    };
    assert_eq!(run(), run());
}
