#![warn(missing_docs)]

//! Placement model: die geometry, cell positions, bin grids, density maps,
//! wirelength, legality checking, and movement statistics.
//!
//! This crate is the physical substrate shared by the diffusion engine and
//! every legalizer: a [`Placement`] assigns each cell of a
//! [`Netlist`](dpm_netlist::Netlist) a lower-left corner inside a [`Die`]
//! made of standard-cell rows; a [`BinGrid`] discretizes the die into equal
//! bins; a [`DensityMap`] measures per-bin area utilization (the quantity
//! the diffusion equation evolves); [`hpwl`] measures total half-perimeter
//! wirelength; [`LegalityReport`] checks row alignment and overlap freedom;
//! and [`MovementStats`] quantifies how much a migration perturbed the
//! design.
//!
//! # Examples
//!
//! ```
//! use dpm_geom::Point;
//! use dpm_netlist::{NetlistBuilder, CellKind, PinDir};
//! use dpm_place::{Die, Placement, hpwl};
//!
//! let mut b = NetlistBuilder::new();
//! let u = b.add_cell("u", 4.0, 12.0, CellKind::Movable);
//! let v = b.add_cell("v", 4.0, 12.0, CellKind::Movable);
//! let n = b.add_net("n");
//! b.connect(u, n, PinDir::Output, 4.0, 6.0);
//! b.connect(v, n, PinDir::Input, 0.0, 6.0);
//! let nl = b.build()?;
//!
//! let die = Die::new(120.0, 120.0, 12.0);
//! let mut p = Placement::new(nl.num_cells());
//! p.set(u, Point::new(0.0, 0.0));
//! p.set(v, Point::new(10.0, 0.0));
//! assert_eq!(hpwl(&nl, &p), 6.0); // driver pin at x=4, sink pin at x=10
//! # Ok::<(), dpm_netlist::BuildNetlistError>(())
//! ```

mod bins;
mod density;
mod die;
mod hpwl;
mod legality;
mod movement;
mod placement;

pub use bins::{BinGrid, BinIdx};
pub use density::DensityMap;
pub use die::{Die, Row};
pub use hpwl::{hpwl, net_bbox, net_hpwl};
pub use legality::{check_legality, LegalityReport, Violation};
pub use movement::MovementStats;
pub use placement::Placement;
