//! The diffuplace command-line tool: legalize a Bookshelf placement.
//!
//! ```text
//! diffuplace legalize <design.aux> [--legalizer diff-local|diff-global|greedy|flow|tetris|row-dp|gem]
//!                     [--out <out.pl>] [--svg <plot.svg>]
//! diffuplace check <design.aux>
//! diffuplace export-demo <dir>      # write a small synthetic design as Bookshelf files
//! ```

use diffuplace::bookshelf::{load_design, parse_aux, BookshelfDesign, LoadedDesign};
use diffuplace::legalize::{
    run_legalizer, DiffusionLegalizer, FlowLegalizer, GemLegalizer, GreedyLegalizer, Legalizer,
    RowDpLegalizer, TetrisLegalizer,
};
use diffuplace::place::{check_legality, hpwl, MovementStats};
use diffuplace::viz::SvgScene;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("legalize") => cmd_legalize(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("export-demo") => cmd_export_demo(&args[1..]),
        _ => {
            eprintln!("usage: diffuplace <legalize|check|export-demo> ...");
            eprintln!(
                "  legalize <design.aux> [--legalizer NAME] [--out FILE.pl] [--svg FILE.svg]"
            );
            eprintln!("  check <design.aux>");
            eprintln!("  export-demo <dir>");
            ExitCode::from(2)
        }
    }
}

fn load(aux_path: &Path) -> Result<LoadedDesign, String> {
    let aux = std::fs::read_to_string(aux_path)
        .map_err(|e| format!("cannot read {}: {e}", aux_path.display()))?;
    let files = parse_aux(&aux).map_err(|e| e.to_string())?;
    let dir = aux_path.parent().unwrap_or(Path::new("."));
    let find = |ext: &str| -> Result<String, String> {
        let name = files
            .iter()
            .find(|f| f.ends_with(ext))
            .ok_or_else(|| format!("aux file lists no {ext}"))?;
        std::fs::read_to_string(dir.join(name)).map_err(|e| format!("cannot read {name}: {e}"))
    };
    load_design(
        &find(".nodes")?,
        &find(".nets")?,
        &find(".pl")?,
        &find(".scl")?,
    )
    .map_err(|e| e.to_string())
}

fn pick_legalizer(name: &str) -> Option<Box<dyn Legalizer>> {
    Some(match name {
        "diff-local" => Box::new(DiffusionLegalizer::local_default()),
        "diff-global" => Box::new(DiffusionLegalizer::global_default()),
        "greedy" => Box::new(GreedyLegalizer::new()),
        "flow" => Box::new(FlowLegalizer::new()),
        "tetris" => Box::new(TetrisLegalizer::new()),
        "row-dp" => Box::new(RowDpLegalizer::new()),
        "gem" => Box::new(GemLegalizer::new()),
        _ => return None,
    })
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_legalize(args: &[String]) -> ExitCode {
    let Some(aux) = args.first() else {
        eprintln!("legalize: missing <design.aux>");
        return ExitCode::from(2);
    };
    let legalizer_name = flag(args, "--legalizer").unwrap_or_else(|| "diff-local".into());
    let Some(legalizer) = pick_legalizer(&legalizer_name) else {
        eprintln!("unknown legalizer '{legalizer_name}'");
        return ExitCode::from(2);
    };
    let design = match load(Path::new(aux)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let before_twl = hpwl(&design.netlist, &design.placement);
    let before = check_legality(&design.netlist, &design.die, &design.placement, 0);
    println!(
        "loaded: {} cells, {} nets, {} rows | TWL {:.0} | {} violations",
        design.netlist.num_cells(),
        design.netlist.num_nets(),
        design.die.num_rows(),
        before_twl,
        before.violation_count
    );

    let mut placement = design.placement.clone();
    let outcome = run_legalizer(
        legalizer.as_ref(),
        &design.netlist,
        &design.die,
        &mut placement,
    );
    let moves = MovementStats::between(&design.netlist, &design.placement, &placement);
    let after_twl = hpwl(&design.netlist, &placement);
    println!(
        "{}: {} | TWL {:.0} ({:+.2}%) | moved {} cells, max {:.1}, total {:.1}",
        legalizer.name(),
        outcome,
        after_twl,
        (after_twl / before_twl - 1.0) * 100.0,
        moves.moved,
        moves.max,
        moves.total
    );

    let out = flag(args, "--out")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(aux).with_extension("legal.pl"));
    let export = BookshelfDesign::from_parts(&design.netlist, &design.die, &placement);
    if let Err(e) = std::fs::write(&out, export.write_pl()) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {}", out.display());

    if let Some(svg_path) = flag(args, "--svg") {
        let svg = SvgScene::new(design.die.outline())
            .with_placement(&design.netlist, &placement)
            .with_movements(
                &design.netlist,
                &design.placement,
                &placement,
                design.die.row_height(),
            )
            .render();
        if let Err(e) = std::fs::write(&svg_path, svg) {
            eprintln!("cannot write {svg_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {svg_path}");
    }
    if outcome.is_legal {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(aux) = args.first() else {
        eprintln!("check: missing <design.aux>");
        return ExitCode::from(2);
    };
    match load(Path::new(aux)) {
        Ok(design) => {
            let report = check_legality(&design.netlist, &design.die, &design.placement, 10);
            println!("TWL {:.0}", hpwl(&design.netlist, &design.placement));
            println!("{report}");
            for v in &report.violations {
                println!("  {v}");
            }
            if report.is_legal() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_export_demo(args: &[String]) -> ExitCode {
    let dir = PathBuf::from(args.first().cloned().unwrap_or_else(|| "demo".into()));
    let mut bench = diffuplace::gen::CircuitSpec::small(1).generate();
    bench.inflate(&diffuplace::gen::InflationSpec::random_width(0.1, 1.6, 2));
    let design = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
    match design.save_to(&dir, "demo") {
        Ok(()) => {
            println!(
                "wrote {}/demo.aux (+ nodes/nets/pl/scl) — 1000 cells, 10% inflated",
                dir.display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write demo: {e}");
            ExitCode::FAILURE
        }
    }
}
