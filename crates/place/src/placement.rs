//! Cell position assignment.

use dpm_geom::{Point, Rect};
use dpm_netlist::{CellId, NetId, Netlist, PinId};

/// An assignment of a lower-left corner to every cell of a netlist.
///
/// `Placement` is deliberately a plain parallel array: the diffusion engine
/// advects hundreds of thousands of positions per step and the legalizers
/// snapshot/restore placements wholesale, so positions are stored densely
/// and accessed by [`CellId`] index.
///
/// # Examples
///
/// ```
/// use dpm_geom::Point;
/// use dpm_netlist::CellId;
/// use dpm_place::Placement;
///
/// let mut p = Placement::new(3);
/// p.set(CellId::new(1), Point::new(5.0, 7.0));
/// assert_eq!(p.get(CellId::new(1)), Point::new(5.0, 7.0));
/// assert_eq!(p.get(CellId::new(0)), Point::new(0.0, 0.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Placement {
    positions: Vec<Point>,
}

impl Placement {
    /// Creates a placement for `num_cells` cells, all at the origin.
    pub fn new(num_cells: usize) -> Self {
        Self {
            positions: vec![Point::ORIGIN; num_cells],
        }
    }

    /// Number of cells this placement covers.
    #[inline]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// `true` if the placement covers no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The lower-left corner of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[inline]
    pub fn get(&self, cell: CellId) -> Point {
        self.positions[cell.index()]
    }

    /// Sets the lower-left corner of `cell`.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[inline]
    pub fn set(&mut self, cell: CellId, p: Point) {
        self.positions[cell.index()] = p;
    }

    /// All positions as a slice indexed by cell.
    #[inline]
    pub fn as_slice(&self) -> &[Point] {
        &self.positions
    }

    /// All positions as a mutable slice indexed by cell.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Point] {
        &mut self.positions
    }

    /// The occupied rectangle of `cell` under this placement.
    #[inline]
    pub fn cell_rect(&self, netlist: &Netlist, cell: CellId) -> Rect {
        let c = netlist.cell(cell);
        Rect::from_origin_size(self.get(cell), c.width, c.height)
    }

    /// The center of `cell` under this placement.
    #[inline]
    pub fn cell_center(&self, netlist: &Netlist, cell: CellId) -> Point {
        let c = netlist.cell(cell);
        let p = self.get(cell);
        Point::new(p.x + c.width / 2.0, p.y + c.height / 2.0)
    }

    /// The absolute position of a pin (cell position plus pin offset).
    #[inline]
    pub fn pin_position(&self, netlist: &Netlist, pin: PinId) -> Point {
        let p = netlist.pin(pin);
        self.get(p.cell) + (p.offset - Point::ORIGIN)
    }

    /// The centroid of the pins of `net`, or `None` for a pinless net.
    pub fn net_centroid(&self, netlist: &Netlist, net: NetId) -> Option<Point> {
        let pins = &netlist.net(net).pins;
        if pins.is_empty() {
            return None;
        }
        let mut x = 0.0;
        let mut y = 0.0;
        for &p in pins {
            let q = self.pin_position(netlist, p);
            x += q.x;
            y += q.y;
        }
        let n = pins.len() as f64;
        Some(Point::new(x / n, y / n))
    }
}

impl FromIterator<Point> for Placement {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Self {
            positions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_netlist::{CellKind, NetlistBuilder, PinDir};

    fn pair() -> (Netlist, CellId, CellId, NetId) {
        let mut b = NetlistBuilder::new();
        let u = b.add_cell("u", 4.0, 12.0, CellKind::Movable);
        let v = b.add_cell("v", 6.0, 12.0, CellKind::Movable);
        let n = b.add_net("n");
        b.connect(u, n, PinDir::Output, 4.0, 6.0);
        b.connect(v, n, PinDir::Input, 0.0, 6.0);
        (b.build().expect("valid"), u, v, n)
    }

    #[test]
    fn get_set_round_trip() {
        let mut p = Placement::new(2);
        let pt = Point::new(3.5, -1.0);
        p.set(CellId::new(0), pt);
        assert_eq!(p.get(CellId::new(0)), pt);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn cell_rect_uses_dimensions() {
        let (nl, u, _, _) = pair();
        let mut p = Placement::new(nl.num_cells());
        p.set(u, Point::new(10.0, 20.0));
        let r = p.cell_rect(&nl, u);
        assert_eq!(r, Rect::new(10.0, 20.0, 14.0, 32.0));
        assert_eq!(p.cell_center(&nl, u), Point::new(12.0, 26.0));
    }

    #[test]
    fn pin_positions_track_cell() {
        let (nl, u, v, n) = pair();
        let mut p = Placement::new(nl.num_cells());
        p.set(u, Point::new(0.0, 0.0));
        p.set(v, Point::new(20.0, 12.0));
        let driver = nl.driver_of(n).expect("driver");
        assert_eq!(p.pin_position(&nl, driver), Point::new(4.0, 6.0));
        let centroid = p.net_centroid(&nl, n).expect("pins exist");
        assert_eq!(centroid, Point::new(12.0, 12.0));
    }

    #[test]
    fn from_iterator_collects() {
        let p: Placement = vec![Point::new(1.0, 2.0), Point::new(3.0, 4.0)]
            .into_iter()
            .collect();
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(CellId::new(1)), Point::new(3.0, 4.0));
    }
}
