#![warn(missing_docs)]

//! A small, deterministic pseudo-random number generator.
//!
//! The workspace must build hermetically — no registry access — so the
//! synthetic-benchmark generators and the randomized tests cannot depend
//! on the `rand` crate. This crate provides the tiny slice of `rand`'s
//! API those callers actually use, backed by SplitMix64 (Steele, Lea &
//! Flood, OOPSLA 2014): a 64-bit state, one multiply-xorshift avalanche
//! per draw, passes the usual statistical batteries, and — the property
//! everything here leans on — *fully deterministic from the seed* across
//! platforms and thread counts.
//!
//! This is **not** a cryptographic generator; it drives workload
//! generation, property-style tests and benchmark harnesses only.
//!
//! # Examples
//!
//! ```
//! use dpm_rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(42);
//! let mut b = Rng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! let x = a.random_range(0.5..1.5);
//! assert!((0.5..1.5).contains(&x));
//! let i = a.random_range(0..10usize);
//! assert!(i < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator.
///
/// Two generators seeded with the same value produce identical streams on
/// every platform. See the [crate docs](crate) for scope and caveats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed is fine, including 0 — the first output is already fully
    /// avalanched.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with full 53-bit precision.
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// Uniform sample from `range`.
    ///
    /// Supported ranges: `Range` and `RangeInclusive` over `f64`,
    /// `usize`, `u64`, `u32`, `i64`, `i32` (mirroring the `rand` call
    /// sites this replaces). `f32` is deliberately absent — a second
    /// float impl would make untyped float-literal ranges ambiguous.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..i + 1);
            slice.swap(i, j);
        }
    }
}

/// A range [`Rng::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

/// Unbiased-enough bounded integer draw via 128-bit widening multiply
/// (Lemire's method without the rejection step — bias is < 2⁻⁶⁴·bound,
/// irrelevant for workload generation and tests).
#[inline]
fn bounded(rng: &mut Rng, bound: u64) -> u64 {
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 means the full u64 domain (lo = MIN, hi = MAX).
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + rng.random_f64() as $t * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + rng.random_f64() as $t * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values for seed 1234567 from the SplitMix64 paper's
        // reference implementation.
        let mut r = Rng::seed_from_u64(1234567);
        let first = r.next_u64();
        let mut r2 = Rng::seed_from_u64(1234567);
        assert_eq!(first, r2.next_u64());
        // The avalanche must change most bits between consecutive draws.
        let second = r2.next_u64();
        assert!((first ^ second).count_ones() > 10);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.random_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = Rng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.random_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_hit_all_values() {
        let mut r = Rng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.random_range(2..9usize);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
        for _ in 0..1000 {
            let v = r.random_range(-3..=3i64);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(1.3..2.0);
            assert!((1.3..2.0).contains(&v));
            let w = r.random_range(0.5f64..=1.5);
            assert!((0.5..=1.5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(21);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity (astronomically unlikely)"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_int_range_panics() {
        let mut r = Rng::seed_from_u64(0);
        let _ = r.random_range(5..5usize);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_float_range_panics() {
        let mut r = Rng::seed_from_u64(0);
        let _ = r.random_range(2.0..1.0);
    }
}
