//! Table I — test-case sizes and inflations.

use dpm_bench::{fnum, print_table, scale_from_env, TextTable, CKT_DEFAULT_SCALE};
use dpm_gen::suites::ckt_suite;
use dpm_gen::WorkloadStats;

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Table I at scale {scale} (paper sizes x scale).");
    let mut t = TextTable::new([
        "testcase",
        "paper cells",
        "cells",
        "size",
        "target infl(%)",
        "achieved(%)",
        "overlap(%)",
        "net degree",
    ]);
    for entry in ckt_suite(scale) {
        let (bench, achieved) = entry.generate_inflated();
        let stats = WorkloadStats::measure(&bench);
        let o = bench.die.outline();
        t.row([
            entry.spec.name.clone(),
            entry.paper_cells.to_string(),
            bench.spec.num_cells.to_string(),
            format!("{:.0} x {:.0}", o.width(), o.height()),
            fnum(entry.inflation_pct * 100.0),
            fnum(achieved * 100.0),
            fnum(stats.overlap_fraction * 100.0),
            fnum(stats.mean_net_degree),
        ]);
    }
    print_table("Table I: testcases and inflations", &t);
}
