//! Three-dimensional points and vectors for volumetric placement.
//!
//! The 2D [`Point`](crate::Point)/[`Vector`](crate::Vector) pair stays the
//! workspace default; these types exist for the volumetric (3D-IC) scenario
//! where cell positions carry a tier coordinate `z` measured in tiers (tier
//! `t` spans `[t, t+1)` with its center at `t + 0.5`).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A point in 3D placement space: `x`/`y` in tracks, `z` in tiers.
///
/// # Examples
///
/// ```
/// use dpm_geom::{Point3, Vector3};
///
/// let p = Point3::new(1.0, 2.0, 0.5);
/// let q = p + Vector3::new(0.5, -1.0, 1.0);
/// assert_eq!(q, Point3::new(1.5, 1.0, 1.5));
/// assert_eq!(q - p, Vector3::new(0.5, -1.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point3 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
    /// Tier coordinate (tier `t` spans `[t, t+1)`).
    pub z: f64,
}

impl Point3 {
    /// The origin.
    pub const ZERO: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Add<Vector3> for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, v: Vector3) -> Point3 {
        Point3::new(self.x + v.x, self.y + v.y, self.z + v.z)
    }
}

impl AddAssign<Vector3> for Point3 {
    #[inline]
    fn add_assign(&mut self, v: Vector3) {
        self.x += v.x;
        self.y += v.y;
        self.z += v.z;
    }
}

impl Sub for Point3 {
    type Output = Vector3;
    #[inline]
    fn sub(self, rhs: Point3) -> Vector3 {
        Vector3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

/// A displacement in 3D placement space.
///
/// # Examples
///
/// ```
/// use dpm_geom::Vector3;
///
/// let v = Vector3::new(3.0, -4.0, 0.25);
/// assert_eq!(v.linf_length(), 4.0);
/// assert_eq!(v.clamped_linf(2.0), Vector3::new(2.0, -2.0, 0.25));
/// assert_eq!(v * 2.0, Vector3::new(6.0, -8.0, 0.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector3 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
    /// Tier component.
    pub z: f64,
}

impl Vector3 {
    /// The zero vector.
    pub const ZERO: Vector3 = Vector3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// The L∞ (Chebyshev) length `max(|x|, |y|, |z|)`.
    #[inline]
    pub fn linf_length(&self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Clamps every component into `[-limit, limit]` independently (the
    /// per-step displacement cap of Eq. 7, extended to the tier axis).
    #[inline]
    pub fn clamped_linf(&self, limit: f64) -> Vector3 {
        Vector3::new(
            self.x.clamp(-limit, limit),
            self.y.clamp(-limit, limit),
            self.z.clamp(-limit, limit),
        )
    }
}

impl fmt::Display for Vector3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Add for Vector3 {
    type Output = Vector3;
    #[inline]
    fn add(self, rhs: Vector3) -> Vector3 {
        Vector3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vector3 {
    type Output = Vector3;
    #[inline]
    fn sub(self, rhs: Vector3) -> Vector3 {
        Vector3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Neg for Vector3 {
    type Output = Vector3;
    #[inline]
    fn neg(self) -> Vector3 {
        Vector3::new(-self.x, -self.y, -self.z)
    }
}

impl Mul<f64> for Vector3 {
    type Output = Vector3;
    #[inline]
    fn mul(self, s: f64) -> Vector3 {
        Vector3::new(self.x * s, self.y * s, self.z * s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_vector_arithmetic_round_trips() {
        let p = Point3::new(1.0, 2.0, 3.0);
        let v = Vector3::new(-0.5, 0.25, 1.0);
        let q = p + v;
        assert_eq!(q - p, v);
        let mut r = p;
        r += v;
        assert_eq!(r, q);
    }

    #[test]
    fn linf_length_takes_max_component() {
        assert_eq!(Vector3::new(1.0, -2.0, 0.5).linf_length(), 2.0);
        assert_eq!(Vector3::new(0.0, 0.0, -3.0).linf_length(), 3.0);
        assert_eq!(Vector3::ZERO.linf_length(), 0.0);
    }

    #[test]
    fn clamp_is_per_component() {
        let v = Vector3::new(5.0, -0.5, -7.0).clamped_linf(1.0);
        assert_eq!(v, Vector3::new(1.0, -0.5, -1.0));
    }

    #[test]
    fn scale_and_negate() {
        let v = Vector3::new(1.0, -2.0, 3.0);
        assert_eq!(v * 0.5, Vector3::new(0.5, -1.0, 1.5));
        assert_eq!(-v, Vector3::new(-1.0, 2.0, -3.0));
        assert_eq!(v + (-v), Vector3::ZERO);
        assert_eq!(v - v, Vector3::ZERO);
    }
}
