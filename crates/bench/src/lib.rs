//! Benchmark harness reproducing the paper's evaluation section.
//!
//! Every table and figure of Ren et al.'s evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md for the index). This
//! library holds what those binaries share: workload construction, the
//! metric pipeline (TWL / WNS / FOM / movement / density overflow /
//! congestion / runtime), and plain-text table formatting with the
//! paper's reference values printed alongside.
//!
//! Scale is controlled by the `DPM_SCALE` environment variable — the
//! fraction of the paper's cell counts to generate (default 1/64 for the
//! industrial `ckt` suite and 1/16 for the ISPD `ibm` suite), so the full
//! evaluation runs in minutes on a laptop while preserving the workload
//! *shape*: who wins and by roughly what factor.

pub mod suite;

use dpm_gen::Benchmark;
use dpm_legalize::{run_legalizer, Legalizer};
use dpm_netlist::Netlist;
use dpm_place::{check_legality, hpwl, MovementStats, Placement};
use dpm_sta::{DelayModel, TimingAnalyzer};
use std::fmt::Write as _;
use std::time::Duration;

/// Quality metrics of one placement, in the paper's units of account.
#[derive(Debug, Clone, Copy)]
pub struct Metrics {
    /// Total half-perimeter wirelength.
    pub twl: f64,
    /// Worst slack.
    pub wns: f64,
    /// Figure of merit (sum of negative endpoint slacks).
    pub fom: f64,
    /// Peak routed congestion (usage/capacity after pattern global
    /// routing — the paper's "after global routing" metric).
    pub congestion: f64,
    /// `true` if the placement is legal.
    pub legal: bool,
}

/// Everything measured about one legalizer run on one circuit.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Legalizer name (paper's column label).
    pub legalizer: String,
    /// Post-legalization quality.
    pub metrics: Metrics,
    /// Movement relative to the pre-legalization placement.
    pub movement: MovementStats,
    /// Wall-clock runtime.
    pub runtime: Duration,
}

/// A harness around one benchmark circuit: generation, timing setup and
/// uniform evaluation of legalizers.
pub struct Experiment {
    /// The circuit under test (already inflated by the caller).
    pub bench: Benchmark,
    /// Pre-inflation (base) metrics.
    pub base: Metrics,
    /// The inflated, illegal starting placement.
    pub start: Placement,
    sta: TimingAnalyzer,
    clock: f64,
}

impl Experiment {
    /// Wraps an inflated benchmark. `base` is the pre-inflation
    /// benchmark (legal placement) whose metrics become the paper's
    /// "Base" column; the clock period is set so the base design is just
    /// critical (WNS ≈ 0), mirroring the paper's slightly-negative base
    /// slacks.
    pub fn new(bench: Benchmark, base: &Benchmark) -> Self {
        let sta = TimingAnalyzer::new(&bench.netlist, DelayModel::default());
        let base_sta = TimingAnalyzer::new(&base.netlist, DelayModel::default());
        let clock = base_sta.critical_path_delay(&base.netlist, &base.placement) * 0.98;
        let base = measure(&base.netlist, &base.placement, &base_sta, clock, Some(base));
        let start = bench.placement.clone();
        Self {
            bench,
            base,
            start,
            sta,
            clock,
        }
    }

    /// The clock period used for slack computation.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Runs one legalizer from the inflated starting placement.
    pub fn run(&self, legalizer: &dyn Legalizer) -> RunResult {
        let mut placement = self.start.clone();
        let outcome = run_legalizer(
            legalizer,
            &self.bench.netlist,
            &self.bench.die,
            &mut placement,
        );
        let metrics = measure(
            &self.bench.netlist,
            &placement,
            &self.sta,
            self.clock,
            Some(&self.bench),
        );
        let movement = MovementStats::between(&self.bench.netlist, &self.start, &placement);
        RunResult {
            legalizer: legalizer.name().to_string(),
            metrics: Metrics {
                legal: outcome.is_legal,
                ..metrics
            },
            movement,
            runtime: outcome.runtime,
        }
    }

    /// Like [`run`](Self::run) but also returns the final placement (for
    /// the movement-plot figures).
    pub fn run_keeping_placement(&self, legalizer: &dyn Legalizer) -> (RunResult, Placement) {
        let mut placement = self.start.clone();
        let outcome = run_legalizer(
            legalizer,
            &self.bench.netlist,
            &self.bench.die,
            &mut placement,
        );
        let metrics = measure(
            &self.bench.netlist,
            &placement,
            &self.sta,
            self.clock,
            Some(&self.bench),
        );
        let movement = MovementStats::between(&self.bench.netlist, &self.start, &placement);
        (
            RunResult {
                legalizer: legalizer.name().to_string(),
                metrics: Metrics {
                    legal: outcome.is_legal,
                    ..metrics
                },
                movement,
                runtime: outcome.runtime,
            },
            placement,
        )
    }
}

/// Measures TWL, timing, and congestion for a placement.
pub fn measure(
    netlist: &Netlist,
    placement: &Placement,
    sta: &TimingAnalyzer,
    clock: f64,
    bench: Option<&Benchmark>,
) -> Metrics {
    let twl = hpwl(netlist, placement);
    let t = sta.analyze(netlist, placement, clock);
    let congestion = bench
        .map(|b| dpm_route::route_congestion(netlist, placement, &b.die).1)
        .unwrap_or(0.0);
    let legal = bench
        .map(|b| check_legality(netlist, &b.die, placement, 0).is_legal())
        .unwrap_or(true);
    Metrics {
        twl,
        wns: t.wns,
        fom: t.fom,
        congestion,
        legal,
    }
}

/// Reads the suite scale from `DPM_SCALE` (falls back to `default`).
pub fn scale_from_env(default: f64) -> f64 {
    std::env::var("DPM_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(default)
}

/// Default scale for the industrial `ckt` suite.
pub const CKT_DEFAULT_SCALE: f64 = 1.0 / 64.0;
/// Default scale for the ISPD `ibm` suite.
pub const IBM_DEFAULT_SCALE: f64 = 1.0 / 16.0;

/// A plain-text table with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row/header mismatch");
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:>width$}", cell, width = widths[i]);
            }
            line
        };
        let header = fmt_row(&self.headers, &widths);
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{}", "-".repeat(header.len()));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Prints a table with a title banner.
pub fn print_table(title: &str, table: &TextTable) {
    println!("\n=== {title} ===");
    print!("{}", table.render());
}

/// Formats a float compactly for table cells.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Writes `content` into `results/<name>`, creating the directory.
///
/// # Panics
///
/// Panics if the file cannot be written (benchmark binaries want loud
/// failures).
pub fn write_result_file(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write result file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_alignment() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["a", "1"]).row(["longer", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
    }

    #[test]
    #[should_panic(expected = "row/header mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1.2345), "1.234");
        assert_eq!(fnum(-0.5), "-0.500");
    }

    #[test]
    fn scale_env_fallback() {
        std::env::remove_var("DPM_SCALE");
        assert_eq!(scale_from_env(0.5), 0.5);
    }

    #[test]
    fn experiment_pipeline_runs() {
        use dpm_gen::{CircuitSpec, InflationSpec};
        use dpm_legalize::GreedyLegalizer;
        let base = CircuitSpec::small(3).generate();
        let mut bench = base.clone();
        bench.inflate(&InflationSpec::random_width(0.1, 1.6, 1));
        let exp = Experiment::new(bench, &base);
        // Base design is just-critical by construction.
        assert!(exp.base.wns <= 0.0);
        let r = exp.run(&GreedyLegalizer::new());
        assert!(r.metrics.legal);
        assert!(r.metrics.twl > 0.0);
        assert!(r.movement.total > 0.0);
    }
}
