//! Half-perimeter wirelength (HPWL).

use crate::Placement;
use dpm_geom::Rect;
use dpm_netlist::{NetId, Netlist};

/// The bounding box of a net's pins, or `None` for a pinless net.
pub fn net_bbox(netlist: &Netlist, placement: &Placement, net: NetId) -> Option<Rect> {
    let pins = &netlist.net(net).pins;
    let mut it = pins.iter();
    let first = *it.next()?;
    let mut bbox = Rect::degenerate(placement.pin_position(netlist, first));
    for &p in it {
        bbox = bbox.union_point(placement.pin_position(netlist, p));
    }
    Some(bbox)
}

/// The half-perimeter wirelength of one net (0 for nets with fewer than two
/// pins).
pub fn net_hpwl(netlist: &Netlist, placement: &Placement, net: NetId) -> f64 {
    match net_bbox(netlist, placement, net) {
        Some(b) => b.half_perimeter(),
        None => 0.0,
    }
}

/// Total half-perimeter wirelength over all nets — the TWL metric of the
/// paper's Tables II, IX, XI and XIV.
///
/// # Examples
///
/// ```
/// use dpm_geom::Point;
/// use dpm_netlist::{NetlistBuilder, CellKind, PinDir};
/// use dpm_place::{Placement, hpwl};
///
/// let mut b = NetlistBuilder::new();
/// let u = b.add_cell("u", 2.0, 2.0, CellKind::Movable);
/// let v = b.add_cell("v", 2.0, 2.0, CellKind::Movable);
/// let n = b.add_net("n");
/// b.connect(u, n, PinDir::Output, 1.0, 1.0);
/// b.connect(v, n, PinDir::Input, 1.0, 1.0);
/// let nl = b.build()?;
/// let mut p = Placement::new(2);
/// p.set(u, Point::new(0.0, 0.0));
/// p.set(v, Point::new(3.0, 4.0));
/// assert_eq!(hpwl(&nl, &p), 7.0);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
pub fn hpwl(netlist: &Netlist, placement: &Placement) -> f64 {
    netlist
        .net_ids()
        .map(|n| net_hpwl(netlist, placement, n))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Point;
    use dpm_netlist::{CellKind, NetlistBuilder, PinDir};

    fn star(n_sinks: usize) -> (Netlist, NetId) {
        let mut b = NetlistBuilder::new();
        let d = b.add_cell("d", 1.0, 1.0, CellKind::Movable);
        let net = b.add_net("n");
        b.connect(d, net, PinDir::Output, 0.5, 0.5);
        for i in 0..n_sinks {
            let s = b.add_cell(format!("s{i}"), 1.0, 1.0, CellKind::Movable);
            b.connect(s, net, PinDir::Input, 0.5, 0.5);
        }
        (b.build().expect("valid"), net)
    }

    #[test]
    fn single_pin_net_is_zero() {
        let (nl, net) = star(0);
        let p = Placement::new(nl.num_cells());
        assert_eq!(net_hpwl(&nl, &p, net), 0.0);
    }

    #[test]
    fn multi_pin_bbox() {
        let (nl, net) = star(2);
        let mut p = Placement::new(nl.num_cells());
        p.set(dpm_netlist::CellId::new(0), Point::new(0.0, 0.0)); // pin at (.5,.5)
        p.set(dpm_netlist::CellId::new(1), Point::new(9.5, 0.5)); // pin at (10,1)
        p.set(dpm_netlist::CellId::new(2), Point::new(4.5, 19.5)); // pin at (5,20)
        let b = net_bbox(&nl, &p, net).expect("bbox");
        assert_eq!(b, Rect::new(0.5, 0.5, 10.0, 20.0));
        assert_eq!(net_hpwl(&nl, &p, net), 9.5 + 19.5);
    }

    #[test]
    fn hpwl_is_translation_invariant() {
        let (nl, _) = star(3);
        let mut p = Placement::new(nl.num_cells());
        for (i, pos) in [
            (0, (0.0, 0.0)),
            (1, (5.0, 2.0)),
            (2, (1.0, 8.0)),
            (3, (4.0, 4.0)),
        ] {
            p.set(dpm_netlist::CellId::new(i), Point::new(pos.0, pos.1));
        }
        let w0 = hpwl(&nl, &p);
        for pt in p.as_mut_slice() {
            *pt += Point::new(100.0, -50.0) - Point::ORIGIN;
        }
        let w1 = hpwl(&nl, &p);
        assert!((w0 - w1).abs() < 1e-9);
    }

    #[test]
    fn moving_a_sink_away_increases_hpwl() {
        let (nl, _) = star(1);
        let mut p = Placement::new(nl.num_cells());
        p.set(dpm_netlist::CellId::new(1), Point::new(3.0, 0.0));
        let w0 = hpwl(&nl, &p);
        p.set(dpm_netlist::CellId::new(1), Point::new(30.0, 0.0));
        let w1 = hpwl(&nl, &p);
        assert!(w1 > w0);
    }
}
