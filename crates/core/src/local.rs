//! Robust local diffusion with dynamic density update (paper Algorithm 3).

use crate::advect::advect_cells;
use crate::global::DiffusionResult;
use crate::observe::{
    DiffusionObserver, KernelEvent, KernelKind, NoopObserver, RoundEvent, StepEvent,
};
use crate::window::identify_windows_into;
use crate::{DiffusionConfig, DiffusionEngine, StepRecord, Telemetry};
use dpm_netlist::Netlist;
use dpm_par::ThreadPool;
use dpm_place::{BinGrid, DensityMap, Die, Placement};
use std::time::Instant;

/// Algorithm 3: robust local diffusion.
///
/// Each *round*:
///
/// 1. measure the real placement density (dynamic density update,
///    Section VI-B);
/// 2. identify local diffusion windows around overfull regions
///    (Algorithm 2) and freeze everything else;
/// 3. run `N_U` diffusion steps confined to the windows;
///
/// and the loop stops when the measured local overflow no longer
/// improves — the paper's stopping rule — or when no window is overfull
/// at all (converged).
///
/// Compared to [`GlobalDiffusion`](crate::GlobalDiffusion) this moves far
/// fewer cells (the paper reports ~70% less total movement) because cells
/// in already-legal regions are never touched, and it needs no initial
/// density manipulation: window identification guarantees minimal
/// spreading.
///
/// # Examples
///
/// ```
/// use dpm_geom::Point;
/// use dpm_netlist::{NetlistBuilder, CellKind};
/// use dpm_place::{Die, Placement};
/// use dpm_diffusion::{DiffusionConfig, LocalDiffusion};
///
/// let mut b = NetlistBuilder::new();
/// for i in 0..24 {
///     b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
/// }
/// let nl = b.build()?;
/// let die = Die::new(96.0, 96.0, 12.0);
/// let mut p = Placement::new(nl.num_cells());
/// for (i, c) in nl.cell_ids().enumerate() {
///     p.set(c, Point::new(36.0 + (i % 4) as f64 * 2.5, 36.0 + (i / 4) as f64 * 2.0));
/// }
/// // W1 = 0 judges raw bin density; W2 = 1 lets the hot bin's direct
/// // neighborhood absorb the overflow.
/// let cfg = DiffusionConfig::default()
///     .with_bin_size(24.0)
///     .with_update_period(10)
///     .with_windows(0, 1);
/// let result = LocalDiffusion::new(cfg).run(&nl, &die, &mut p);
/// assert!(result.steps > 0);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LocalDiffusion {
    cfg: DiffusionConfig,
}

impl LocalDiffusion {
    /// Minimum relative measured-overflow improvement per round to keep
    /// going (guards against chasing an asymptotic tail).
    const MIN_RELATIVE_IMPROVEMENT: f64 = 0.02;

    /// Creates a local-diffusion runner with the given parameters.
    pub fn new(cfg: DiffusionConfig) -> Self {
        Self { cfg }
    }

    /// The configuration this runner uses.
    pub fn config(&self) -> &DiffusionConfig {
        &self.cfg
    }

    /// Runs robust local diffusion, mutating `placement` in place.
    ///
    /// The round loop reuses one density map, one engine and one set of
    /// analysis buffers across rounds (the dynamic density update runs
    /// every round — reallocating them per round dominated small-window
    /// runs), and every kernel runs on the configured worker pool.
    pub fn run(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) -> DiffusionResult {
        self.run_with_cancel(netlist, die, placement, &|| false)
    }

    /// Runs robust local diffusion with a cancellation hook.
    ///
    /// `should_stop` is polled between rounds *and* between the `N_U`
    /// diffusion steps inside a round, so a deadline can cut a long round
    /// short. On cancellation the loop exits immediately with
    /// [`DiffusionResult::cancelled`] set; the placement keeps the partial
    /// progress (every completed step left it consistent). A hook that
    /// never fires reproduces [`run`](Self::run) exactly — the hook is
    /// consulted only between steps and never changes the arithmetic.
    pub fn run_with_cancel(
        &self,
        netlist: &Netlist,
        die: &Die,
        placement: &mut Placement,
        should_stop: &dyn Fn() -> bool,
    ) -> DiffusionResult {
        self.run_observed(netlist, die, placement, should_stop, &mut NoopObserver)
    }

    /// Runs robust local diffusion with a cancellation hook and an
    /// attached [`DiffusionObserver`].
    ///
    /// On top of the per-step and per-kernel callbacks that
    /// [`GlobalDiffusion::run_observed`](crate::GlobalDiffusion::run_observed)
    /// emits, local diffusion calls [`DiffusionObserver::on_round`] at
    /// each executed round boundary, right after the dynamic density
    /// update measured the real placement. Observers see only shared
    /// references to post-step state and cannot perturb the dynamics —
    /// observed and plain runs produce bit-identical placements.
    pub fn run_observed(
        &self,
        netlist: &Netlist,
        die: &Die,
        placement: &mut Placement,
        should_stop: &dyn Fn() -> bool,
        observer: &mut dyn DiffusionObserver,
    ) -> DiffusionResult {
        assert!(self.cfg.w2 >= self.cfg.w1, "W2 must be at least W1");
        let grid = BinGrid::new(die.outline(), self.cfg.bin_size);
        let pool = ThreadPool::new(self.cfg.threads);
        let mut telemetry = Telemetry::new();
        let mut steps = 0usize;
        let mut rounds = 0usize;
        let mut converged = false;
        let mut cancelled = false;
        let mut best_overflow = f64::INFINITY;

        // Round-loop buffers, allocated once and reused.
        let splat_start = Instant::now();
        let mut map = DensityMap::from_placement_with_pool(netlist, placement, grid.clone(), &pool);
        let splat_elapsed = splat_start.elapsed();
        let mut engine = DiffusionEngine::from_density_map(&map);
        engine.set_conservative_boundaries(!self.cfg.paper_boundaries);
        engine.set_threads(self.cfg.threads);
        engine.set_lanes(self.cfg.lanes);
        engine.set_precision(self.cfg.precision);
        engine
            .kernel_timers_mut()
            .splat
            .record(splat_elapsed, pool.threads());
        observer.on_kernel(&KernelEvent {
            kernel: KernelKind::Splat,
            elapsed: splat_elapsed,
            threads: pool.threads(),
        });
        let mut avg: Vec<f64> = Vec::new();
        let mut frozen: Vec<bool> = Vec::new();

        while rounds < self.cfg.max_rounds {
            if should_stop() {
                cancelled = true;
                break;
            }
            // Dynamic density update: measure the *real* placement.
            if rounds > 0 {
                let splat_start = Instant::now();
                map.recompute_with_pool(netlist, placement, &pool);
                let splat_elapsed = splat_start.elapsed();
                engine
                    .kernel_timers_mut()
                    .splat
                    .record(splat_elapsed, pool.threads());
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Splat,
                    elapsed: splat_elapsed,
                    threads: pool.threads(),
                });
                engine.reload_from_density_map(&map);
            }
            map.windowed_average_into(self.cfg.w1, &mut avg);
            let (measured, max_local) = map.local_overflow_from(&avg, self.cfg.d_max);

            // Identify windows around overfull regions. Convergence
            // mirrors global diffusion's criterion: every neighborhood
            // average within `Δ` of the target ("close to legal" — the
            // detailed legalizer finishes from there).
            identify_windows_into(&map, &avg, self.cfg.w2, self.cfg.d_max, &mut frozen);
            if frozen.iter().all(|&f| f) || max_local <= self.cfg.delta {
                converged = true;
                break;
            }

            // Stop when the measured overflow no longer meaningfully
            // improves — chasing the convergence tail only over-spreads
            // (the paper stops as soon as overflow ticks up, for the same
            // reason).
            if rounds > 0 && measured >= best_overflow * (1.0 - Self::MIN_RELATIVE_IMPROVEMENT) {
                break;
            }
            best_overflow = best_overflow.min(measured);
            rounds += 1;
            observer.on_round(&RoundEvent {
                round: rounds,
                measured_overflow: measured,
                max_window_overflow: max_local,
                steps_so_far: steps,
            });

            engine.set_frozen_mask(&frozen);

            for i in 0..self.cfg.n_u {
                if steps >= self.cfg.max_steps {
                    break;
                }
                if i > 0 && should_stop() {
                    cancelled = true;
                    break;
                }
                let velocity_start = Instant::now();
                engine.compute_velocities();
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Velocity,
                    elapsed: velocity_start.elapsed(),
                    threads: pool.threads(),
                });
                let advect_start = Instant::now();
                let advect = advect_cells(&engine, &grid, netlist, placement, &self.cfg, true);
                let advect_elapsed = advect_start.elapsed();
                engine
                    .kernel_timers_mut()
                    .advect
                    .record(advect_elapsed, pool.threads());
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Advect,
                    elapsed: advect_elapsed,
                    threads: pool.threads(),
                });
                let ftcs_start = Instant::now();
                engine.step_density(self.cfg.dt * self.cfg.diffusivity);
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Ftcs,
                    elapsed: ftcs_start.elapsed(),
                    threads: pool.threads(),
                });
                let record = StepRecord {
                    step: steps,
                    movement: advect.total_movement,
                    computed_overflow: engine.total_overflow(self.cfg.d_max),
                    max_density: engine.max_live_density(),
                    measured_overflow: if i == 0 { Some(measured) } else { None },
                };
                telemetry.push(record);
                observer.on_step(&StepEvent {
                    record,
                    round: rounds,
                    placement,
                    netlist,
                });
                steps += 1;
            }
            if cancelled || steps >= self.cfg.max_steps {
                break;
            }
        }

        telemetry.set_kernels(*engine.kernel_timers());
        DiffusionResult {
            steps,
            rounds,
            converged,
            cancelled,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GlobalDiffusion;
    use dpm_geom::Point;
    use dpm_netlist::{CellKind, NetlistBuilder};
    use dpm_place::MovementStats;

    /// `n` cells clustered densely (staggered) around `at` in a 144×144
    /// die. With 24-unit bins, 100 cells of area 72 concentrated within
    /// ~2×2 bins give a windowed (W1 = 1) average well above 1.0.
    fn pile(n: usize, at: Point) -> (Netlist, Die, Placement) {
        let mut b = NetlistBuilder::new();
        for i in 0..n {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(144.0, 144.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().enumerate() {
            let dx = (i % 10) as f64 * 3.6;
            let dy = (i / 10) as f64 * 3.0;
            p.set(c, Point::new(at.x + dx, at.y + dy));
        }
        (nl, die, p)
    }

    /// A hot cluster in one corner plus a loose, legal far region.
    fn pile_plus_legal() -> (Netlist, Die, Placement, Vec<dpm_netlist::CellId>) {
        let mut b = NetlistBuilder::new();
        for i in 0..100 {
            b.add_cell(format!("hot{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let mut legal = Vec::new();
        for i in 0..4 {
            legal.push(b.add_cell(format!("cold{i}"), 6.0, 12.0, CellKind::Movable));
        }
        let nl = b.build().expect("valid");
        let die = Die::new(144.0, 144.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().take(100).enumerate() {
            let dx = (i % 10) as f64 * 3.6;
            let dy = (i / 10) as f64 * 3.0;
            p.set(c, Point::new(26.0 + dx, 26.0 + dy));
        }
        for (i, &c) in legal.iter().enumerate() {
            p.set(c, Point::new(100.0 + i as f64 * 8.0, 120.0));
        }
        (nl, die, p, legal)
    }

    fn cfg() -> DiffusionConfig {
        DiffusionConfig::default()
            .with_bin_size(24.0)
            .with_update_period(10)
            .with_windows(1, 2)
    }

    #[test]
    fn resolves_hot_spot() {
        let (nl, die, mut p) = pile(100, Point::new(30.0, 30.0));
        let grid = BinGrid::new(die.outline(), 24.0);
        let initial =
            DensityMap::from_placement(&nl, &p, grid.clone()).total_local_overflow(1, 1.0);
        let r = LocalDiffusion::new(cfg()).run(&nl, &die, &mut p);
        assert!(r.steps > 0);
        assert!(r.rounds >= 1);
        let residual = DensityMap::from_placement(&nl, &p, grid).total_local_overflow(1, 1.0);
        assert!(
            residual < initial / 2.0,
            "residual overflow {residual} not halved from {initial}"
        );
    }

    #[test]
    fn cells_in_legal_regions_never_move() {
        let (nl, die, mut p, legal) = pile_plus_legal();
        let before = p.clone();
        LocalDiffusion::new(cfg()).run(&nl, &die, &mut p);
        for &c in &legal {
            assert_eq!(p.get(c), before.get(c), "cold cell {c} moved");
        }
    }

    #[test]
    fn local_moves_less_than_global() {
        let (nl, die, mut pl, _) = pile_plus_legal();
        let p0 = pl.clone();
        LocalDiffusion::new(cfg()).run(&nl, &die, &mut pl);
        let ml = MovementStats::between(&nl, &p0, &pl);

        let mut pg = p0.clone();
        GlobalDiffusion::new(cfg()).run(&nl, &die, &mut pg);
        let mg = MovementStats::between(&nl, &p0, &pg);

        // With the default loose stopping band both variants do little
        // work on this small case; the robust claim is that local never
        // does *substantially more* (its hard guarantee — not touching
        // legal regions — is covered by cells_in_legal_regions_never_move).
        assert!(
            ml.total <= mg.total * 1.5,
            "local ({}) should not move much more than global ({})",
            ml.total,
            mg.total
        );
    }

    #[test]
    fn legal_input_converges_immediately() {
        let mut b = NetlistBuilder::new();
        for i in 0..4 {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(144.0, 144.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().enumerate() {
            p.set(c, Point::new(i as f64 * 30.0, 60.0));
        }
        let before = p.clone();
        let r = LocalDiffusion::new(cfg()).run(&nl, &die, &mut p);
        assert!(r.converged);
        assert_eq!(r.steps, 0);
        assert_eq!(p, before);
    }

    #[test]
    fn cancellation_mid_round_stops_with_partial_progress() {
        use std::cell::Cell;

        let (nl, die, mut p) = pile(100, Point::new(30.0, 30.0));
        let p0 = p.clone();
        // Allow three hook polls, then cancel: the run stops inside the
        // first round's N_U-step loop.
        let polls = Cell::new(3usize);
        let r = LocalDiffusion::new(cfg()).run_with_cancel(&nl, &die, &mut p, &|| {
            if polls.get() == 0 {
                true
            } else {
                polls.set(polls.get() - 1);
                false
            }
        });
        assert!(r.cancelled);
        assert!(!r.converged);
        assert!(r.steps >= 1, "at least one step before cancellation");
        assert!(r.steps < 10, "cancelled well before N_U steps: {}", r.steps);
        assert!(MovementStats::between(&nl, &p0, &p).total > 0.0);
    }

    #[test]
    fn never_firing_hook_matches_run_exactly() {
        let (nl, die, mut p1) = pile(100, Point::new(30.0, 30.0));
        let (_, _, mut p2) = pile(100, Point::new(30.0, 30.0));
        let r1 = LocalDiffusion::new(cfg()).run(&nl, &die, &mut p1);
        let r2 = LocalDiffusion::new(cfg()).run_with_cancel(&nl, &die, &mut p2, &|| false);
        assert_eq!((r1.steps, r1.rounds), (r2.steps, r2.rounds));
        assert!(!r2.cancelled);
        assert_eq!(p1, p2);
    }

    #[test]
    fn observed_run_is_bit_identical_to_plain_run() {
        struct Watcher {
            steps: usize,
            rounds: usize,
            step_rounds_seen: Vec<usize>,
        }
        impl crate::DiffusionObserver for Watcher {
            fn on_step(&mut self, event: &crate::StepEvent<'_>) {
                self.steps += 1;
                self.step_rounds_seen.push(event.round);
            }
            fn on_round(&mut self, event: &crate::RoundEvent) {
                assert_eq!(event.round, self.rounds + 1, "rounds arrive in order");
                assert!(event.measured_overflow >= 0.0);
                self.rounds += 1;
            }
        }

        let (nl, die, mut p1) = pile(100, Point::new(30.0, 30.0));
        let (_, _, mut p2) = pile(100, Point::new(30.0, 30.0));
        let r1 = LocalDiffusion::new(cfg()).run(&nl, &die, &mut p1);
        let mut obs = Watcher {
            steps: 0,
            rounds: 0,
            step_rounds_seen: Vec::new(),
        };
        let r2 = LocalDiffusion::new(cfg()).run_observed(&nl, &die, &mut p2, &|| false, &mut obs);
        assert_eq!(p1, p2, "observer must not perturb the dynamics");
        assert_eq!((r1.steps, r1.rounds), (r2.steps, r2.rounds));
        assert_eq!(obs.steps, r2.steps, "one on_step per step");
        assert_eq!(obs.rounds, r2.rounds, "one on_round per executed round");
        // Every step event is tagged with a round that has already been
        // announced via on_round.
        assert!(obs
            .step_rounds_seen
            .iter()
            .all(|&r| r >= 1 && r <= obs.rounds));
    }

    #[test]
    fn round_cap_is_respected() {
        let (nl, die, mut p) = pile(100, Point::new(30.0, 30.0));
        let r = LocalDiffusion::new(cfg().with_max_rounds(2)).run(&nl, &die, &mut p);
        assert!(r.rounds <= 2);
        assert!(r.rounds >= 1);
    }

    #[test]
    fn telemetry_records_measured_overflow_each_round() {
        let (nl, die, mut p) = pile(100, Point::new(30.0, 30.0));
        let r = LocalDiffusion::new(cfg()).run(&nl, &die, &mut p);
        let checkpoints = r.telemetry.measured_checkpoints();
        assert_eq!(checkpoints.len(), r.rounds);
        // Measured overflow decreases round over round.
        for w in checkpoints.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "measured overflow rose: {w:?}");
        }
    }
}
