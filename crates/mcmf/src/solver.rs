//! Successive-shortest-path min-cost max-flow.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Handle to an edge added with [`FlowNetwork::add_edge`], usable to query
/// the flow on that edge after solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeId(usize);

/// Errors returned by the solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowError {
    /// A node index was out of range.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the network.
        len: usize,
    },
    /// A negative-cost cycle makes min-cost flow unbounded.
    NegativeCycle,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for network of {len} nodes")
            }
            FlowError::NegativeCycle => write!(f, "network contains a negative-cost cycle"),
        }
    }
}

impl Error for FlowError {}

/// Flow and cost found by [`FlowNetwork::min_cost_max_flow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowResult {
    /// Total flow pushed from source to sink.
    pub amount: i64,
    /// Total cost `Σ flow(e) · cost(e)`.
    pub cost: i64,
}

/// Flow state of a single edge after solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeState {
    /// Tail node.
    pub from: usize,
    /// Head node.
    pub to: usize,
    /// Capacity the edge was created with.
    pub capacity: i64,
    /// Cost per unit the edge was created with.
    pub cost: i64,
    /// Flow currently on the edge.
    pub flow: i64,
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    /// Index of the reverse edge in `edges`.
    rev: usize,
}

/// A directed flow network with per-edge capacity and cost.
///
/// Nodes are `0..n`; edges are added one by one and solved with
/// [`min_cost_max_flow`](Self::min_cost_max_flow). After solving, per-edge
/// flows are available via [`edge_state`](Self::edge_state) (this is what
/// the FLOW legalizer reads to decide which cells to migrate between bins).
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    graph: Vec<Vec<usize>>,
    edges: Vec<Edge>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            graph: vec![Vec::new(); n],
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.len()
    }

    /// Number of caller-created edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge `from → to` with the given capacity and
    /// per-unit cost; returns a handle for querying its flow later.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or capacity is negative.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: i64, cost: i64) -> EdgeId {
        assert!(from < self.graph.len(), "from node {from} out of range");
        assert!(to < self.graph.len(), "to node {to} out of range");
        assert!(capacity >= 0, "capacity must be non-negative");
        let id = self.edges.len();
        self.graph[from].push(id);
        self.edges.push(Edge {
            to,
            cap: capacity,
            cost,
            rev: id + 1,
        });
        self.graph[to].push(id + 1);
        self.edges.push(Edge {
            to: from,
            cap: 0,
            cost: -cost,
            rev: id,
        });
        EdgeId(id)
    }

    /// The current flow state of a caller-created edge.
    pub fn edge_state(&self, id: EdgeId) -> EdgeState {
        let e = self.edges[id.0];
        let r = self.edges[e.rev];
        EdgeState {
            from: r.to,
            to: e.to,
            capacity: e.cap + r.cap,
            cost: e.cost,
            flow: r.cap,
        }
    }

    /// Iterates over the states of all caller-created edges.
    pub fn edge_states(&self) -> impl Iterator<Item = EdgeState> + '_ {
        (0..self.edges.len())
            .step_by(2)
            .map(move |i| self.edge_state(EdgeId(i)))
    }

    /// Finds the maximum flow of minimum cost from `source` to `sink`.
    ///
    /// Runs successive shortest augmenting paths. With all-non-negative
    /// costs the potentials start at zero and every search is a Dijkstra;
    /// with negative edge costs one Bellman–Ford pass initializes the
    /// potentials.
    ///
    /// # Errors
    ///
    /// - [`FlowError::NodeOutOfRange`] if `source` or `sink` is invalid.
    /// - [`FlowError::NegativeCycle`] if the network contains a
    ///   negative-cost cycle reachable from `source`.
    pub fn min_cost_max_flow(
        &mut self,
        source: usize,
        sink: usize,
    ) -> Result<FlowResult, FlowError> {
        self.min_cost_flow_limited(source, sink, i64::MAX)
    }

    /// Like [`min_cost_max_flow`](Self::min_cost_max_flow) but stops after
    /// pushing at most `limit` units.
    ///
    /// # Errors
    ///
    /// Same as [`min_cost_max_flow`](Self::min_cost_max_flow).
    pub fn min_cost_flow_limited(
        &mut self,
        source: usize,
        sink: usize,
        limit: i64,
    ) -> Result<FlowResult, FlowError> {
        let n = self.graph.len();
        for &node in &[source, sink] {
            if node >= n {
                return Err(FlowError::NodeOutOfRange { node, len: n });
            }
        }
        // Negative costs can come from caller edges or from residual
        // reverse edges left by a previous solve on this network; either
        // way a Bellman–Ford pass re-seeds the potentials.
        let residual_has_negative = self.edges.iter().any(|e| e.cap > 0 && e.cost < 0);
        let mut potential = vec![0i64; n];
        if residual_has_negative {
            potential = self.bellman_ford(source)?;
        }

        let mut result = FlowResult::default();
        let mut dist = vec![i64::MAX; n];
        let mut prev_edge = vec![usize::MAX; n];

        while result.amount < limit {
            // Dijkstra over reduced costs.
            dist.iter_mut().for_each(|d| *d = i64::MAX);
            prev_edge.iter_mut().for_each(|p| *p = usize::MAX);
            dist[source] = 0;
            let mut heap = BinaryHeap::new();
            heap.push(Reverse((0i64, source)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u] {
                    continue;
                }
                for &ei in &self.graph[u] {
                    let e = self.edges[ei];
                    if e.cap <= 0 {
                        continue;
                    }
                    let nd = d + e.cost + potential[u] - potential[e.to];
                    debug_assert!(
                        e.cost + potential[u] - potential[e.to] >= 0,
                        "reduced cost negative"
                    );
                    if nd < dist[e.to] {
                        dist[e.to] = nd;
                        prev_edge[e.to] = ei;
                        heap.push(Reverse((nd, e.to)));
                    }
                }
            }
            if dist[sink] == i64::MAX {
                break;
            }
            for v in 0..n {
                if dist[v] < i64::MAX {
                    potential[v] += dist[v];
                }
            }
            // Find bottleneck along the path.
            let mut push = limit - result.amount;
            let mut v = sink;
            while v != source {
                let ei = prev_edge[v];
                push = push.min(self.edges[ei].cap);
                v = self.edges[self.edges[ei].rev].to;
            }
            // Apply.
            let mut v = sink;
            while v != source {
                let ei = prev_edge[v];
                self.edges[ei].cap -= push;
                let rev = self.edges[ei].rev;
                self.edges[rev].cap += push;
                result.cost += push * self.edges[ei].cost;
                v = self.edges[rev].to;
            }
            result.amount += push;
        }
        Ok(result)
    }

    /// Solves a min-cost *transportation* problem: node `i` has
    /// `supplies[i]` units to ship (positive) or absorb (negative).
    /// A super-source/super-sink pair is added internally; returns the
    /// shipped amount (= min(total supply, total demand)) and its cost.
    ///
    /// This is the natural interface for bin-overflow spreading: overfull
    /// bins supply area, underfull bins demand it.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NodeOutOfRange`] if `supplies` is longer than
    /// the node count, or [`FlowError::NegativeCycle`] on unbounded
    /// instances.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_mcmf::FlowNetwork;
    /// let mut net = FlowNetwork::new(3);
    /// net.add_edge(0, 1, 10, 1);
    /// net.add_edge(1, 2, 10, 1);
    /// let r = net.solve_transport(&[4, 0, -4])?;
    /// assert_eq!(r.amount, 4);
    /// assert_eq!(r.cost, 8); // 4 units × 2 hops
    /// # Ok::<(), dpm_mcmf::FlowError>(())
    /// ```
    pub fn solve_transport(&mut self, supplies: &[i64]) -> Result<FlowResult, FlowError> {
        let n = self.graph.len();
        if supplies.len() > n {
            return Err(FlowError::NodeOutOfRange {
                node: supplies.len() - 1,
                len: n,
            });
        }
        let s = n;
        let t = n + 1;
        self.graph.push(Vec::new());
        self.graph.push(Vec::new());
        for (i, &supply) in supplies.iter().enumerate() {
            match supply.cmp(&0) {
                std::cmp::Ordering::Greater => {
                    self.add_edge(s, i, supply, 0);
                }
                std::cmp::Ordering::Less => {
                    self.add_edge(i, t, -supply, 0);
                }
                std::cmp::Ordering::Equal => {}
            }
        }
        self.min_cost_max_flow(s, t)
    }

    /// Bellman–Ford from `source` to seed potentials; detects negative
    /// cycles.
    fn bellman_ford(&self, source: usize) -> Result<Vec<i64>, FlowError> {
        let n = self.graph.len();
        // Unreachable nodes keep potential 0 (they can never be relaxed
        // through, so any finite value works).
        let mut dist = vec![i64::MAX / 4; n];
        dist[source] = 0;
        for round in 0..n {
            let mut changed = false;
            for (i, e) in self.edges.iter().enumerate() {
                if e.cap <= 0 {
                    continue;
                }
                let from = self.edges[e.rev].to;
                let _ = i;
                if dist[from] < i64::MAX / 4 && dist[from] + e.cost < dist[e.to] {
                    dist[e.to] = dist[from] + e.cost;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            if round == n - 1 {
                return Err(FlowError::NegativeCycle);
            }
        }
        for d in dist.iter_mut() {
            if *d >= i64::MAX / 4 {
                *d = 0;
            }
        }
        Ok(dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        let e = net.add_edge(0, 1, 7, 3);
        let r = net.min_cost_max_flow(0, 1).expect("solve");
        assert_eq!(
            r,
            FlowResult {
                amount: 7,
                cost: 21
            }
        );
        assert_eq!(net.edge_state(e).flow, 7);
    }

    #[test]
    fn chooses_cheaper_path_first() {
        // 0 -> 1 -> 3 (cost 2, cap 4), 0 -> 2 -> 3 (cost 5, cap 4)
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 4, 1);
        net.add_edge(1, 3, 4, 1);
        net.add_edge(0, 2, 4, 2);
        net.add_edge(2, 3, 4, 3);
        let r = net.min_cost_flow_limited(0, 3, 4).expect("solve");
        assert_eq!(r.amount, 4);
        assert_eq!(r.cost, 8); // all on the cheap path
        let r2 = net.min_cost_flow_limited(0, 3, 4).expect("solve");
        assert_eq!(r2.amount, 4);
        assert_eq!(r2.cost, 20); // remainder on the expensive path
    }

    #[test]
    fn respects_capacity_bottleneck() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10, 0);
        net.add_edge(1, 2, 3, 0);
        let r = net.min_cost_max_flow(0, 2).expect("solve");
        assert_eq!(r.amount, 3);
    }

    #[test]
    fn rerouting_through_residual_edges() {
        // Classic example where a later augmentation must push flow back.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1, 1);
        net.add_edge(0, 2, 1, 10);
        net.add_edge(1, 2, 1, 1);
        net.add_edge(1, 3, 1, 10);
        net.add_edge(2, 3, 1, 1);
        let r = net.min_cost_max_flow(0, 3).expect("solve");
        assert_eq!(r.amount, 2);
        // Optimal: 0-1-2-3 (3) + 0-2?cap used... min cost = 3 + 21? Check:
        // paths: 0-1-2-3 cost 3, then 0-2 full? 0-2 has cap 1 cost 10, 2-3
        // saturated, so second path is 0-2-?-.. must go 0-2 then 2-3 is
        // full -> via residual? Total max flow 2: 0-1-3 (11) + 0-2-3 (11)
        // = 22, or 0-1-2-3 (3) + 0-2 -> 2-1 residual -> 1-3: 10+(-1)+...
        // SSP finds the optimum; just check it beats the naive 22.
        assert!(r.cost <= 22);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, 1);
        let r = net.min_cost_max_flow(0, 2).expect("solve");
        assert_eq!(r, FlowResult::default());
    }

    #[test]
    fn negative_edge_costs_handled() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 5, -2);
        net.add_edge(1, 2, 5, 1);
        let r = net.min_cost_max_flow(0, 2).expect("solve");
        assert_eq!(r.amount, 5);
        assert_eq!(r.cost, -5);
    }

    #[test]
    fn node_out_of_range_error() {
        let mut net = FlowNetwork::new(2);
        let err = net.min_cost_max_flow(0, 5).unwrap_err();
        assert_eq!(err, FlowError::NodeOutOfRange { node: 5, len: 2 });
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn edge_states_report_flow_and_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 4, 2);
        net.add_edge(0, 1, 4, 5);
        net.min_cost_flow_limited(0, 1, 6).expect("solve");
        let states: Vec<EdgeState> = net.edge_states().collect();
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].flow, 4); // cheap edge saturated first
        assert_eq!(states[1].flow, 2);
        assert_eq!(states[0].capacity, 4);
        assert_eq!(states[0].from, 0);
        assert_eq!(states[0].to, 1);
    }

    #[test]
    fn transport_interface_balances_supplies() {
        // Chain of 4 nodes: 3 units at node 0, capacity for 2 at node 2
        // and 1 at node 3.
        let mut net = FlowNetwork::new(4);
        for i in 0..3 {
            net.add_edge(i, i + 1, 10, 1);
        }
        let r = net.solve_transport(&[3, 0, -2, -1]).expect("solves");
        assert_eq!(r.amount, 3);
        // 2 units travel 2 hops + 1 unit travels 3 hops = 7.
        assert_eq!(r.cost, 7);
    }

    #[test]
    fn transport_ships_min_of_supply_and_demand() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 100, 1);
        let r = net.solve_transport(&[5, -2]).expect("solves");
        assert_eq!(r.amount, 2);
    }

    #[test]
    fn grid_spreading_shape() {
        // A 1-D chain of 5 bins: bin 0 has 4 units excess, bins 1..5 can
        // absorb 1 each; flow should spread across increasing distances.
        let n = 5;
        let s = n;
        let t = n + 1;
        let mut net = FlowNetwork::new(n + 2);
        net.add_edge(s, 0, 4, 0);
        for i in 0..n - 1 {
            net.add_edge(i, i + 1, i64::MAX / 8, 1);
        }
        for i in 1..n {
            net.add_edge(i, t, 1, 0);
        }
        let r = net.min_cost_max_flow(s, t).expect("solve");
        assert_eq!(r.amount, 4);
        // Units travel 1+2+3+4 hops.
        assert_eq!(r.cost, 10);
    }
}
