//! Integration tests of the full ECO story the paper's introduction
//! motivates: buffers inserted + gates repowered, then legalization that
//! must preserve the design's integrity.

use diffuplace::gen::{CircuitSpec, InflationSpec};
use diffuplace::legalize::{
    run_legalizer, DiffusionLegalizer, GreedyLegalizer, Legalizer, TetrisLegalizer,
};
use diffuplace::place::{check_legality, hpwl, MovementStats};
use diffuplace::route::{GlobalRouter, RouterConfig};
use diffuplace::sta::{DelayModel, TimingAnalyzer};

fn eco_bench() -> diffuplace::gen::Benchmark {
    let mut bench = CircuitSpec::with_size("eco_it", 2_000, 301).generate();
    bench.insert_buffers(0.04, 6.0);
    bench.inflate(&InflationSpec::centered(0.10, 0.3, 302));
    bench
}

#[test]
fn eco_produces_overlap_and_every_legalizer_fixes_it() {
    let bench = eco_bench();
    let before = check_legality(&bench.netlist, &bench.die, &bench.placement, 0);
    assert!(!before.is_legal(), "the ECO must create overlap");
    for legalizer in [
        Box::new(DiffusionLegalizer::local_default()) as Box<dyn Legalizer>,
        Box::new(GreedyLegalizer::new()),
        Box::new(TetrisLegalizer::new()),
    ] {
        let mut p = bench.placement.clone();
        let outcome = run_legalizer(legalizer.as_ref(), &bench.netlist, &bench.die, &mut p);
        assert!(outcome.is_legal, "{} failed: {outcome}", legalizer.name());
    }
}

#[test]
fn diffusion_preserves_eco_timing_better_than_packing() {
    // The paper's headline on the motivating workload, end to end with
    // buffers in the timing graph.
    let bench = eco_bench();
    let sta = TimingAnalyzer::new(&bench.netlist, DelayModel::default());
    let clock = sta.critical_path_delay(&bench.netlist, &bench.placement) * 1.05;

    let mut p_diff = bench.placement.clone();
    run_legalizer(
        &DiffusionLegalizer::local_default(),
        &bench.netlist,
        &bench.die,
        &mut p_diff,
    );
    let t_diff = sta.analyze(&bench.netlist, &p_diff, clock);

    let mut p_tetris = bench.placement.clone();
    run_legalizer(
        &TetrisLegalizer::new(),
        &bench.netlist,
        &bench.die,
        &mut p_tetris,
    );
    let t_tetris = sta.analyze(&bench.netlist, &p_tetris, clock);

    assert!(
        t_diff.wns >= t_tetris.wns,
        "diffusion WNS {} should not be worse than Tetris {}",
        t_diff.wns,
        t_tetris.wns
    );
    assert!(
        hpwl(&bench.netlist, &p_diff) < hpwl(&bench.netlist, &p_tetris),
        "diffusion should win TWL on the ECO hotspot"
    );
}

#[test]
fn eco_legalization_keeps_buffers_near_their_nets() {
    // Buffers land at net centroids; legalization must not launch them
    // across the die, or the insertion's timing purpose is defeated.
    let bench = eco_bench();
    let mut p = bench.placement.clone();
    run_legalizer(
        &DiffusionLegalizer::local_default(),
        &bench.netlist,
        &bench.die,
        &mut p,
    );
    let m = MovementStats::between(&bench.netlist, &bench.placement, &p);
    let die_span = bench
        .die
        .outline()
        .width()
        .hypot(bench.die.outline().height());
    assert!(
        m.max < die_span / 3.0,
        "a cell moved {} — more than a third of the die diagonal {}",
        m.max,
        die_span
    );
}

#[test]
fn routed_congestion_stays_bounded_through_legalization() {
    let bench = eco_bench();
    let router = GlobalRouter::new(RouterConfig::default());
    let before = router.route(&bench.netlist, &bench.placement, &bench.die);
    let mut p = bench.placement.clone();
    run_legalizer(
        &DiffusionLegalizer::local_default(),
        &bench.netlist,
        &bench.die,
        &mut p,
    );
    let after = router.route(&bench.netlist, &p, &bench.die);
    assert_eq!(before.routed_connections, after.routed_connections);
    assert!(
        after.max_congestion <= before.max_congestion * 1.5 + 0.5,
        "legalization exploded congestion: {} -> {}",
        before.max_congestion,
        after.max_congestion
    );
}
