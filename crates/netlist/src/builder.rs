//! Incremental construction of validated [`Netlist`]s.

use crate::{Cell, CellId, CellKind, Net, NetId, Netlist, Pin, PinDir, PinId};
use dpm_geom::Point;
use std::error::Error;
use std::fmt;

/// Error produced by [`NetlistBuilder::build`] when the accumulated netlist
/// is inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildNetlistError {
    /// A net has more than one output (driving) pin.
    MultipleDrivers {
        /// The offending net.
        net: NetId,
        /// Number of output pins found.
        count: usize,
    },
    /// A cell has a non-positive width or height.
    BadCellSize {
        /// The offending cell.
        cell: CellId,
    },
}

impl fmt::Display for BuildNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetlistError::MultipleDrivers { net, count } => {
                write!(
                    f,
                    "net {net} has {count} driving pins, expected at most one"
                )
            }
            BuildNetlistError::BadCellSize { cell } => {
                write!(f, "cell {cell} has a non-positive width or height")
            }
        }
    }
}

impl Error for BuildNetlistError {}

/// Builder that accumulates cells, nets, and pin connections, then validates
/// and freezes them into a [`Netlist`].
///
/// # Examples
///
/// ```
/// use dpm_netlist::{NetlistBuilder, CellKind, PinDir};
///
/// let mut b = NetlistBuilder::new();
/// let inv = b.add_cell("inv0", 3.0, 12.0, CellKind::Movable);
/// let buf = b.add_cell("buf0", 4.0, 12.0, CellKind::Movable);
/// let net = b.add_net("w0");
/// b.connect(inv, net, PinDir::Output, 3.0, 6.0);
/// b.connect(buf, net, PinDir::Input, 0.0, 6.0);
/// let netlist = b.build()?;
/// assert_eq!(netlist.num_pins(), 2);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
#[derive(Debug, Default)]
pub struct NetlistBuilder {
    cells: Vec<Cell>,
    nets: Vec<Net>,
    pins: Vec<Pin>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity reserved for the given object
    /// counts, avoiding reallocation for large generated circuits.
    pub fn with_capacity(cells: usize, nets: usize, pins: usize) -> Self {
        Self {
            cells: Vec::with_capacity(cells),
            nets: Vec::with_capacity(nets),
            pins: Vec::with_capacity(pins),
        }
    }

    /// Number of cells added so far.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets added so far.
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Adds a cell and returns its id.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        kind: CellKind,
    ) -> CellId {
        let id = CellId::new(self.cells.len() as u32);
        self.cells.push(Cell {
            name: name.into(),
            width,
            height,
            kind,
            delay: 1.0,
            pins: Vec::new(),
        });
        id
    }

    /// Adds a cell with an explicit intrinsic delay (for timing workloads).
    pub fn add_cell_with_delay(
        &mut self,
        name: impl Into<String>,
        width: f64,
        height: f64,
        kind: CellKind,
        delay: f64,
    ) -> CellId {
        let id = self.add_cell(name, width, height, kind);
        self.cells[id.index()].delay = delay;
        id
    }

    /// Adds an (initially unconnected) net and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId::new(self.nets.len() as u32);
        self.nets.push(Net {
            name: name.into(),
            pins: Vec::new(),
        });
        id
    }

    /// Connects `cell` to `net` with a pin at offset `(ox, oy)` from the
    /// cell's lower-left corner, and returns the new pin's id.
    ///
    /// # Panics
    ///
    /// Panics if `cell` or `net` was not created by this builder.
    pub fn connect(&mut self, cell: CellId, net: NetId, dir: PinDir, ox: f64, oy: f64) -> PinId {
        assert!(cell.index() < self.cells.len(), "unknown cell {cell}");
        assert!(net.index() < self.nets.len(), "unknown net {net}");
        let id = PinId::new(self.pins.len() as u32);
        self.pins.push(Pin {
            cell,
            net,
            dir,
            offset: Point::new(ox, oy),
        });
        self.cells[cell.index()].pins.push(id);
        self.nets[net.index()].pins.push(id);
        id
    }

    /// Validates the accumulated netlist and freezes it.
    ///
    /// # Errors
    ///
    /// Returns [`BuildNetlistError::MultipleDrivers`] if any net has more
    /// than one output pin, or [`BuildNetlistError::BadCellSize`] if any
    /// cell has non-positive dimensions.
    pub fn build(self) -> Result<Netlist, BuildNetlistError> {
        for (i, c) in self.cells.iter().enumerate() {
            if !(c.width > 0.0 && c.height > 0.0) {
                return Err(BuildNetlistError::BadCellSize {
                    cell: CellId::new(i as u32),
                });
            }
        }
        let mut drivers = vec![None; self.nets.len()];
        for (ni, net) in self.nets.iter().enumerate() {
            let outs: Vec<PinId> = net
                .pins
                .iter()
                .copied()
                .filter(|&p| self.pins[p.index()].dir == PinDir::Output)
                .collect();
            match outs.len() {
                0 => {}
                1 => drivers[ni] = Some(outs[0]),
                n => {
                    return Err(BuildNetlistError::MultipleDrivers {
                        net: NetId::new(ni as u32),
                        count: n,
                    })
                }
            }
        }
        Ok(Netlist {
            cells: self.cells,
            nets: self.nets,
            pins: self.pins,
            drivers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_multiple_drivers() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let c = b.add_cell("c", 1.0, 1.0, CellKind::Movable);
        let n = b.add_net("n");
        b.connect(a, n, PinDir::Output, 0.0, 0.0);
        b.connect(c, n, PinDir::Output, 0.0, 0.0);
        let err = b.build().unwrap_err();
        assert_eq!(err, BuildNetlistError::MultipleDrivers { net: n, count: 2 });
        assert!(err.to_string().contains("driving pins"));
    }

    #[test]
    fn rejects_degenerate_cells() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 0.0, 1.0, CellKind::Movable);
        let err = b.build().unwrap_err();
        assert_eq!(err, BuildNetlistError::BadCellSize { cell: a });
    }

    #[test]
    fn driverless_net_is_allowed() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let n = b.add_net("n");
        b.connect(a, n, PinDir::Input, 0.0, 0.0);
        let nl = b.build().expect("driverless nets are legal");
        assert_eq!(nl.driver_of(n), None);
    }

    #[test]
    fn capacity_builder_behaves_like_default() {
        let mut b = NetlistBuilder::with_capacity(10, 10, 10);
        assert_eq!(b.num_cells(), 0);
        b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        assert_eq!(b.num_cells(), 1);
        assert_eq!(b.num_nets(), 0);
    }

    #[test]
    fn delay_constructor_sets_delay() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell_with_delay("a", 1.0, 1.0, CellKind::Movable, 2.5);
        let nl = b.build().expect("valid");
        assert_eq!(nl.cell(a).delay, 2.5);
    }

    #[test]
    #[should_panic(expected = "unknown cell")]
    fn connect_unknown_cell_panics() {
        let mut b = NetlistBuilder::new();
        let n = b.add_net("n");
        b.connect(CellId::new(3), n, PinDir::Input, 0.0, 0.0);
    }
}
