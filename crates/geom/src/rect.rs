//! Axis-aligned rectangles.

use crate::Point;
use std::fmt;

/// An axis-aligned rectangle given by its lower-left and upper-right corners.
///
/// Rectangles are half-open conceptually, but all the area math below treats
/// them as closed regions of the plane; degenerate (zero-width or
/// zero-height) rectangles have zero area and never overlap anything.
///
/// # Examples
///
/// ```
/// use dpm_geom::Rect;
///
/// let a = Rect::new(0.0, 0.0, 4.0, 4.0);
/// let b = Rect::new(2.0, 2.0, 6.0, 6.0);
/// assert_eq!(a.overlap_area(&b), 4.0);
/// assert_eq!(a.intersection(&b), Some(Rect::new(2.0, 2.0, 4.0, 4.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left x.
    pub llx: f64,
    /// Lower-left y.
    pub lly: f64,
    /// Upper-right x.
    pub urx: f64,
    /// Upper-right y.
    pub ury: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `llx > urx` or `lly > ury`.
    #[inline]
    pub fn new(llx: f64, lly: f64, urx: f64, ury: f64) -> Self {
        debug_assert!(llx <= urx, "rect llx {llx} > urx {urx}");
        debug_assert!(lly <= ury, "rect lly {lly} > ury {ury}");
        Self { llx, lly, urx, ury }
    }

    /// Creates a rectangle from its lower-left corner and size.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_geom::{Point, Rect};
    /// let r = Rect::from_origin_size(Point::new(1.0, 2.0), 3.0, 4.0);
    /// assert_eq!(r, Rect::new(1.0, 2.0, 4.0, 6.0));
    /// ```
    #[inline]
    pub fn from_origin_size(origin: Point, width: f64, height: f64) -> Self {
        Self::new(origin.x, origin.y, origin.x + width, origin.y + height)
    }

    /// Creates a rectangle from its center point and size.
    #[inline]
    pub fn from_center_size(center: Point, width: f64, height: f64) -> Self {
        Self::new(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.urx - self.llx
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.ury - self.lly
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter (`width + height`) — the HPWL contribution of a
    /// bounding box.
    #[inline]
    pub fn half_perimeter(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.llx + self.urx) / 2.0, (self.lly + self.ury) / 2.0)
    }

    /// Lower-left corner.
    #[inline]
    pub fn origin(&self) -> Point {
        Point::new(self.llx, self.lly)
    }

    /// Returns `true` if the point lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.llx && p.x <= self.urx && p.y >= self.lly && p.y <= self.ury
    }

    /// Returns `true` if `other` lies entirely inside or on the boundary.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.llx >= self.llx
            && other.urx <= self.urx
            && other.lly >= self.lly
            && other.ury <= self.ury
    }

    /// Returns `true` if the interiors of the rectangles intersect.
    ///
    /// Rectangles that merely touch at an edge or corner do *not* intersect.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.llx < other.urx && other.llx < self.urx && self.lly < other.ury && other.lly < self.ury
    }

    /// The intersection of two rectangles, or `None` if their interiors are
    /// disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect::new(
            self.llx.max(other.llx),
            self.lly.max(other.lly),
            self.urx.min(other.urx),
            self.ury.min(other.ury),
        ))
    }

    /// Area of the overlap of two rectangles (zero if disjoint).
    ///
    /// This is the kernel of placement bin-density computation.
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = self.urx.min(other.urx) - self.llx.max(other.llx);
        let h = self.ury.min(other.ury) - self.lly.max(other.lly);
        if w > 0.0 && h > 0.0 {
            w * h
        } else {
            0.0
        }
    }

    /// The smallest rectangle containing both rectangles.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.llx.min(other.llx),
            self.lly.min(other.lly),
            self.urx.max(other.urx),
            self.ury.max(other.ury),
        )
    }

    /// The smallest rectangle containing this rectangle and the point.
    #[inline]
    pub fn union_point(&self, p: Point) -> Rect {
        Rect::new(
            self.llx.min(p.x),
            self.lly.min(p.y),
            self.urx.max(p.x),
            self.ury.max(p.y),
        )
    }

    /// A degenerate rectangle at a single point, useful as a bounding-box
    /// accumulator seed.
    #[inline]
    pub fn degenerate(p: Point) -> Rect {
        Rect::new(p.x, p.y, p.x, p.y)
    }

    /// This rectangle translated by `(dx, dy)`.
    #[inline]
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect::new(self.llx + dx, self.lly + dy, self.urx + dx, self.ury + dy)
    }

    /// This rectangle grown outward by `margin` on every side.
    ///
    /// A negative margin shrinks the rectangle; the result is clamped so it
    /// never inverts (it degenerates to its center instead).
    #[inline]
    pub fn inflated(&self, margin: f64) -> Rect {
        let c = self.center();
        Rect::new(
            (self.llx - margin).min(c.x),
            (self.lly - margin).min(c.y),
            (self.urx + margin).max(c.x),
            (self.ury + margin).max(c.y),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[({}, {}) - ({}, {})]",
            self.llx, self.lly, self.urx, self.ury
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_measurements() {
        let r = Rect::new(1.0, 2.0, 5.0, 4.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.half_perimeter(), 6.0);
        assert_eq!(r.center(), Point::new(3.0, 3.0));
        assert_eq!(r.origin(), Point::new(1.0, 2.0));
    }

    #[test]
    fn containment() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
        assert!(r.contains_rect(&Rect::new(1.0, 1.0, 9.0, 9.0)));
        assert!(r.contains_rect(&r));
        assert!(!r.contains_rect(&Rect::new(5.0, 5.0, 11.0, 9.0)));
    }

    #[test]
    fn touching_rects_do_not_intersect() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(2.0, 0.0, 4.0, 2.0);
        assert!(!a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
        assert_eq!(a.intersection(&b), None);
    }

    #[test]
    fn overlap_area_is_symmetric() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(3.0, 1.0, 7.0, 3.0);
        assert_eq!(a.overlap_area(&b), 2.0);
        assert_eq!(b.overlap_area(&a), 2.0);
    }

    #[test]
    fn overlap_of_contained_rect_is_its_area() {
        let outer = Rect::new(0.0, 0.0, 10.0, 10.0);
        let inner = Rect::new(2.0, 2.0, 4.0, 5.0);
        assert_eq!(outer.overlap_area(&inner), inner.area());
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(5.0, -1.0, 6.0, 1.0);
        let u = a.union(&b);
        assert!(u.contains_rect(&a));
        assert!(u.contains_rect(&b));
        assert_eq!(u, Rect::new(0.0, -1.0, 6.0, 2.0));
    }

    #[test]
    fn union_point_extends_bbox() {
        let r = Rect::degenerate(Point::new(1.0, 1.0));
        let r = r.union_point(Point::new(4.0, 0.0));
        assert_eq!(r, Rect::new(1.0, 0.0, 4.0, 1.0));
        assert_eq!(r.half_perimeter(), 4.0);
    }

    #[test]
    fn translate_and_inflate() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.translated(1.0, -1.0), Rect::new(1.0, -1.0, 3.0, 1.0));
        assert_eq!(r.inflated(1.0), Rect::new(-1.0, -1.0, 3.0, 3.0));
        // Shrinking past the center degenerates rather than inverting.
        let tiny = r.inflated(-2.0);
        assert!(tiny.width() >= 0.0 && tiny.height() >= 0.0);
    }

    #[test]
    fn from_center_size_round_trips() {
        let r = Rect::from_center_size(Point::new(5.0, 5.0), 4.0, 2.0);
        assert_eq!(r, Rect::new(3.0, 4.0, 7.0, 6.0));
        assert_eq!(r.center(), Point::new(5.0, 5.0));
    }
}
