//! Property-based tests of the diffusion engine's invariants.

use diffuplace::diffusion::{manipulate_density, DiffusionEngine};
use proptest::prelude::*;

/// Random density field strategy: values in [0, 4] on an n×n grid.
fn arb_field(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..4.0f64, n * n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FTCS with conservative boundaries conserves total density exactly
    /// for any field and any stable time step.
    #[test]
    fn conservative_mass_invariant(field in arb_field(8), dt in 0.01..0.5f64, steps in 1usize..50) {
        let mut e = DiffusionEngine::from_raw(8, 8, field, None);
        e.set_conservative_boundaries(true);
        let m0 = e.total_live_density();
        for _ in 0..steps {
            e.step_density(dt);
        }
        let m1 = e.total_live_density();
        prop_assert!((m0 - m1).abs() < 1e-9 * m0.max(1.0), "mass {m0} -> {m1}");
    }

    /// Density never goes negative and never exceeds the initial maximum
    /// (discrete maximum principle) under either boundary rule.
    #[test]
    fn maximum_principle(field in arb_field(8), paper in any::<bool>(), steps in 1usize..100) {
        let hi0 = field.iter().cloned().fold(0.0f64, f64::max);
        let mut e = DiffusionEngine::from_raw(8, 8, field, None);
        e.set_conservative_boundaries(!paper);
        for _ in 0..steps {
            e.step_density(0.2);
        }
        for &d in e.densities() {
            prop_assert!(d >= -1e-9, "negative density {d}");
            prop_assert!(d <= hi0 + 1e-9, "density {d} above initial max {hi0}");
        }
    }

    /// The field variance is non-increasing: diffusion smooths.
    #[test]
    fn smoothing_invariant(field in arb_field(8)) {
        let variance = |d: &[f64]| {
            let mean = d.iter().sum::<f64>() / d.len() as f64;
            d.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>()
        };
        let mut e = DiffusionEngine::from_raw(8, 8, field, None);
        e.set_conservative_boundaries(true);
        let mut prev = variance(e.densities());
        for _ in 0..30 {
            e.step_density(0.2);
            let v = variance(e.densities());
            prop_assert!(v <= prev + 1e-9, "variance rose: {prev} -> {v}");
            prev = v;
        }
    }

    /// Velocities always point down the density gradient: for any field,
    /// the velocity x-component at a bin has the opposite sign of the
    /// east-west density difference.
    #[test]
    fn velocity_points_downhill(field in arb_field(8)) {
        let mut e = DiffusionEngine::from_raw(8, 8, field, None);
        e.compute_velocities();
        for k in 1..7 {
            for j in 1..7 {
                if e.density(j, k) <= 1e-9 {
                    continue;
                }
                let grad = e.density(j + 1, k) - e.density(j - 1, k);
                let v = e.bin_velocity(j, k).x;
                prop_assert!(grad * v <= 1e-12, "uphill velocity at ({j},{k}): grad {grad}, v {v}");
            }
        }
    }

    /// Density manipulation (Eq. 8) makes the live average exactly d_max
    /// whenever there is both overflow and free space, and never touches
    /// overfull bins.
    #[test]
    fn manipulation_average_invariant(mut field in arb_field(6), d_max in 0.5..2.0f64) {
        let orig = field.clone();
        let (ao, a_s) = manipulate_density(&mut field, None, d_max);
        if ao > 0.0 && ao < a_s {
            let avg = field.iter().sum::<f64>() / field.len() as f64;
            prop_assert!((avg - d_max).abs() < 1e-9, "avg {avg} != d_max {d_max}");
        } else {
            // Infeasible or overflow-free inputs are left untouched.
            prop_assert_eq!(&field, &orig);
        }
        for (before, after) in orig.iter().zip(&field) {
            if *before >= d_max {
                prop_assert_eq!(*before, *after, "overfull bin modified");
            } else {
                prop_assert!(*after >= *before - 1e-12, "under-full bin lowered");
                prop_assert!(*after <= d_max + 1e-12, "lifted above d_max");
            }
        }
    }

    /// Interpolated velocities are bounded component-wise by the extrema
    /// of the four corner velocities (bilinear convexity).
    #[test]
    fn interpolation_is_convex(
        vx in proptest::collection::vec(-2.0..2.0f64, 4),
        vy in proptest::collection::vec(-2.0..2.0f64, 4),
        alpha in 0.0..1.0f64,
        beta in 0.0..1.0f64,
    ) {
        use diffuplace::geom::Vector;
        let corners: Vec<Vector> = (0..4).map(|i| Vector::new(vx[i], vy[i])).collect();
        let v = diffuplace::diffusion::interpolate_velocity(corners[0], corners[1], corners[2], corners[3], alpha, beta);
        let (lo_x, hi_x) = vx.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| (l.min(x), h.max(x)));
        let (lo_y, hi_y) = vy.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &y| (l.min(y), h.max(y)));
        prop_assert!(v.x >= lo_x - 1e-12 && v.x <= hi_x + 1e-12);
        prop_assert!(v.y >= lo_y - 1e-12 && v.y <= hi_y + 1e-12);
    }
}

/// Walls are impermeable under both boundary rules (deterministic probe
/// over many random fields is covered above; this pins the geometry).
#[test]
fn walls_are_impermeable() {
    for paper in [false, true] {
        let n = 6;
        let mut d = vec![0.0; n * n];
        let mut wall = vec![false; n * n];
        // Vertical wall column splitting the grid.
        for k in 0..n {
            wall[k * n + 3] = true;
        }
        d[2 * n + 1] = 3.0; // density on the left side
        let mut e = DiffusionEngine::from_raw(n, n, d, Some(wall));
        e.set_conservative_boundaries(!paper);
        for _ in 0..500 {
            e.step_density(0.2);
        }
        for k in 0..n {
            for j in 4..n {
                assert_eq!(e.density(j, k), 0.0, "leaked through wall at ({j},{k}), paper={paper}");
            }
        }
    }
}
