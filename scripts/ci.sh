#!/usr/bin/env bash
# Hermetic CI gate: formatting, lints, docs, build, tests, a kernel
# determinism matrix (solver × lane mode × thread count, plus the f32
# field mode), kernel throughput floors, and service smoke tests, all
# offline.
#
# The workspace has zero registry dependencies by design — everything
# resolves from path crates — so `--offline` must always succeed. Any
# registry access here is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

# A held cargo target-dir lock means another build is already running in
# this checkout; cargo would block on it silently, which stalls CI for
# as long as that build lives. Fail fast with a diagnosis instead.
for lock in target/release/.cargo-lock target/debug/.cargo-lock target/.cargo-lock; do
    if [[ -e "$lock" ]] && ! flock -n "$lock" true 2>/dev/null; then
        echo "CI ABORT: cargo target-dir lock '$lock' is held by another process." >&2
        echo "Wait for the other build to finish (or kill it) and re-run." >&2
        exit 1
    fi
done

# Every tempfile is tracked and removed on any exit path (success,
# failure, or signal) — a failing grep must not leak mktemp droppings.
tmpfiles=()
cleanup() {
    ((${#tmpfiles[@]})) && rm -f "${tmpfiles[@]}" || true
}
trap cleanup EXIT
mktemp_tracked() {
    local f
    f="$(mktemp)"
    tmpfiles+=("$f")
    printf '%s' "$f"
}

# Each gate is announced with `gate "<name>"`, which also records how
# long the previous gate took; the per-gate timing summary printed just
# before the final verdict makes slow gates easy to spot.
gate_names=()
gate_secs=()
_gate=""
_gate_t0=0
gate() {
    local now=$SECONDS
    if [[ -n "$_gate" ]]; then
        gate_names+=("$_gate")
        gate_secs+=("$((now - _gate_t0))")
    fi
    _gate="$1"
    _gate_t0=$now
    echo "==> $1"
}

gate "cargo fmt --check"
cargo fmt --check

gate "cargo clippy (deny warnings)"
cargo clippy --release --offline --workspace --all-targets -- -D warnings

gate "cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace

gate "cargo build --release"
cargo build --release --offline --workspace

gate "cargo test"
cargo test -q --release --offline --workspace

gate "determinism matrix (DPM_SOLVER × DPM_LANES × DPM_THREADS, pinned checksums)"
# The dpm-par decomposition is independent of the worker count and the
# wide-lane kernel paths are bit-identical to the scalar reference, so
# the golden placement checksums must reproduce these pinned literals at
# every (solver, lane mode, thread count) combination — for both the
# planar run and the volumetric (3-tier) leg. The literals are part of
# the contract: any kernel change that shifts a single output bit fails
# here instead of being silently re-baselined. The dpm-diffusion test
# suite (which carries its own lane/seam fixtures) runs once per
# (solver, threads) pair on the production wide configuration.
declare -A golden_plain=([ftcs]=cef7fcd6348a9441 [spectral]=87b3c85022bddcf4)
declare -A golden_vol=([ftcs]=dcc914ce61fcb375 [spectral]=38f1b000b964ad02)
golden_f32=121830412028994b
for solver in ftcs spectral; do
    for lanes in scalar wide; do
        for t in 1 2 4; do
            if [[ "$lanes" == wide ]]; then
                echo "  -> DPM_SOLVER=$solver DPM_THREADS=$t: dpm-diffusion test suite"
                DPM_SOLVER=$solver DPM_LANES=$lanes DPM_THREADS=$t cargo test -q --release --offline -p dpm-diffusion
            fi
            got=$(DPM_SOLVER=$solver DPM_LANES=$lanes DPM_THREADS=$t cargo run --release --offline -p dpm-bench --bin golden_checksum 2>/dev/null)
            if [[ "$got" != "${golden_plain[$solver]}" ]]; then
                echo "DETERMINISM BREAK: $solver lanes=$lanes threads=$t planar checksum $got != ${golden_plain[$solver]}" >&2
                exit 1
            fi
            got=$(DPM_SOLVER=$solver DPM_LANES=$lanes DPM_THREADS=$t cargo run --release --offline -p dpm-bench --bin golden_checksum -- vol 2>/dev/null)
            if [[ "$got" != "${golden_vol[$solver]}" ]]; then
                echo "DETERMINISM BREAK: $solver lanes=$lanes threads=$t volumetric checksum $got != ${golden_vol[$solver]}" >&2
                exit 1
            fi
        done
    done
    echo "  -> $solver planar+volumetric checksums pinned across lanes × threads"
done
# The f32 field mode pins its own checksum (FTCS only — the spectral
# solver stays f64). It must be invariant across BOTH axes: the lane
# paths never regroup the f32 summation order, and threads only change
# scheduling, never arithmetic.
for lanes in scalar wide; do
    for t in 1 2 4; do
        got=$(DPM_LANES=$lanes DPM_THREADS=$t cargo run --release --offline -p dpm-bench --bin golden_checksum -- f32 2>/dev/null)
        if [[ "$got" != "$golden_f32" ]]; then
            echo "DETERMINISM BREAK: f32 lanes=$lanes threads=$t checksum $got != $golden_f32" >&2
            exit 1
        fi
    done
done
echo "  -> f32 checksum pinned across lanes × threads"

gate "kernel smoke test (perf_kernels --smoke)"
# Runs the kernel harness on a 64x64 grid, including the spectral-vs-FTCS
# race; the greps pin the race section (wall-clock jump comparison and
# the field-update FLOP model) into the emitted JSON.
kernels_out="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_kernels -- --smoke "$kernels_out" >/dev/null
grep -q '"bench": "perf_kernels"' "$kernels_out"
grep -q '"spectral_vs_ftcs"' "$kernels_out"
grep -q '"spectral_round_trip_ns"' "$kernels_out"
grep -q '"field_update_flops"' "$kernels_out"
grep -q '"flops_ratio"' "$kernels_out"
# The volumetric 7-point stencil section, timed at every thread count.
grep -q '"stencil3d"' "$kernels_out"
grep -q '"nz": 4' "$kernels_out"
grep -Eq '"kernel": "stencil3d", "threads": 8' "$kernels_out"
# The lane/precision axes: every sample carries both keys, the
# single-thread ladder includes the scalar-lane reference and the f32
# field mode, and the derived speedup ratios are emitted.
grep -q '"lanes": "scalar"' "$kernels_out"
grep -q '"precision": "f32"' "$kernels_out"
grep -q '"lane_speedup_1t"' "$kernels_out"
grep -q '"f32_speedup_1t"' "$kernels_out"
grep -q '"calibration"' "$kernels_out"

echo "  -> throughput floors (ns/call ceilings scaled by the calibration loop)"
# Absolute wall-clock pins would break on the next slower container, so
# each kernel's smoke-run ns/call is divided by the calibration loop's
# ns/iter (a fixed serial FP dependency chain timed in the same
# process) and compared against a unitless ceiling. The ceilings carry
# roughly 5-10x headroom over the tuned kernels: they do not police
# scheduling jitter, they catch structural regressions — a stencil
# falling off its lane path runs ~5x slower, a splat losing its bucket
# pass ~10x.
cal_ns=$(grep -o '"ns_per_iter": [0-9.]*' "$kernels_out" | head -1 | grep -o '[0-9.]*$')
floor_check() {
    local kernel="$1" ceiling="$2" ns
    ns=$(grep -o "\"kernel\": \"$kernel\", \"threads\": 1, \"lanes\": \"wide\", \"precision\": \"f64\", \"calls\": [0-9]*, \"ns_per_call\": [0-9.]*" "$kernels_out" |
        head -1 | grep -o '[0-9.]*$')
    awk -v ns="$ns" -v cal="$cal_ns" -v cap="$ceiling" -v k="$kernel" 'BEGIN {
        if (ns == "" || cal == "" || cal <= 0) {
            printf "KERNEL FLOOR: missing 1-thread wide/f64 sample or calibration for %s\n", k > "/dev/stderr"
            exit 1
        }
        if (ns > cap * cal) {
            printf "KERNEL FLOOR: %s at %.0f ns/call exceeds %.0f (= %s x %.3f ns calibration)\n", k, ns, cap * cal, cap, cal > "/dev/stderr"
            exit 1
        }
    }'
}
floor_check ftcs 40000
floor_check velocity 80000
floor_check stencil3d 300000
floor_check splat 600000
floor_check advect 600000

gate "service smoke test (perf_serve --smoke --pipeline 2)"
# Boots a real server on an ephemeral port, replays a deterministic
# open-loop schedule with two requests pipelined per connection, and
# asserts every request was answered and the shutdown drained cleanly
# (the binary exits non-zero otherwise). The schedule includes streamed
# requests, so at least one in-flight progress frame must arrive before
# its response, and the wire-level stats snapshot must agree with the
# server's own counters — both enforced inside the binary; the greps
# below pin the observability fields into the emitted JSON.
smoke_out="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_serve -- "$smoke_out" --smoke --pipeline 2 >/dev/null
grep -q '"bench": "perf_serve"' "$smoke_out"
grep -q '"hardware_threads"' "$smoke_out"
grep -q '"p99_us"' "$smoke_out"
grep -q '"head_of_line"' "$smoke_out"
grep -Eq '"progress_frames": [1-9][0-9]*' "$smoke_out"

gate "control-plane smoke test (perf_serve --smoke --tenants 2)"
# Boots the dpm-ctl control plane in sharded mode over a backend
# registry seeded with one dead primary and a warm spare, opens 1000
# idle connections through the poll-based front-end, and replays two
# tenants' ECO loops: one NeedDesign upload each, then delta-only
# requests with a cold full resend mixed in. The binary asserts every
# request was answered, exact cache-hit accounting, and that the dead
# primary was permanently replaced; the greps pin the multi-tenant
# telemetry — cache traffic, delta traffic, and per-tenant tail
# latency — into the emitted JSON.
ctl_out="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_serve -- "$ctl_out" --smoke --tenants 2 >/dev/null
grep -q '"bench": "perf_serve"' "$ctl_out"
grep -q '"mode": "multi_tenant_smoke"' "$ctl_out"
grep -q '"tenants": 2' "$ctl_out"
grep -Eq '"idle_connections": 1000' "$ctl_out"
grep -Eq '"cache_hits": [1-9][0-9]*' "$ctl_out"
grep -Eq '"delta_requests": [1-9][0-9]*' "$ctl_out"
grep -Eq '"need_design": [1-9][0-9]*' "$ctl_out"
grep -Eq '"replacements": [1-9][0-9]*' "$ctl_out"
grep -q '"tenant0": {"weight"' "$ctl_out"
grep -q '"tenant1": {"weight"' "$ctl_out"
grep -q '"p99_us"' "$ctl_out"

gate "trace smoke test (perf_serve --smoke --tenants 2 --trace-out)"
# Re-runs the control-plane smoke with tracing armed on one extra job
# and exports its stitched span tree as Chrome trace_event JSONL. The
# greps pin the fleet-wide trace shape: every line carries the same
# trace_id (root + front-end admission + shard dispatches + kernel
# spans all stitched into one tree), and the tenant label rides the
# root span's args.
trace_json="$(mktemp_tracked)"
trace_jsonl="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_serve -- "$trace_json" --smoke --tenants 2 --trace-out "$trace_jsonl" >/dev/null
grep -q '"name":"client.request"' "$trace_jsonl"
grep -q '"name":"ctl.admit' "$trace_jsonl"
grep -q '"name":"queue.wait"' "$trace_jsonl"
grep -q '"name":"shard.dispatch"' "$trace_jsonl"
grep -q '"name":"kernel.' "$trace_jsonl"
grep -q '"tenant":"tenant0"' "$trace_jsonl"
trace_ids=$(grep -o '"trace_id":"[0-9a-f]*"' "$trace_jsonl" | sort -u | wc -l)
if [[ "$trace_ids" -ne 1 ]]; then
    echo "TRACE BREAK: expected one trace_id in $trace_jsonl, found $trace_ids" >&2
    exit 1
fi

gate "bench guard (committed BENCH_*.json keys and throughput must survive)"
# A benchmark rewrite that drops a previously-recorded field silently
# erases history — every key present in the committed BENCH_*.json must
# survive in the worktree copy (new keys are fine).
for f in BENCH_*.json; do
    [[ -f "$f" ]] || continue
    git cat-file -e "HEAD:$f" 2>/dev/null || continue
    head_keys="$(mktemp_tracked)"
    work_keys="$(mktemp_tracked)"
    git show "HEAD:$f" | grep -o '"[A-Za-z0-9_]*":' | sort -u >"$head_keys"
    grep -o '"[A-Za-z0-9_]*":' "$f" | sort -u >"$work_keys"
    lost=$(comm -23 "$head_keys" "$work_keys")
    if [[ -n "$lost" ]]; then
        echo "BENCH GUARD: $f lost committed keys:" >&2
        echo "$lost" >&2
        exit 1
    fi
done
# Regression rule, kernel bench only: when the worktree BENCH_kernels
# was recorded on the same hardware as the committed one (matching
# hardware_threads), no single-thread sample may regress by more than
# 25% ns/call against the committed value for the same
# (kernel, grid, lanes, precision) configuration. Single-thread only:
# the multi-thread samples on an oversubscribed CI box measure scheduler
# jitter, not kernels. Legacy samples without lanes/precision keys are
# the production configuration (wide/f64).
sample_table() {
    awk '
        /"nx":/ {
            if (match($0, /"nx": [0-9]+/)) nx = substr($0, RSTART + 6, RLENGTH - 6)
        }
        /"kernel":/ {
            kernel = ""; threads = ""; lanes = "wide"; prec = "f64"; ns = ""
            if (match($0, /"kernel": "[a-z0-9_]+"/)) kernel = substr($0, RSTART + 11, RLENGTH - 12)
            if (match($0, /"threads": [0-9]+/)) threads = substr($0, RSTART + 11, RLENGTH - 11)
            if (match($0, /"lanes": "[a-z]+"/)) lanes = substr($0, RSTART + 10, RLENGTH - 11)
            if (match($0, /"precision": "[a-z0-9]+"/)) prec = substr($0, RSTART + 14, RLENGTH - 15)
            if (match($0, /"ns_per_call": [0-9.]+/)) ns = substr($0, RSTART + 15, RLENGTH - 15)
            if (kernel != "" && threads == "1" && ns != "") print kernel "/" nx "/" lanes "/" prec, ns
        }' "$1"
}
if [[ -f BENCH_kernels.json ]] && git cat-file -e "HEAD:BENCH_kernels.json" 2>/dev/null; then
    head_json="$(mktemp_tracked)"
    git show "HEAD:BENCH_kernels.json" >"$head_json"
    head_hw=$(grep -o '"hardware_threads": [0-9]*' "$head_json" | head -1 | grep -o '[0-9]*$')
    work_hw=$(grep -o '"hardware_threads": [0-9]*' BENCH_kernels.json | head -1 | grep -o '[0-9]*$')
    if [[ -n "$head_hw" && "$head_hw" == "$work_hw" ]]; then
        head_tab="$(mktemp_tracked)"
        work_tab="$(mktemp_tracked)"
        sample_table "$head_json" >"$head_tab"
        sample_table BENCH_kernels.json >"$work_tab"
        awk 'NR == FNR { old[$1] = $2; next }
            ($1 in old) && $2 > old[$1] * 1.25 {
                printf "BENCH GUARD: %s regressed %.0f -> %.0f ns/call (>25%%)\n", $1, old[$1], $2 > "/dev/stderr"
                bad = 1
            }
            END { exit bad }' "$head_tab" "$work_tab"
        echo "  -> same-hardware run: 1-thread ns/call within 25% of committed"
    else
        echo "  -> hardware_threads differ (HEAD ${head_hw:-none}, worktree ${work_hw:-none}); regression rule skipped"
    fi
fi

gate "shard smoke test (perf_shard --smoke)"
# Boots a 2-shard router over two TCP servers on ephemeral ports and
# replays one streamed request. The binary asserts the maximum-principle
# trace, error-free shards, and nonzero progress frames; the greps pin
# the shard telemetry into the emitted JSON.
shard_out="$(mktemp_tracked)"
cargo run --release --offline -p dpm-bench --bin perf_shard -- "$shard_out" --smoke >/dev/null
grep -q '"bench": "perf_shard"' "$shard_out"
grep -q '"shards": 2' "$shard_out"
grep -Eq '"halo_exchanges": [1-9][0-9]*' "$shard_out"

gate_names+=("$_gate")
gate_secs+=("$((SECONDS - _gate_t0))")
echo "==> gate timing"
for i in "${!gate_names[@]}"; do
    printf '    %5ss  %s\n' "${gate_secs[$i]}" "${gate_names[$i]}"
done
echo "CI green."
