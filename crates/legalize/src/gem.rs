//! `GEM`-like computational-geometry migration: density-gradient grid
//! stretching, then detailed legalization.
//!
//! Luo, Ren, Alpert & Pan (ICCAD 2005, reference \[18\] of the paper)
//! spread cells "as if they are tethered to an expanding grid", with the
//! stretching guided by the density gradient. This module implements that
//! description with alternating one-dimensional bin-boundary stretches
//! (the same family as FastPlace's cell shifting): per bin-row, dense
//! bins receive proportionally more width, and cells map linearly from
//! the old bin interval to the new one; then the same along columns.

use crate::detailed::detailed_legalize;
use crate::Legalizer;
use dpm_geom::Point;
use dpm_netlist::Netlist;
use dpm_place::{BinGrid, DensityMap, Die, Placement};

/// The grid-stretch legalizer (`GEM`-like in the ISPD comparison tables).
///
/// # Examples
///
/// ```
/// use dpm_gen::{CircuitSpec, InflationSpec};
/// use dpm_legalize::{GemLegalizer, Legalizer};
///
/// let mut bench = CircuitSpec::small(19).generate();
/// bench.inflate(&InflationSpec::center_width(0.1, 1.6));
/// let outcome = GemLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
/// assert!(outcome.is_legal);
/// ```
#[derive(Debug, Clone)]
pub struct GemLegalizer {
    /// Bin edge length in row heights.
    bin_rows: f64,
    /// Target density.
    d_max: f64,
    /// Maximum stretch iterations.
    max_iters: usize,
    /// Softening constant added to every bin's demand so empty bins keep
    /// some width.
    softness: f64,
}

impl Default for GemLegalizer {
    fn default() -> Self {
        Self {
            bin_rows: 4.0,
            d_max: 1.0,
            max_iters: 12,
            softness: 0.25,
        }
    }
}

impl GemLegalizer {
    /// Creates the legalizer with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bin size in row heights (GEM uses coarser grids than
    /// diffusion — part of why it is faster).
    ///
    /// # Panics
    ///
    /// Panics if `bin_rows` is not positive.
    pub fn with_bin_rows(mut self, bin_rows: f64) -> Self {
        assert!(bin_rows > 0.0, "bin size must be positive");
        self.bin_rows = bin_rows;
        self
    }

    /// One horizontal stretch pass: returns `true` if anything moved.
    fn stretch_x(&self, netlist: &Netlist, placement: &mut Placement, map: &DensityMap) -> bool {
        let grid = map.grid();
        let nx = grid.nx();
        let region = grid.region();
        let mut moved = false;
        // New boundaries per bin-row.
        let mut new_bounds = vec![0.0f64; nx + 1];
        let mut row_of: Vec<Vec<(dpm_netlist::CellId, Point)>> = vec![Vec::new(); grid.ny()];
        for cell in netlist.movable_cell_ids() {
            let c = placement.cell_center(netlist, cell);
            let b = grid.bin_of_point(c);
            row_of[b.k].push((cell, c));
        }
        #[allow(clippy::needless_range_loop)]
        for k in 0..grid.ny() {
            // Demand per bin in this bin-row.
            let mut total = 0.0;
            let mut demand = Vec::with_capacity(nx);
            for j in 0..nx {
                let i = k * nx + j;
                let d = map.densities()[i].max(0.0) + self.softness;
                demand.push(d);
                total += d;
            }
            new_bounds[0] = region.llx;
            for j in 0..nx {
                new_bounds[j + 1] = new_bounds[j] + region.width() * demand[j] / total;
            }
            for &(cell, center) in &row_of[k] {
                let j = grid.bin_of_point(center).j;
                let old_lo = region.llx + j as f64 * grid.bin_width();
                let frac = ((center.x - old_lo) / grid.bin_width()).clamp(0.0, 1.0);
                let new_x = new_bounds[j] + frac * (new_bounds[j + 1] - new_bounds[j]);
                if (new_x - center.x).abs() > 1e-12 {
                    moved = true;
                    let c = netlist.cell(cell);
                    let pos = placement.get(cell);
                    placement.set(cell, Point::new(new_x - c.width / 2.0, pos.y));
                }
            }
        }
        moved
    }

    /// One vertical stretch pass.
    fn stretch_y(&self, netlist: &Netlist, placement: &mut Placement, map: &DensityMap) -> bool {
        let grid = map.grid();
        let ny = grid.ny();
        let nx = grid.nx();
        let region = grid.region();
        let mut moved = false;
        let mut new_bounds = vec![0.0f64; ny + 1];
        let mut col_of: Vec<Vec<(dpm_netlist::CellId, Point)>> = vec![Vec::new(); nx];
        for cell in netlist.movable_cell_ids() {
            let c = placement.cell_center(netlist, cell);
            let b = grid.bin_of_point(c);
            col_of[b.j].push((cell, c));
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..nx {
            let mut total = 0.0;
            let mut demand = Vec::with_capacity(ny);
            for k in 0..ny {
                let i = k * nx + j;
                let d = map.densities()[i].max(0.0) + self.softness;
                demand.push(d);
                total += d;
            }
            new_bounds[0] = region.lly;
            for k in 0..ny {
                new_bounds[k + 1] = new_bounds[k] + region.height() * demand[k] / total;
            }
            for &(cell, center) in &col_of[j] {
                let k = grid.bin_of_point(center).k;
                let old_lo = region.lly + k as f64 * grid.bin_height();
                let frac = ((center.y - old_lo) / grid.bin_height()).clamp(0.0, 1.0);
                let new_y = new_bounds[k] + frac * (new_bounds[k + 1] - new_bounds[k]);
                if (new_y - center.y).abs() > 1e-12 {
                    moved = true;
                    let c = netlist.cell(cell);
                    let pos = placement.get(cell);
                    placement.set(cell, Point::new(pos.x, new_y - c.height / 2.0));
                }
            }
        }
        moved
    }
}

impl Legalizer for GemLegalizer {
    fn name(&self) -> &str {
        "GEM"
    }

    fn legalize_in_place(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) {
        let bin = self.bin_rows * die.row_height();
        for _ in 0..self.max_iters {
            let grid = BinGrid::new(die.outline(), bin);
            let map = DensityMap::from_placement(netlist, placement, grid);
            if map.max_density() <= self.d_max {
                break;
            }
            let mx = self.stretch_x(netlist, placement, &map);
            let grid = BinGrid::new(die.outline(), bin);
            let map = DensityMap::from_placement(netlist, placement, grid);
            let my = self.stretch_y(netlist, placement, &map);
            if !mx && !my {
                break;
            }
        }
        detailed_legalize(netlist, die, placement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util;
    use dpm_place::{DensityMap, MovementStats};

    #[test]
    fn legalizes_inflated_benchmark() {
        let mut bench = test_util::inflated_small(61);
        let outcome =
            GemLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn legalizes_hotspot_benchmark() {
        let mut bench = test_util::hotspot_small(62);
        let outcome =
            GemLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn respects_macros() {
        let mut bench = test_util::with_macros(63);
        let outcome =
            GemLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn stretching_reduces_max_density() {
        let mut bench = test_util::hotspot_small(64);
        let bin = 4.0 * bench.die.row_height();
        let before = DensityMap::from_placement(
            &bench.netlist,
            &bench.placement,
            BinGrid::new(bench.die.outline(), bin),
        )
        .max_density();
        let gem = GemLegalizer::new();
        let grid = BinGrid::new(bench.die.outline(), bin);
        let map = DensityMap::from_placement(&bench.netlist, &bench.placement, grid);
        gem.stretch_x(&bench.netlist, &mut bench.placement, &map);
        let grid = BinGrid::new(bench.die.outline(), bin);
        let map = DensityMap::from_placement(&bench.netlist, &bench.placement, grid);
        gem.stretch_y(&bench.netlist, &mut bench.placement, &map);
        let after = DensityMap::from_placement(
            &bench.netlist,
            &bench.placement,
            BinGrid::new(bench.die.outline(), bin),
        )
        .max_density();
        assert!(
            after < before,
            "stretching did not spread: {before} -> {after}"
        );
    }

    #[test]
    fn legal_input_barely_moves() {
        let bench = dpm_gen::CircuitSpec::small(65).generate();
        let mut p = bench.placement.clone();
        GemLegalizer::new().legalize(&bench.netlist, &bench.die, &mut p);
        let m = MovementStats::between(&bench.netlist, &bench.placement, &p);
        // Uniform density: the stretch map is near-identity, and detailed
        // legalization finds everything already legal.
        let die_span = bench.die.outline().width();
        assert!(m.max < die_span / 4.0, "legal input moved too much: {m}");
    }
}
