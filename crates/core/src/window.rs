//! Local diffusion window identification (paper Algorithm 2).

use dpm_place::DensityMap;

/// Identifies the bins allowed to diffuse in a local-diffusion round.
///
/// Implements the paper's Algorithm 2: every bin starts *fixed*; for each
/// bin whose average density over the `W1`-neighborhood (Chebyshev radius
/// `w1`) exceeds `d_max`, all bins within radius `w2` are marked movable.
///
/// Returns a row-major *frozen* mask: `true` means the bin stays fixed
/// (no diffusion), `false` means it participates. Wall (macro) bins are
/// always frozen.
///
/// # Panics
///
/// Panics if `w2 < w1` (the paper requires `W2 ≥ W1`).
///
/// # Examples
///
/// ```
/// use dpm_geom::{Point, Rect};
/// use dpm_netlist::{NetlistBuilder, CellKind};
/// use dpm_place::{BinGrid, DensityMap, Placement};
/// use dpm_diffusion::identify_windows;
///
/// // One badly overfull spot in a 5×5 grid.
/// let mut b = NetlistBuilder::new();
/// for i in 0..4 {
///     b.add_cell(format!("c{i}"), 10.0, 10.0, CellKind::Movable);
/// }
/// let nl = b.build()?;
/// let mut p = Placement::new(4);
/// for c in nl.cell_ids() {
///     p.set(c, Point::new(20.0, 20.0)); // all piled into the center bin
/// }
/// let grid = BinGrid::new(Rect::new(0.0, 0.0, 50.0, 50.0), 10.0);
/// let d = DensityMap::from_placement(&nl, &p, grid);
/// // W1 = 0: judge raw bin density; W2 = 1: open the hot bin's direct
/// // neighborhood.
/// let frozen = identify_windows(&d, 0, 1, 1.0);
/// // The center and its neighbors unfreeze; the far corner stays frozen.
/// assert!(!frozen[2 * 5 + 2]);
/// assert!(frozen[0]);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
pub fn identify_windows(density: &DensityMap, w1: usize, w2: usize, d_max: f64) -> Vec<bool> {
    assert!(w2 >= w1, "W2 must be at least W1");
    let avg = density.windowed_average(w1);
    let mut frozen = Vec::new();
    identify_windows_into(density, &avg, w2, d_max, &mut frozen);
    frozen
}

/// [`identify_windows`] from an already-built `W1` windowed-average buffer
/// (see [`DensityMap::windowed_average_into`]) into a caller-owned frozen
/// mask — the allocation-free path the local-diffusion round loop uses.
///
/// # Panics
///
/// Panics if `avg` does not cover the grid.
pub fn identify_windows_into(
    density: &DensityMap,
    avg: &[f64],
    w2: usize,
    d_max: f64,
    frozen: &mut Vec<bool>,
) {
    let grid = density.grid();
    let nx = grid.nx();
    let ny = grid.ny();
    assert_eq!(
        avg.len(),
        nx * ny,
        "windowed-average buffer length mismatch"
    );
    frozen.clear();
    frozen.resize(nx * ny, true);

    for k in 0..ny {
        for j in 0..nx {
            let i = k * nx + j;
            if density.fixed_mask()[i] {
                continue; // walls never unfreeze
            }
            if avg[i] > d_max {
                let j_lo = j.saturating_sub(w2);
                let j_hi = (j + w2).min(nx - 1);
                let k_lo = k.saturating_sub(w2);
                let k_hi = (k + w2).min(ny - 1);
                for kk in k_lo..=k_hi {
                    for jj in j_lo..=j_hi {
                        let g = kk * nx + jj;
                        if !density.fixed_mask()[g] {
                            frozen[g] = false;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::{Point, Rect};
    use dpm_netlist::{CellKind, NetlistBuilder};
    use dpm_place::{BinGrid, Placement};

    /// Builds a 6×6 grid with `n_center` 10×10 cells piled at (25, 25).
    fn hot_center(n_center: usize) -> DensityMap {
        let mut b = NetlistBuilder::new();
        for i in 0..n_center {
            b.add_cell(format!("c{i}"), 10.0, 10.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let mut p = Placement::new(n_center);
        for c in nl.cell_ids() {
            p.set(c, Point::new(20.0, 20.0));
        }
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 60.0, 60.0), 10.0);
        DensityMap::from_placement(&nl, &p, grid)
    }

    #[test]
    fn no_overflow_freezes_everything() {
        let d = hot_center(1); // a single cell fills its bin exactly
        let frozen = identify_windows(&d, 0, 0, 1.0);
        assert!(
            frozen.iter().all(|&f| f),
            "no bin should unfreeze at d = 1.0"
        );
    }

    #[test]
    fn overflow_opens_w2_neighborhood() {
        let d = hot_center(3);
        let frozen = identify_windows(&d, 0, 1, 1.0);
        let nx = 6;
        // The hot bin is (2,2); its W2=1 neighborhood opens.
        for k in 1..=3 {
            for j in 1..=3 {
                assert!(!frozen[k * nx + j], "bin ({j},{k}) should be movable");
            }
        }
        // Far corner stays frozen.
        assert!(frozen[5 * nx + 5]);
        assert!(frozen[0]);
    }

    #[test]
    fn larger_w2_opens_more() {
        let d = hot_center(3);
        let open1 = identify_windows(&d, 0, 1, 1.0)
            .iter()
            .filter(|&&f| !f)
            .count();
        let open3 = identify_windows(&d, 0, 3, 1.0)
            .iter()
            .filter(|&&f| !f)
            .count();
        assert!(open3 > open1);
    }

    #[test]
    fn w1_averaging_can_mask_small_spikes() {
        // A mild spike: raw density 1.2 in one bin, zero elsewhere. With a
        // large analysis window the average dips below d_max and nothing
        // unfreezes.
        let d = hot_center(2); // density 2.0 at center? 2 cells → 2.0
        let frozen_tight = identify_windows(&d, 0, 0, 1.0);
        assert!(frozen_tight.iter().any(|&f| !f));
        let frozen_wide = identify_windows(&d, 3, 3, 1.0);
        // Averaged over a 7x7 window the spike is 2/36 < 1 → frozen.
        assert!(frozen_wide.iter().all(|&f| f));
    }

    #[test]
    fn walls_never_unfreeze() {
        let mut b = NetlistBuilder::new();
        let m = b.add_cell("m", 10.0, 10.0, CellKind::FixedMacro);
        for i in 0..5 {
            b.add_cell(format!("c{i}"), 10.0, 10.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let mut p = Placement::new(nl.num_cells());
        p.set(m, Point::new(30.0, 20.0)); // wall next to hot spot
        for c in nl.movable_cell_ids() {
            p.set(c, Point::new(20.0, 20.0));
        }
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 60.0, 60.0), 10.0);
        let d = DensityMap::from_placement(&nl, &p, grid);
        let frozen = identify_windows(&d, 0, 2, 1.0);
        let nx = 6;
        assert!(frozen[2 * nx + 3], "macro bin must stay frozen");
        assert!(!frozen[2 * nx + 2], "hot bin must unfreeze");
    }

    #[test]
    #[should_panic(expected = "W2 must be at least W1")]
    fn rejects_w2_less_than_w1() {
        let d = hot_center(1);
        let _ = identify_windows(&d, 2, 1, 1.0);
    }
}
