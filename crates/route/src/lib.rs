#![warn(missing_docs)]

//! Minimal global routing over a capacity grid.
//!
//! The paper quotes "wiring congestion after global routing" as one of
//! its quality metrics. RUDY (the `dpm-congestion` crate) estimates demand
//! without routing; this crate actually *routes*: every net is
//! decomposed into driver→sink two-pin connections, each connection is
//! embedded as an L- or Z-shaped path over a grid of routing tiles with
//! per-tile horizontal/vertical track capacities, and congested nets are
//! ripped up and rerouted along the least-congested pattern. The result
//! is a real overflow count — the metric a router-driven flow would see.
//!
//! This is deliberately a *pattern* router (no maze fallback): placement
//! comparisons only need a congestion signal that responds to cell
//! spreading, and pattern routing is the standard first phase of global
//! routers (e.g. FastRoute's L/Z phases).
//!
//! # Examples
//!
//! ```
//! use dpm_route::{GlobalRouter, RouterConfig};
//! use dpm_gen::CircuitSpec;
//!
//! let bench = CircuitSpec::small(3).generate();
//! let result = GlobalRouter::new(RouterConfig::default())
//!     .route(&bench.netlist, &bench.placement, &bench.die);
//! assert!(result.routed_connections > 0);
//! assert!(result.wirelength > 0.0);
//! ```

use dpm_netlist::Netlist;
use dpm_place::{BinGrid, BinIdx, Die, Placement};

/// Router parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Routing-tile edge length in row heights.
    pub tile_rows: f64,
    /// Horizontal track capacity per tile.
    pub h_capacity: f64,
    /// Vertical track capacity per tile.
    pub v_capacity: f64,
    /// Rip-up-and-reroute passes after the initial routing.
    pub reroute_passes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            tile_rows: 3.0,
            h_capacity: 12.0,
            v_capacity: 12.0,
            reroute_passes: 2,
        }
    }
}

/// Outcome of routing a placement.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingResult {
    /// Number of two-pin connections embedded.
    pub routed_connections: usize,
    /// Total routed wirelength (world units, tile-center metric).
    pub wirelength: f64,
    /// Total capacity overflow `Σ max(usage − cap, 0)` over tiles and
    /// directions.
    pub overflow: f64,
    /// Number of tiles with overflow in either direction.
    pub hot_tiles: usize,
    /// Peak usage/capacity ratio over all tiles/directions.
    pub max_congestion: f64,
    /// Horizontal usage per tile, row-major (for heatmaps).
    pub h_usage: Vec<f64>,
    /// Vertical usage per tile, row-major.
    pub v_usage: Vec<f64>,
    /// The routing grid.
    pub grid: BinGrid,
}

/// The pattern global router.
#[derive(Debug, Clone)]
pub struct GlobalRouter {
    cfg: RouterConfig,
}

/// One two-pin connection in tile coordinates.
#[derive(Debug, Clone, Copy)]
struct Connection {
    from: BinIdx,
    to: BinIdx,
}

/// The route shape chosen for a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pattern {
    /// Horizontal first, then vertical (one bend at `(to.j, from.k)`).
    HV,
    /// Vertical first, then horizontal.
    VH,
    /// Z-shape with the jog at column `j`.
    ZAtColumn(usize),
}

impl GlobalRouter {
    /// Creates a router with the given parameters.
    pub fn new(cfg: RouterConfig) -> Self {
        Self { cfg }
    }

    /// Routes every net of `placement` and reports congestion.
    ///
    /// Nets are decomposed into driver→sink connections (driverless nets
    /// use the first pin as the source). Initial routing picks the less
    /// congested L; each reroute pass rips up connections that cross
    /// overflowed tiles and re-embeds them along the cheapest of the two
    /// Ls and a sample of Z jogs.
    pub fn route(&self, netlist: &Netlist, placement: &Placement, die: &Die) -> RoutingResult {
        let grid = BinGrid::new(die.outline(), self.cfg.tile_rows * die.row_height());
        let mut state = State::new(&grid, &self.cfg);

        // Decompose nets.
        let mut connections = Vec::new();
        for net in netlist.net_ids() {
            let pins = &netlist.net(net).pins;
            if pins.len() < 2 {
                continue;
            }
            let source = netlist.driver_of(net).unwrap_or(pins[0]);
            let from = grid.bin_of_point(placement.pin_position(netlist, source));
            for &p in pins {
                if p == source {
                    continue;
                }
                let to = grid.bin_of_point(placement.pin_position(netlist, p));
                connections.push(Connection { from, to });
            }
        }

        // Initial pass: cheaper of the two L shapes.
        let mut chosen: Vec<Pattern> = connections
            .iter()
            .map(|&c| {
                let p = state.cheapest_l(c);
                state.apply(c, p, 1.0);
                p
            })
            .collect();

        // Rip-up and reroute through overflowed tiles.
        for _ in 0..self.cfg.reroute_passes {
            let mut progressed = false;
            for (i, &c) in connections.iter().enumerate() {
                if !state.crosses_overflow(c, chosen[i]) {
                    continue;
                }
                state.apply(c, chosen[i], -1.0);
                let p = state.cheapest_any(c);
                state.apply(c, p, 1.0);
                if p != chosen[i] {
                    progressed = true;
                    chosen[i] = p;
                }
            }
            if !progressed {
                break;
            }
        }

        state.into_result(connections.len(), &grid)
    }
}

/// Mutable routing state: per-tile directional usage.
struct State {
    nx: usize,
    ny: usize,
    h_usage: Vec<f64>,
    v_usage: Vec<f64>,
    h_cap: f64,
    v_cap: f64,
}

impl State {
    fn new(grid: &BinGrid, cfg: &RouterConfig) -> Self {
        Self {
            nx: grid.nx(),
            ny: grid.ny(),
            h_usage: vec![0.0; grid.len()],
            v_usage: vec![0.0; grid.len()],
            h_cap: cfg.h_capacity,
            v_cap: cfg.v_capacity,
        }
    }

    fn at(&self, j: usize, k: usize) -> usize {
        k * self.nx + j
    }

    /// Congestion cost of adding one track through a tile: 1 plus a
    /// steep penalty once usage approaches capacity (negotiated-style).
    fn cost(&self, usage: f64, cap: f64) -> f64 {
        let ratio = (usage + 1.0) / cap.max(1e-9);
        1.0 + if ratio > 1.0 {
            16.0 * (ratio - 1.0)
        } else {
            ratio * ratio
        }
    }

    fn for_each_tile(c: Connection, p: Pattern, mut f: impl FnMut(usize, usize, bool)) {
        let (j0, k0) = (c.from.j, c.from.k);
        let (j1, k1) = (c.to.j, c.to.k);
        let (jl, jh) = (j0.min(j1), j0.max(j1));
        let (kl, kh) = (k0.min(k1), k0.max(k1));
        match p {
            Pattern::HV => {
                for j in jl..=jh {
                    f(j, k0, true);
                }
                for k in kl..=kh {
                    f(j1, k, false);
                }
            }
            Pattern::VH => {
                for k in kl..=kh {
                    f(j0, k, false);
                }
                for j in jl..=jh {
                    f(j, k1, true);
                }
            }
            Pattern::ZAtColumn(jz) => {
                let (ja, jb) = (j0.min(jz), j0.max(jz));
                for j in ja..=jb {
                    f(j, k0, true);
                }
                for k in kl..=kh {
                    f(jz, k, false);
                }
                let (jc, jd) = (jz.min(j1), jz.max(j1));
                for j in jc..=jd {
                    f(j, k1, true);
                }
            }
        }
    }

    fn pattern_cost(&self, c: Connection, p: Pattern) -> f64 {
        let mut total = 0.0;
        Self::for_each_tile(c, p, |j, k, horizontal| {
            let i = self.at(j, k);
            total += if horizontal {
                self.cost(self.h_usage[i], self.h_cap)
            } else {
                self.cost(self.v_usage[i], self.v_cap)
            };
        });
        total
    }

    fn cheapest_l(&self, c: Connection) -> Pattern {
        if self.pattern_cost(c, Pattern::HV) <= self.pattern_cost(c, Pattern::VH) {
            Pattern::HV
        } else {
            Pattern::VH
        }
    }

    fn cheapest_any(&self, c: Connection) -> Pattern {
        let mut best = self.cheapest_l(c);
        let mut best_cost = self.pattern_cost(c, best);
        let (jl, jh) = (c.from.j.min(c.to.j), c.from.j.max(c.to.j));
        // Sample up to 8 jog columns between the endpoints.
        let span = jh.saturating_sub(jl);
        let step = (span / 8).max(1);
        let mut j = jl;
        while j <= jh {
            let p = Pattern::ZAtColumn(j);
            let cost = self.pattern_cost(c, p);
            if cost < best_cost {
                best = p;
                best_cost = cost;
            }
            j += step;
        }
        best
    }

    fn apply(&mut self, c: Connection, p: Pattern, sign: f64) {
        let nx = self.nx;
        let h = &mut self.h_usage;
        let v = &mut self.v_usage;
        Self::for_each_tile(c, p, |j, k, horizontal| {
            let i = k * nx + j;
            if horizontal {
                h[i] += sign;
            } else {
                v[i] += sign;
            }
        });
    }

    fn crosses_overflow(&self, c: Connection, p: Pattern) -> bool {
        let mut hot = false;
        Self::for_each_tile(c, p, |j, k, horizontal| {
            let i = self.at(j, k);
            hot |= if horizontal {
                self.h_usage[i] > self.h_cap
            } else {
                self.v_usage[i] > self.v_cap
            };
        });
        hot
    }

    fn into_result(self, routed: usize, grid: &BinGrid) -> RoutingResult {
        let mut overflow = 0.0;
        let mut hot_tiles = 0;
        let mut max_congestion = 0.0f64;
        let mut wirelength = 0.0;
        for k in 0..self.ny {
            for j in 0..self.nx {
                let i = self.at(j, k);
                let oh = (self.h_usage[i] - self.h_cap).max(0.0);
                let ov = (self.v_usage[i] - self.v_cap).max(0.0);
                overflow += oh + ov;
                if oh > 0.0 || ov > 0.0 {
                    hot_tiles += 1;
                }
                max_congestion = max_congestion
                    .max(self.h_usage[i] / self.h_cap.max(1e-9))
                    .max(self.v_usage[i] / self.v_cap.max(1e-9));
                wirelength +=
                    self.h_usage[i] * grid.bin_width() + self.v_usage[i] * grid.bin_height();
            }
        }
        RoutingResult {
            routed_connections: routed,
            wirelength,
            overflow,
            hot_tiles,
            max_congestion,
            h_usage: self.h_usage,
            v_usage: self.v_usage,
            grid: grid.clone(),
        }
    }
}

/// Routes and returns only the headline congestion numbers — convenience
/// wrapper used by the benchmark harness.
pub fn route_congestion(netlist: &Netlist, placement: &Placement, die: &Die) -> (f64, f64) {
    let r = GlobalRouter::new(RouterConfig::default()).route(netlist, placement, die);
    (r.overflow, r.max_congestion)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_gen::CircuitSpec;
    use dpm_geom::Point as GPoint;
    use dpm_netlist::{CellKind, NetlistBuilder, PinDir};

    fn two_pin(from: GPoint, to: GPoint) -> (Netlist, Placement, Die) {
        let mut b = NetlistBuilder::new();
        let u = b.add_cell("u", 2.0, 2.0, CellKind::Movable);
        let v = b.add_cell("v", 2.0, 2.0, CellKind::Movable);
        let n = b.add_net("n");
        b.connect(u, n, PinDir::Output, 1.0, 1.0);
        b.connect(v, n, PinDir::Input, 1.0, 1.0);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(2);
        p.set(u, from);
        p.set(v, to);
        (nl, p, Die::new(360.0, 360.0, 12.0))
    }

    #[test]
    fn single_connection_uses_bbox_length() {
        let (nl, p, die) = two_pin(GPoint::new(10.0, 10.0), GPoint::new(190.0, 130.0));
        let r = GlobalRouter::new(RouterConfig::default()).route(&nl, &p, &die);
        assert_eq!(r.routed_connections, 1);
        // An L route touches (Δj+1) horizontal + (Δk+1) vertical tiles;
        // wirelength is within a tile of the HPWL.
        let tile = 3.0 * 12.0;
        let expect = (190.0f64 - 10.0) + (130.0 - 10.0);
        assert!(
            (r.wirelength - expect).abs() < 3.0 * tile,
            "wl {}",
            r.wirelength
        );
        assert_eq!(r.overflow, 0.0);
    }

    #[test]
    fn same_tile_connection_is_free() {
        let (nl, p, die) = two_pin(GPoint::new(10.0, 10.0), GPoint::new(12.0, 12.0));
        let r = GlobalRouter::new(RouterConfig::default()).route(&nl, &p, &die);
        assert_eq!(r.routed_connections, 1);
        assert_eq!(r.overflow, 0.0);
    }

    #[test]
    fn congestion_spreads_via_reroute() {
        // Many parallel connections through one corridor: with capacity 2
        // the router must fan out into Z routes; rerouting must not
        // increase overflow.
        let mut b = NetlistBuilder::new();
        let mut p_entries = Vec::new();
        for i in 0..24 {
            let u = b.add_cell(format!("u{i}"), 2.0, 2.0, CellKind::Movable);
            let v = b.add_cell(format!("v{i}"), 2.0, 2.0, CellKind::Movable);
            let n = b.add_net(format!("n{i}"));
            b.connect(u, n, PinDir::Output, 1.0, 1.0);
            b.connect(v, n, PinDir::Input, 1.0, 1.0);
            p_entries.push((u, v));
        }
        let nl = b.build().expect("valid");
        let die = Die::new(360.0, 360.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, &(u, v)) in p_entries.iter().enumerate() {
            // All start in one tile row, end far right in the same row.
            let y = 100.0 + (i % 3) as f64;
            p.set(u, GPoint::new(10.0, y));
            p.set(v, GPoint::new(300.0, y));
        }
        let tight = RouterConfig {
            h_capacity: 2.0,
            v_capacity: 2.0,
            reroute_passes: 0,
            ..RouterConfig::default()
        };
        let no_reroute = GlobalRouter::new(tight.clone()).route(&nl, &p, &die);
        let with_reroute = GlobalRouter::new(RouterConfig {
            reroute_passes: 4,
            ..tight
        })
        .route(&nl, &p, &die);
        assert!(no_reroute.overflow > 0.0, "corridor should overflow");
        assert!(
            with_reroute.overflow <= no_reroute.overflow,
            "reroute made things worse: {} -> {}",
            no_reroute.overflow,
            with_reroute.overflow
        );
    }

    #[test]
    fn routes_generated_circuit_without_overflow_at_default_capacity() {
        let bench = CircuitSpec::small(5).generate();
        let r = GlobalRouter::new(RouterConfig::default()).route(
            &bench.netlist,
            &bench.placement,
            &bench.die,
        );
        assert!(r.routed_connections > 1000);
        assert!(r.max_congestion > 0.0);
        // Usage buffers cover the grid.
        assert_eq!(r.h_usage.len(), r.grid.len());
    }

    #[test]
    fn spreading_cells_reduces_routed_congestion() {
        // The property placement migration relies on: moving cells apart
        // in a hot region must reduce real routed congestion.
        let mut bench = CircuitSpec::small(6).generate();
        bench.inflate(&dpm_gen::InflationSpec::center_width(0.1, 1.6));
        let before = GlobalRouter::new(RouterConfig::default()).route(
            &bench.netlist,
            &bench.placement,
            &bench.die,
        );
        let mut placement = bench.placement.clone();
        use dpm_diffusion_shim::*;
        legalize(&bench, &mut placement);
        let after = GlobalRouter::new(RouterConfig::default()).route(
            &bench.netlist,
            &placement,
            &bench.die,
        );
        // Congestion may shift, but peak must not explode.
        assert!(after.max_congestion <= before.max_congestion * 1.5 + 1.0);
    }

    /// Tiny indirection so this crate's tests can use a legalizer without
    /// a dependency cycle: a trivial row-snap is enough here.
    mod dpm_diffusion_shim {
        use dpm_gen::Benchmark;
        use dpm_geom::Point;
        use dpm_place::Placement;

        pub fn legalize(bench: &Benchmark, placement: &mut Placement) {
            for c in bench.netlist.movable_cell_ids() {
                let p = placement.get(c);
                placement.set(c, Point::new(p.x, bench.die.snap_y(p.y)));
            }
        }
    }
}
