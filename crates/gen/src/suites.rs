//! Benchmark suite presets mirroring the paper's test cases.
//!
//! The paper's Table I lists seven industrial circuits (64K–1076K cells,
//! 18.9–47.2% inflation); Table X lists the eighteen ISPD-2004 IBM
//! circuits (12.5K–210K objects, ~5–7% overlap from inflating 10% of
//! cells by 60% width). The suites here reproduce the *shape* of those
//! workloads at a configurable scale so the whole evaluation runs on one
//! machine in minutes.

use crate::{Benchmark, CircuitSpec, InflationSpec};

/// One suite entry: a circuit spec plus its paper-mandated inflation.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Circuit generator.
    pub spec: CircuitSpec,
    /// Inflation percentage from the paper (fraction, e.g. 0.231).
    pub inflation_pct: f64,
    /// Cell count of the paper's original circuit.
    pub paper_cells: usize,
}

impl SuiteEntry {
    /// Generates the circuit and applies the distributed inflation,
    /// returning the benchmark and the achieved inflation fraction.
    pub fn generate_inflated(&self) -> (Benchmark, f64) {
        let mut bench = self.spec.generate();
        let achieved = bench.inflate(&InflationSpec::distributed(
            self.inflation_pct,
            self.spec.seed ^ 0x5eed,
        ));
        (bench, achieved)
    }
}

/// Paper Table I: (name, cells, inflation %).
const CKT_TABLE: [(&str, usize, f64); 7] = [
    ("ckt1", 64_000, 0.231),
    ("ckt2", 72_000, 0.324),
    ("ckt3", 159_000, 0.472),
    ("ckt4", 216_000, 0.404),
    ("ckt5", 307_000, 0.254),
    ("ckt6", 440_000, 0.422),
    ("ckt7", 1_076_000, 0.189),
];

/// Paper Table X: (name, objects).
const IBM_TABLE: [(&str, usize); 18] = [
    ("ibm01", 12_506),
    ("ibm02", 19_342),
    ("ibm03", 22_853),
    ("ibm04", 27_220),
    ("ibm05", 28_146),
    ("ibm06", 32_332),
    ("ibm07", 45_639),
    ("ibm08", 51_023),
    ("ibm09", 53_110),
    ("ibm10", 68_685),
    ("ibm11", 70_152),
    ("ibm12", 70_439),
    ("ibm13", 83_709),
    ("ibm14", 147_088),
    ("ibm15", 161_187),
    ("ibm16", 182_980),
    ("ibm17", 184_752),
    ("ibm18", 210_341),
];

/// The `ckt1..ckt7` industrial suite at `scale` times the paper's cell
/// counts (use `scale = 1.0` for full size, `1.0 / 16.0` for a fast run).
///
/// # Panics
///
/// Panics if `scale` is not positive.
///
/// # Examples
///
/// ```
/// let suite = dpm_gen::suites::ckt_suite(1.0 / 64.0);
/// assert_eq!(suite.len(), 7);
/// assert_eq!(suite[0].spec.name, "ckt1");
/// assert_eq!(suite[0].spec.num_cells, 1000);
/// assert!((suite[1].inflation_pct - 0.324).abs() < 1e-12);
/// ```
pub fn ckt_suite(scale: f64) -> Vec<SuiteEntry> {
    assert!(scale > 0.0, "scale must be positive");
    CKT_TABLE
        .iter()
        .enumerate()
        .map(|(i, &(name, cells, inflation))| SuiteEntry {
            // The paper's industrial circuits absorb up to 47% inflation,
            // so their initial utilization must be well under 1/(1+0.472);
            // 0.55 keeps every suite entry feasible.
            // Locally dense (97%) like post-placement industrial designs:
            // inflation then creates real overlap everywhere, the regime
            // the paper's +10-15% GREED/FLOW wirelength degradations imply.
            spec: CircuitSpec::with_size(
                name,
                ((cells as f64 * scale) as usize).max(200),
                1000 + i as u64,
            )
            .with_utilization(0.55)
            .with_local_utilization(0.97)
            .with_clusters_per_gap(6),
            inflation_pct: inflation,
            paper_cells: cells,
        })
        .collect()
}

/// The `ibm01..ibm18` ISPD-2004 suite at `scale` times the paper's
/// object counts. Inflation (`RANDOM`/`CENTER`, 10% of cells, 60% width)
/// is applied by the caller per Table X's protocol.
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn ibm_suite(scale: f64) -> Vec<SuiteEntry> {
    assert!(scale > 0.0, "scale must be positive");
    IBM_TABLE
        .iter()
        .enumerate()
        .map(|(i, &(name, cells))| SuiteEntry {
            spec: CircuitSpec::with_size(
                name,
                ((cells as f64 * scale) as usize).max(200),
                2000 + i as u64,
            )
            .with_local_utilization(0.97)
            .with_clusters_per_gap(6),
            inflation_pct: 0.10,
            paper_cells: cells,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckt_suite_matches_table1() {
        let s = ckt_suite(1.0);
        assert_eq!(s.len(), 7);
        assert_eq!(s[6].spec.name, "ckt7");
        assert_eq!(s[6].spec.num_cells, 1_076_000);
        assert!((s[6].inflation_pct - 0.189).abs() < 1e-12);
    }

    #[test]
    fn ibm_suite_matches_table10() {
        let s = ibm_suite(1.0);
        assert_eq!(s.len(), 18);
        assert_eq!(s[0].spec.num_cells, 12_506);
        assert_eq!(s[17].spec.num_cells, 210_341);
    }

    #[test]
    fn scaling_shrinks_but_floors() {
        let s = ckt_suite(1.0 / 1000.0);
        assert_eq!(s[0].spec.num_cells, 200); // floored
        assert_eq!(s[6].spec.num_cells, 1076);
    }

    #[test]
    fn suite_seeds_differ() {
        let s = ckt_suite(0.01);
        assert_ne!(s[0].spec.seed, s[1].spec.seed);
    }

    #[test]
    fn generate_inflated_roughly_hits_target() {
        let entry = &ckt_suite(1.0 / 64.0)[0]; // ckt1 at 1000 cells
        let (bench, achieved) = entry.generate_inflated();
        assert!(achieved >= entry.inflation_pct * 0.9, "achieved {achieved}");
        assert!(bench.netlist.num_cells() >= 1000);
    }
}
