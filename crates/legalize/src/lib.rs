#![warn(missing_docs)]

//! Legalization algorithms for standard-cell placement.
//!
//! This crate hosts every legalizer the paper's evaluation compares:
//!
//! | paper name | type | module |
//! |---|---|---|
//! | `DIFF(G)` / `DIFF(L)` | [`DiffusionLegalizer`] — global / robust local diffusion, then detailed legalization | [`diffusion_legalizer`] |
//! | `GREED` | [`GreedyLegalizer`] — nearest-gap spiral search | [`greedy`] |
//! | `FLOW` | [`FlowLegalizer`] — min-cost-flow bin spreading | [`flow`] |
//! | `Capo`-like | [`TetrisLegalizer`] — sort-by-x packing | [`tetris`] |
//! | `FengShui`-like | [`RowDpLegalizer`] — per-row keep/push dynamic programming | [`row_dp`] |
//! | `GEM`-like | [`GemLegalizer`] — density-gradient grid stretching | [`gem`] |
//!
//! plus the [`DetailedLegalizer`] (slide-and-spiral row legalization with
//! Abacus-style order-preserving clumping) that every spreading method
//! uses as its final step — the role IBM CPlace's internal legalizer
//! plays in the paper.
//!
//! All legalizers implement the [`Legalizer`] trait and can be compared
//! uniformly, which is exactly what the benchmark harness does.
//!
//! # Examples
//!
//! ```
//! use dpm_gen::{CircuitSpec, InflationSpec};
//! use dpm_legalize::{GreedyLegalizer, Legalizer};
//!
//! let mut bench = CircuitSpec::small(11).generate();
//! bench.inflate(&InflationSpec::random_width(0.1, 1.6, 3));
//! let outcome = GreedyLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
//! assert!(outcome.is_legal);
//! ```

mod detailed;
pub mod diffusion_legalizer;
pub mod flow;
pub mod gem;
pub mod greedy;
mod occupancy;
pub mod row_dp;
pub mod tetris;

pub use detailed::DetailedLegalizer;
pub use diffusion_legalizer::DiffusionLegalizer;
pub use flow::FlowLegalizer;
pub use gem::GemLegalizer;
pub use greedy::GreedyLegalizer;
pub use row_dp::RowDpLegalizer;
pub use tetris::TetrisLegalizer;

use dpm_netlist::Netlist;
use dpm_place::{check_legality, Die, Placement};
use std::fmt;
use std::time::Duration;

/// Result of running a legalizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegalizeOutcome {
    /// `true` if the resulting placement passed the legality check.
    pub is_legal: bool,
    /// Number of residual violations (0 when legal).
    pub violations: usize,
    /// Wall-clock runtime of the legalization.
    pub runtime: Duration,
}

impl fmt::Display for LegalizeOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_legal {
            write!(f, "legal in {:.3}s", self.runtime.as_secs_f64())
        } else {
            write!(
                f,
                "{} residual violations after {:.3}s",
                self.violations,
                self.runtime.as_secs_f64()
            )
        }
    }
}

/// A placement legalization algorithm.
///
/// Implementations mutate the placement in place and report whether the
/// result is legal. Use [`run_legalizer`] to get timing and validation
/// handled uniformly.
pub trait Legalizer {
    /// Short name used in benchmark tables (e.g. `"DIFF(L)"`).
    fn name(&self) -> &str;

    /// Legalizes `placement` for `netlist` on `die`, mutating it in
    /// place. Implementations should *not* verify legality themselves;
    /// [`run_legalizer`] does that.
    fn legalize_in_place(&self, netlist: &Netlist, die: &Die, placement: &mut Placement);

    /// Runs the legalizer and verifies the result.
    ///
    /// This is the entry point callers should use; it times the run and
    /// checks legality afterwards.
    fn legalize(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) -> LegalizeOutcome
    where
        Self: Sized,
    {
        run_legalizer(self, netlist, die, placement)
    }
}

/// Runs `legalizer`, measuring runtime and validating the result.
pub fn run_legalizer<L: Legalizer + ?Sized>(
    legalizer: &L,
    netlist: &Netlist,
    die: &Die,
    placement: &mut Placement,
) -> LegalizeOutcome {
    let start = std::time::Instant::now();
    legalizer.legalize_in_place(netlist, die, placement);
    let runtime = start.elapsed();
    let report = check_legality(netlist, die, placement, 0);
    LegalizeOutcome {
        is_legal: report.is_legal(),
        violations: report.violation_count,
        runtime,
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use dpm_gen::{Benchmark, CircuitSpec, InflationSpec};

    /// A small inflated benchmark all legalizer tests share.
    pub fn inflated_small(seed: u64) -> Benchmark {
        let mut bench = CircuitSpec::small(seed).generate();
        bench.inflate(&InflationSpec::random_width(0.1, 1.6, seed ^ 0xbeef));
        bench
    }

    /// A benchmark with a concentrated hotspot in the middle.
    pub fn hotspot_small(seed: u64) -> Benchmark {
        let mut bench = CircuitSpec::small(seed).generate();
        bench.inflate(&InflationSpec::centered(0.15, 0.3, seed ^ 0xcafe));
        bench
    }

    /// A benchmark containing fixed macros.
    pub fn with_macros(seed: u64) -> Benchmark {
        let mut bench = CircuitSpec::small(seed).with_macros(2).generate();
        bench.inflate(&InflationSpec::random_width(0.08, 1.5, seed ^ 0xfeed));
        bench
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Legalizer for Nop {
        fn name(&self) -> &str {
            "NOP"
        }
        fn legalize_in_place(&self, _: &Netlist, _: &Die, _: &mut Placement) {}
    }

    #[test]
    fn run_legalizer_reports_residual_violations() {
        let bench = test_util::inflated_small(5);
        let mut placement = bench.placement.clone();
        let outcome = Nop.legalize(&bench.netlist, &bench.die, &mut placement);
        assert!(!outcome.is_legal);
        assert!(outcome.violations > 0);
        assert!(outcome.to_string().contains("residual"));
    }

    #[test]
    fn outcome_display_when_legal() {
        let o = LegalizeOutcome {
            is_legal: true,
            violations: 0,
            runtime: Duration::from_millis(12),
        };
        assert!(o.to_string().starts_with("legal"));
    }
}
