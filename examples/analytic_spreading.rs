//! Analytic-placement spreading — the paper's fourth motivating
//! application: "a global analytic or force-directed placer may use
//! placement migration to spread out the cells while attempting to
//! preserve the ordering induced by the overlapping analytic solution."
//!
//! Pipeline: quadratic placement (overlapping optimum) → global
//! diffusion (smooth spreading) → detailed legalization. We measure how
//! much of the analytic solution's pairwise ordering survives, compared
//! against legalizing the analytic solution with Tetris packing.
//!
//! Run with: `cargo run --release --example analytic_spreading`

use diffuplace::diffusion::{DiffusionConfig, GlobalDiffusion};
use diffuplace::gen::CircuitSpec;
use diffuplace::legalize::{run_legalizer, DetailedLegalizer, TetrisLegalizer};
use diffuplace::netlist::CellId;
use diffuplace::place::{check_legality, hpwl, BinGrid, DensityMap, Placement};
use diffuplace::qplace::quadratic_place;

fn main() {
    let bench = CircuitSpec::with_size("analytic", 2_500, 77).generate();

    // 1. The analytic optimum: minimal quadratic wirelength, cells piled
    //    on top of each other.
    let analytic = quadratic_place(&bench.netlist, &bench.die, &bench.placement);
    let grid = BinGrid::new(bench.die.outline(), 2.5 * bench.die.row_height());
    let density = DensityMap::from_placement(&bench.netlist, &analytic, grid);
    println!(
        "analytic solution: TWL {:.0} (legal placement was {:.0}), max density {:.1}x",
        hpwl(&bench.netlist, &analytic),
        hpwl(&bench.netlist, &bench.placement),
        density.max_density()
    );

    // Pairs to track ordering on: cells clearly ordered in the analytic
    // solution.
    let cells: Vec<CellId> = bench.netlist.movable_cell_ids().collect();
    let pairs: Vec<(CellId, CellId)> = cells
        .windows(5)
        .map(|w| (w[0], w[4]))
        .filter(|&(a, b)| {
            (analytic.cell_center(&bench.netlist, a).x - analytic.cell_center(&bench.netlist, b).x)
                .abs()
                > 6.0
        })
        .take(500)
        .collect();
    let order_violations = |p: &Placement| {
        pairs
            .iter()
            .filter(|&&(a, b)| {
                (analytic.cell_center(&bench.netlist, a).x
                    < analytic.cell_center(&bench.netlist, b).x)
                    != (p.cell_center(&bench.netlist, a).x < p.cell_center(&bench.netlist, b).x)
            })
            .count()
    };

    // 2a. Diffusion spreading + detailed legalization.
    let mut p_diff = analytic.clone();
    let cfg = DiffusionConfig::default()
        .with_bin_size(2.5 * bench.die.row_height())
        .with_delta(0.05);
    let r = GlobalDiffusion::new(cfg).run(&bench.netlist, &bench.die, &mut p_diff);
    println!(
        "diffusion spread the analytic solution in {} steps",
        r.steps
    );
    run_legalizer(
        &DetailedLegalizer::new(),
        &bench.netlist,
        &bench.die,
        &mut p_diff,
    );

    // 2b. Baseline: Tetris-pack the analytic solution directly.
    let mut p_tetris = analytic.clone();
    run_legalizer(
        &TetrisLegalizer::new(),
        &bench.netlist,
        &bench.die,
        &mut p_tetris,
    );

    for (name, p) in [("diffusion", &p_diff), ("tetris", &p_tetris)] {
        let legal = check_legality(&bench.netlist, &bench.die, p, 0).is_legal();
        println!(
            "{name:>10}: legal {legal} | TWL {:.0} | ordering violations {}/{}",
            hpwl(&bench.netlist, p),
            order_violations(p),
            pairs.len()
        );
    }
    println!("\nDiffusion should preserve far more of the analytic ordering.");
}
