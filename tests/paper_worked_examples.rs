//! Every numeric worked example in the paper, pinned through the public
//! facade. These are the ground truth anchoring the implementation to
//! the text: if one of these breaks, the reproduction has drifted.

use diffuplace::diffusion::{interpolate_velocity, manipulate_density, DiffusionEngine};
use diffuplace::geom::Vector;

fn at(nx: usize, j: usize, k: usize) -> usize {
    k * nx + j
}

/// Section IV-A: the density update of Fig. 1 with Δt = 0.2 gives
/// d₁,₁(n+1) = 0.98.
#[test]
fn fig1_density_update() {
    let mut d = vec![1.0; 16];
    d[at(4, 1, 1)] = 1.0;
    d[at(4, 0, 1)] = 1.4;
    d[at(4, 2, 1)] = 0.4;
    d[at(4, 1, 0)] = 1.6;
    d[at(4, 1, 2)] = 0.4;
    let mut e = DiffusionEngine::from_raw(4, 4, d, None);
    e.step_density(0.2);
    assert!((e.density(1, 1) - 0.98).abs() < 1e-12);
}

/// Section IV-B: the velocities of Fig. 1 — v₁,₁ = (0.5, 0.6).
#[test]
fn fig1_velocity() {
    let mut d = vec![1.0; 16];
    d[at(4, 1, 1)] = 1.0;
    d[at(4, 0, 1)] = 1.4;
    d[at(4, 2, 1)] = 0.4;
    d[at(4, 1, 0)] = 1.6;
    d[at(4, 1, 2)] = 0.4;
    let mut e = DiffusionEngine::from_raw(4, 4, d, None);
    e.compute_velocities();
    let v = e.bin_velocity(1, 1);
    assert!((v.x - 0.5).abs() < 1e-12);
    assert!((v.y - 0.6).abs() < 1e-12);
}

/// Section IV-C: the interpolation example of Fig. 2. The paper's prose
/// prints (0.45625, 0.40175), which does not satisfy its own Eq. 6;
/// evaluating the equation gives (0.46375, 0.36425) — the values pinned
/// here.
#[test]
fn fig2_interpolation() {
    let v = interpolate_velocity(
        Vector::new(0.5, 0.6),
        Vector::new(0.25, -0.25),
        Vector::new(0.5, 0.0),
        Vector::new(-0.125, 0.125),
        0.1,
        0.3,
    );
    assert!((v.x - 0.46375).abs() < 1e-12);
    assert!((v.y - 0.36425).abs() < 1e-12);
}

/// Section V-A: the density manipulation of Fig. 4 — A_o = 0.3,
/// A_s = 0.6, under-full bins rise to 0.8 / 0.9, the average becomes
/// exactly 1.0.
#[test]
fn fig4_density_manipulation() {
    let mut d = vec![1.0, 1.3, 0.6, 0.8];
    let (ao, a_s) = manipulate_density(&mut d, None, 1.0);
    assert!((ao - 0.3).abs() < 1e-12);
    assert!((a_s - 0.6).abs() < 1e-12);
    assert!((d[2] - 0.8).abs() < 1e-12);
    assert!((d[3] - 0.9).abs() < 1e-12);
    let avg = d.iter().sum::<f64>() / 4.0;
    assert!((avg - 1.0).abs() < 1e-12);
}

/// Section V-B: the macro boundary updates of Fig. 5 — with Δt = 0.2 and
/// the paper's mirror rule, d₃,₄(n+1) = 0.96 and d₄,₅(n+1) = 0.62.
#[test]
fn fig5_macro_boundary() {
    let nx = 7;
    let mut d = vec![1.0; nx * nx];
    let mut w = vec![false; nx * nx];
    for k in 3..=4 {
        for j in 4..=5 {
            w[at(nx, j, k)] = true;
        }
    }
    d[at(nx, 3, 6)] = 1.0;
    d[at(nx, 4, 6)] = 0.2;
    d[at(nx, 2, 5)] = 1.2;
    d[at(nx, 3, 5)] = 0.4;
    d[at(nx, 4, 5)] = 0.8;
    d[at(nx, 5, 5)] = 0.6;
    d[at(nx, 2, 4)] = 1.4;
    d[at(nx, 3, 4)] = 0.8;
    d[at(nx, 3, 3)] = 1.6;
    let mut e = DiffusionEngine::from_raw(nx, nx, d, Some(w));
    e.set_conservative_boundaries(false); // the paper's literal rule
    e.step_density(0.2);
    assert!(
        (e.density(3, 4) - 0.96).abs() < 1e-12,
        "d(3,4) = {}",
        e.density(3, 4)
    );
    assert!(
        (e.density(4, 5) - 0.62).abs() < 1e-12,
        "d(4,5) = {}",
        e.density(4, 5)
    );
}

/// Section VII-D: the FTCS stability condition — `dt` beyond 0.5 is
/// rejected at configuration time.
#[test]
fn stability_condition_enforced() {
    use diffuplace::diffusion::DiffusionConfig;
    let ok = std::panic::catch_unwind(|| DiffusionConfig::default().with_dt(0.5));
    assert!(ok.is_ok());
    let bad = std::panic::catch_unwind(|| DiffusionConfig::default().with_dt(0.51));
    assert!(bad.is_err());
    let bad_d = std::panic::catch_unwind(|| {
        DiffusionConfig::default()
            .with_dt(0.4)
            .with_diffusivity(2.0)
    });
    assert!(bad_d.is_err());
}
