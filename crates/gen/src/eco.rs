//! ECO workloads that *add* cells: buffer insertion.
//!
//! The paper's first motivating example of placement migration: "during
//! physical synthesis, one may insert buffers and repower gates, thereby
//! creating overlapping cells. The new instance needs to be legalized,
//! but one wants to avoid moving any cell too far away from its original
//! location." Inflation (the [`InflationSpec`](crate::InflationSpec)
//! workloads) models repowering; this module models the buffer half: the
//! longest nets get a buffer inserted at their centroid, landing on top
//! of whatever is already placed there.

use crate::Benchmark;
use dpm_geom::Point;
use dpm_netlist::{CellId, CellKind, NetlistBuilder, PinDir};
use dpm_place::{hpwl, net_hpwl, Placement};
use dpm_rng::Rng;

/// One ECO iteration of a physical-synthesis loop, as a reproducible
/// recipe: repower (widen) some gates, nudge some cells, insert buffers
/// on the longest nets. Applied with [`Benchmark::apply_eco`]; the same
/// spec and seed always produce the bit-identical modified design, so
/// ECO streams replayed against a service are deterministic end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct EcoSpec {
    /// Distinct movable cells whose width is scaled by
    /// [`resize_factor`](Self::resize_factor) (gate repowering).
    pub resizes: usize,
    /// Distinct movable cells shifted by up to
    /// [`max_shift`](Self::max_shift) per axis (engineering moves).
    pub moves: usize,
    /// Fraction of the longest nets buffered via
    /// [`Benchmark::insert_buffers`] (`0.0` disables insertion).
    pub buffer_fraction: f64,
    /// Width of inserted buffers.
    pub buffer_width: f64,
    /// Largest per-axis displacement of a moved cell, placement units.
    pub max_shift: f64,
    /// Width multiplier for resized cells.
    pub resize_factor: f64,
}

impl Default for EcoSpec {
    fn default() -> Self {
        Self {
            resizes: 8,
            moves: 8,
            buffer_fraction: 0.02,
            buffer_width: 6.0,
            max_shift: 18.0,
            resize_factor: 1.5,
        }
    }
}

/// What [`Benchmark::apply_eco`] actually changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EcoSummary {
    /// Cells whose width was scaled.
    pub resized: usize,
    /// Cells that were shifted.
    pub moved: usize,
    /// Buffers inserted (appended after all pre-existing cells).
    pub buffers: usize,
}

impl Benchmark {
    /// Inserts buffers on the `fraction` longest nets (by HPWL), placing
    /// each buffer at its net's pin centroid. The netlist is rebuilt
    /// (cell/net ids of existing objects are preserved in order); the
    /// placement keeps every existing cell exactly where it was, so the
    /// result typically overlaps and needs legalization.
    ///
    /// `buffer_width` is the new cells' width (height = row height).
    /// Returns the number of buffers inserted.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or `buffer_width` is not
    /// positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_gen::CircuitSpec;
    /// use dpm_place::check_legality;
    ///
    /// let mut bench = CircuitSpec::small(17).generate();
    /// let cells_before = bench.netlist.num_cells();
    /// let inserted = bench.insert_buffers(0.05, 6.0);
    /// assert!(inserted > 0);
    /// assert_eq!(bench.netlist.num_cells(), cells_before + inserted);
    /// ```
    pub fn insert_buffers(&mut self, fraction: f64, buffer_width: f64) -> usize {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        assert!(buffer_width > 0.0, "buffer width must be positive");

        // Pick the longest nets with at least a driver and one sink.
        let mut candidates: Vec<(f64, dpm_netlist::NetId)> = self
            .netlist
            .net_ids()
            .filter(|&n| self.netlist.driver_of(n).is_some() && self.netlist.net(n).pins.len() >= 2)
            .map(|n| (net_hpwl(&self.netlist, &self.placement, n), n))
            .collect();
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
        let count = ((candidates.len() as f64) * fraction).round() as usize;
        let buffered: std::collections::HashSet<_> =
            candidates.iter().take(count).map(|&(_, n)| n).collect();
        if buffered.is_empty() {
            return 0;
        }

        // Rebuild the netlist: same cells (same order ⇒ same ids), then
        // one buffer per selected net; selected nets are split in two.
        let row_height = self.die.row_height();
        let mut b = NetlistBuilder::with_capacity(
            self.netlist.num_cells() + buffered.len(),
            self.netlist.num_nets() + buffered.len(),
            self.netlist.num_pins() + 2 * buffered.len(),
        );
        for id in self.netlist.cell_ids() {
            let c = self.netlist.cell(id);
            b.add_cell_with_delay(c.name.clone(), c.width, c.height, c.kind, c.delay);
        }
        let mut new_positions: Vec<(u32, Point)> = Vec::new();
        let mut next_cell = self.netlist.num_cells() as u32;

        for net in self.netlist.net_ids() {
            let name = self.netlist.net(net).name.clone();
            if !buffered.contains(&net) {
                let nid = b.add_net(name);
                for &p in &self.netlist.net(net).pins {
                    let pin = self.netlist.pin(p);
                    b.connect(pin.cell, nid, pin.dir, pin.offset.x, pin.offset.y);
                }
                continue;
            }
            // Split: driver keeps the original net; the buffer drives a
            // new net feeding all the sinks.
            let centroid = self
                .placement
                .net_centroid(&self.netlist, net)
                .expect("buffered nets have pins");
            let buf = b.add_cell_with_delay(
                format!("buf_{name}"),
                buffer_width,
                row_height,
                CellKind::Movable,
                0.5,
            );
            debug_assert_eq!(buf.raw(), next_cell);
            new_positions.push((
                next_cell,
                Point::new(
                    centroid.x - buffer_width / 2.0,
                    centroid.y - row_height / 2.0,
                ),
            ));
            next_cell += 1;

            let upstream = b.add_net(name.clone());
            let downstream = b.add_net(format!("{name}_buf"));
            let driver = self.netlist.driver_of(net).expect("checked above");
            for &p in &self.netlist.net(net).pins {
                let pin = self.netlist.pin(p);
                if p == driver {
                    b.connect(
                        pin.cell,
                        upstream,
                        PinDir::Output,
                        pin.offset.x,
                        pin.offset.y,
                    );
                } else {
                    b.connect(pin.cell, downstream, pin.dir, pin.offset.x, pin.offset.y);
                }
            }
            b.connect(buf, upstream, PinDir::Input, 0.0, row_height / 2.0);
            b.connect(
                buf,
                downstream,
                PinDir::Output,
                buffer_width,
                row_height / 2.0,
            );
        }

        let new_netlist = b.build().expect("rebuilt netlist is structurally valid");
        let mut new_placement = Placement::new(new_netlist.num_cells());
        for id in self.netlist.cell_ids() {
            new_placement.set(id, self.placement.get(id));
        }
        for &(raw, pos) in &new_positions {
            new_placement.set(dpm_netlist::CellId::new(raw), pos);
        }
        self.netlist = new_netlist;
        self.placement = new_placement;
        buffered.len()
    }

    /// Applies one full ECO iteration in place — repowering, engineering
    /// moves, then buffer insertion — exactly as a physical-synthesis
    /// loop would between two migration calls. Deterministic: the same
    /// `(spec, seed)` on the same baseline always yields the bit-exact
    /// modified design.
    ///
    /// The edit set is deliberately shaped so the result *extends* the
    /// baseline: pre-existing cells keep their ids, names, and kinds,
    /// and every new cell is appended after them. That is the contract
    /// `dpm_serve::EcoDelta::diff` needs to express the change as a
    /// compact delta instead of a full resend.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_gen::{CircuitSpec, EcoSpec};
    ///
    /// let mut bench = CircuitSpec::small(17).generate();
    /// let summary = bench.apply_eco(&EcoSpec::default(), 7);
    /// assert!(summary.moved > 0 && summary.resized > 0);
    /// ```
    pub fn apply_eco(&mut self, spec: &EcoSpec, seed: u64) -> EcoSummary {
        let mut rng = Rng::seed_from_u64(seed ^ 0x65636f5f65636f5f); // "eco_eco_"
        let mut movable: Vec<CellId> = self
            .netlist
            .cell_ids()
            .filter(|&id| self.netlist.cell(id).kind == CellKind::Movable)
            .collect();
        rng.shuffle(&mut movable);

        // Repower: widen a prefix of the shuffled movable cells. Pin
        // offsets scale with the cell, but only geometry matters to the
        // migration engines.
        let resized = spec.resizes.min(movable.len());
        for &id in &movable[..resized] {
            self.netlist.inflate_cell_width(id, spec.resize_factor);
        }

        // Engineering moves: nudge the *next* cells in the shuffle so
        // the move set is disjoint from the resize set when possible.
        let moved = spec.moves.min(movable.len().saturating_sub(resized));
        let outline = self.die.outline();
        for &id in &movable[resized..resized + moved] {
            let c = self.netlist.cell(id);
            let p = self.placement.get(id);
            let dx = (rng.random_f64() * 2.0 - 1.0) * spec.max_shift;
            let dy = (rng.random_f64() * 2.0 - 1.0) * spec.max_shift;
            let x = (p.x + dx).clamp(outline.llx, (outline.urx - c.width).max(outline.llx));
            let y = (p.y + dy).clamp(outline.lly, (outline.ury - c.height).max(outline.lly));
            self.placement.set(id, Point::new(x, y));
        }

        let buffers = if spec.buffer_fraction > 0.0 {
            self.insert_buffers(spec.buffer_fraction, spec.buffer_width)
        } else {
            0
        };
        EcoSummary {
            resized,
            moved,
            buffers,
        }
    }

    /// Total HPWL of the current placement — convenience used by the ECO
    /// examples and tests.
    pub fn wirelength(&self) -> f64 {
        hpwl(&self.netlist, &self.placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitSpec;
    use dpm_place::check_legality;

    #[test]
    fn inserts_expected_count() {
        let mut bench = CircuitSpec::small(51).generate();
        let nets_before = bench.netlist.num_nets();
        let inserted = bench.insert_buffers(0.05, 6.0);
        assert!(inserted > 10, "inserted only {inserted}");
        // Each buffered net becomes two nets.
        assert_eq!(bench.netlist.num_nets(), nets_before + inserted);
    }

    #[test]
    fn existing_cells_do_not_move() {
        let mut bench = CircuitSpec::small(52).generate();
        let before = bench.placement.clone();
        let n_before = before.len();
        bench.insert_buffers(0.05, 6.0);
        for i in 0..n_before {
            let id = dpm_netlist::CellId::new(i as u32);
            assert_eq!(bench.placement.get(id), before.get(id));
        }
    }

    #[test]
    fn buffers_land_on_net_centroids_and_overlap() {
        let mut bench = CircuitSpec::small(53).generate();
        assert!(check_legality(&bench.netlist, &bench.die, &bench.placement, 0).is_legal());
        bench.insert_buffers(0.08, 6.0);
        let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 0);
        assert!(!report.is_legal(), "buffer insertion should create overlap");
    }

    #[test]
    fn netlist_stays_a_dag_and_timing_works() {
        let mut bench = CircuitSpec::small(54).generate();
        bench.insert_buffers(0.05, 6.0);
        let lv = dpm_netlist::levelize(&bench.netlist);
        assert!(lv.is_acyclic(), "{} cells stuck on cycles", lv.cyclic.len());
    }

    #[test]
    fn buffering_then_legalizing_is_consistent() {
        let mut bench = CircuitSpec::small(55).generate();
        bench.insert_buffers(0.05, 6.0);
        // HPWL accessor agrees with the free function.
        assert_eq!(bench.wirelength(), hpwl(&bench.netlist, &bench.placement));
    }

    #[test]
    fn apply_eco_is_deterministic_per_seed() {
        let mut a = CircuitSpec::small(61).generate();
        let mut b = CircuitSpec::small(61).generate();
        let spec = EcoSpec::default();
        let sa = a.apply_eco(&spec, 9);
        let sb = b.apply_eco(&spec, 9);
        assert_eq!(sa, sb);
        assert_eq!(a.netlist.num_cells(), b.netlist.num_cells());
        for id in a.netlist.cell_ids() {
            let (ca, cb) = (a.netlist.cell(id), b.netlist.cell(id));
            assert_eq!(ca.name, cb.name);
            assert_eq!(ca.width.to_bits(), cb.width.to_bits());
            assert_eq!(a.placement.get(id), b.placement.get(id));
        }
        // A different seed picks a different edit set.
        let mut c = CircuitSpec::small(61).generate();
        c.apply_eco(&spec, 10);
        let differs = a.netlist.cell_ids().take(c.netlist.num_cells()).any(|id| {
            a.placement.get(id) != c.placement.get(id)
                || a.netlist.cell(id).width.to_bits() != c.netlist.cell(id).width.to_bits()
        });
        assert!(differs, "seeds 9 and 10 produced the same ECO");
    }

    #[test]
    fn apply_eco_extends_the_baseline() {
        let base = CircuitSpec::small(62).generate();
        let mut eco = CircuitSpec::small(62).generate();
        let summary = eco.apply_eco(&EcoSpec::default(), 3);
        assert!(summary.resized > 0 && summary.moved > 0 && summary.buffers > 0);
        assert_eq!(
            eco.netlist.num_cells(),
            base.netlist.num_cells() + summary.buffers
        );
        // Pre-existing cells keep id, name, and kind — the contract the
        // serve-side delta differ relies on.
        for id in base.netlist.cell_ids() {
            assert_eq!(eco.netlist.cell(id).name, base.netlist.cell(id).name);
            assert_eq!(eco.netlist.cell(id).kind, base.netlist.cell(id).kind);
        }
        // Moved cells stay inside the die outline (buffers may overlap
        // the edge — they land on net centroids and await legalization).
        let outline = eco.die.outline();
        for id in base.netlist.cell_ids() {
            let c = eco.netlist.cell(id);
            // Resized cells keep their position but grew in place, so
            // only the un-resized movables are guaranteed in bounds.
            if c.kind != CellKind::Movable
                || c.width.to_bits() != base.netlist.cell(id).width.to_bits()
            {
                continue;
            }
            let p = eco.placement.get(id);
            assert!(p.x >= outline.llx && p.x + c.width <= outline.urx + 1e-9);
            assert!(p.y >= outline.lly && p.y + c.height <= outline.ury + 1e-9);
        }
    }

    #[test]
    fn zero_fraction_is_a_no_op() {
        let mut bench = CircuitSpec::small(56).generate();
        let cells = bench.netlist.num_cells();
        assert_eq!(bench.insert_buffers(0.0, 6.0), 0);
        assert_eq!(bench.netlist.num_cells(), cells);
    }
}
