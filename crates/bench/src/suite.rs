//! Shared suite runners for the table/figure binaries.

use crate::{fnum, print_table, Experiment, RunResult, TextTable};
use dpm_diffusion::{DiffusionConfig, GlobalDiffusion, LocalDiffusion};
use dpm_gen::suites::{ckt_suite, ibm_suite, SuiteEntry};
use dpm_gen::{Benchmark, InflationSpec};
use dpm_legalize::{
    DiffusionLegalizer, FlowLegalizer, GemLegalizer, GreedyLegalizer, Legalizer, RowDpLegalizer,
    TetrisLegalizer,
};
use dpm_place::{BinGrid, DensityMap, MovementStats};

/// Everything measured for one `ckt` circuit across the four legalizers
/// of the paper's Tables II–V.
pub struct CktRow {
    /// Circuit name.
    pub name: String,
    /// Pre-inflation quality (the paper's "Base" column).
    pub base: crate::Metrics,
    /// Achieved inflation fraction.
    pub inflation: f64,
    /// Results in order: GREED, FLOW, DIFF(G), DIFF(L).
    pub results: Vec<RunResult>,
}

/// The diffusion-only measurements of Tables VII/VIII (no final
/// legalization, matching the paper's "during diffusion" metrics).
pub struct DiffusionRow {
    /// Circuit name.
    pub name: String,
    /// (max, total) windowed density overflow after global diffusion.
    pub global_overflow: (f64, f64),
    /// (max, total) after local diffusion.
    pub local_overflow: (f64, f64),
    /// (max, total) cell movement of global diffusion.
    pub global_movement: (f64, f64),
    /// (max, total) cell movement of local diffusion.
    pub local_movement: (f64, f64),
}

/// The standard diffusion configuration for a benchmark die.
pub fn diffusion_cfg(bench: &Benchmark) -> DiffusionConfig {
    DiffusionConfig::default()
        .with_bin_size(2.5 * bench.die.row_height())
        .with_windows(1, 2)
        .with_update_period(10)
}

/// Generates a suite entry and wraps it into an [`Experiment`].
pub fn experiment_for(entry: &SuiteEntry) -> Experiment {
    let base = entry.spec.generate();
    let (bench, _) = entry.generate_inflated();
    Experiment::new(bench, &base)
}

/// Runs the four-legalizer comparison (Tables II–V) over the ckt suite.
pub fn run_ckt_comparison(scale: f64) -> Vec<CktRow> {
    let mut rows = Vec::new();
    for entry in ckt_suite(scale) {
        let base = entry.spec.generate();
        let (bench, achieved) = entry.generate_inflated();
        let exp = Experiment::new(bench, &base);
        let legalizers: Vec<Box<dyn Legalizer>> = vec![
            Box::new(GreedyLegalizer::new()),
            Box::new(FlowLegalizer::new()),
            Box::new(DiffusionLegalizer::global_default()),
            Box::new(DiffusionLegalizer::local_default()),
        ];
        let results = legalizers.iter().map(|l| exp.run(l.as_ref())).collect();
        rows.push(CktRow {
            name: entry.spec.name.clone(),
            base: exp.base,
            inflation: achieved,
            results,
        });
        eprintln!("  finished {}", entry.spec.name);
    }
    rows
}

/// Runs diffusion-only (no final legalization) over the ckt suite for
/// the overflow/movement comparison of Tables VII–VIII.
pub fn run_diffusion_comparison(scale: f64) -> Vec<DiffusionRow> {
    let mut rows = Vec::new();
    for entry in ckt_suite(scale) {
        let (bench, _) = entry.generate_inflated();
        let cfg = diffusion_cfg(&bench);
        let grid = BinGrid::new(bench.die.outline(), cfg.bin_size);

        let mut pg = bench.placement.clone();
        GlobalDiffusion::new(cfg.clone()).run(&bench.netlist, &bench.die, &mut pg);
        let dg = DensityMap::from_placement(&bench.netlist, &pg, grid.clone());
        let mg = MovementStats::between(&bench.netlist, &bench.placement, &pg);

        let mut pl = bench.placement.clone();
        LocalDiffusion::new(cfg.clone()).run(&bench.netlist, &bench.die, &mut pl);
        let dl = DensityMap::from_placement(&bench.netlist, &pl, grid);
        let ml = MovementStats::between(&bench.netlist, &bench.placement, &pl);

        rows.push(DiffusionRow {
            name: entry.spec.name.clone(),
            global_overflow: (
                dg.max_local_overflow(cfg.w1, cfg.d_max),
                dg.total_local_overflow(cfg.w1, cfg.d_max),
            ),
            local_overflow: (
                dl.max_local_overflow(cfg.w1, cfg.d_max),
                dl.total_local_overflow(cfg.w1, cfg.d_max),
            ),
            global_movement: (mg.max, mg.total),
            local_movement: (ml.max, ml.total),
        });
        eprintln!("  finished {}", entry.spec.name);
    }
    rows
}

/// One circuit's results across the four ISPD-comparison legalizers.
pub struct IspdRow {
    /// Circuit name.
    pub name: String,
    /// TWL of the inflated starting placement (the scaling base).
    pub base_twl: f64,
    /// Results in order: TETRIS (Capo-like), ROWDP (FengShui-like),
    /// DIFF(L), GEM.
    pub results: Vec<RunResult>,
}

/// Which ISPD inflation protocol to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IspdSet {
    /// 10% of cells chosen at random, width × 1.6.
    Random,
    /// The 10% of cells nearest the die center, width × 1.6.
    Center,
}

impl IspdSet {
    /// The inflation spec for this set (seeded per circuit).
    pub fn inflation(self, seed: u64) -> InflationSpec {
        match self {
            IspdSet::Random => InflationSpec::random_width(0.10, 1.6, seed),
            IspdSet::Center => InflationSpec::center_width(0.10, 1.6),
        }
    }

    /// Table label.
    pub fn label(self) -> &'static str {
        match self {
            IspdSet::Random => "RANDOM",
            IspdSet::Center => "CENTER",
        }
    }
}

/// Runs the ISPD comparison (Tables XI–XVI) for one inflation set.
pub fn run_ispd_comparison(scale: f64, set: IspdSet) -> Vec<IspdRow> {
    let mut rows = Vec::new();
    for entry in ibm_suite(scale) {
        let base = entry.spec.generate();
        let mut bench = entry.spec.generate();
        bench.inflate(&set.inflation(entry.spec.seed ^ 0x15bd));
        let exp = Experiment::new(bench, &base);
        let base_twl = dpm_place::hpwl(&exp.bench.netlist, &exp.start);
        let legalizers: Vec<Box<dyn Legalizer>> = vec![
            Box::new(TetrisLegalizer::new()),
            Box::new(RowDpLegalizer::new()),
            Box::new(DiffusionLegalizer::local_default()),
            Box::new(GemLegalizer::new()),
        ];
        let results = legalizers.iter().map(|l| exp.run(l.as_ref())).collect();
        rows.push(IspdRow {
            name: entry.spec.name.clone(),
            base_twl,
            results,
        });
        eprintln!("  finished {} ({})", entry.spec.name, set.label());
    }
    rows
}

/// Prints one metric of the ckt comparison as a paper-style table.
pub fn print_ckt_metric(
    title: &str,
    rows: &[CktRow],
    metric: impl Fn(&RunResult) -> f64,
    base: impl Fn(&CktRow) -> f64,
) {
    let mut t = TextTable::new(["testcase", "Base", "GREED", "FLOW", "DIFF(G)", "DIFF(L)"]);
    for row in rows {
        let mut cells = vec![row.name.clone(), fnum(base(row))];
        cells.extend(row.results.iter().map(|r| fnum(metric(r))));
        t.row(cells);
    }
    print_table(title, &t);
}

/// Prints one metric of the ISPD comparison.
pub fn print_ispd_metric(
    title: &str,
    rows: &[IspdRow],
    metric: impl Fn(&IspdRow, &RunResult) -> f64,
) {
    let mut t = TextTable::new([
        "testcase",
        "Capo-like",
        "FengShui-like",
        "DIFF(L)",
        "GEM-like",
    ]);
    for row in rows {
        let mut cells = vec![row.name.clone()];
        cells.extend(row.results.iter().map(|r| fnum(metric(row, r))));
        t.row(cells);
    }
    print_table(title, &t);
}
