//! Cell advection through the diffusion velocity field (paper Eq. 7).

use crate::{DiffusionConfig, DiffusionEngine};
use dpm_geom::{clamp, Point};
use dpm_netlist::Netlist;
use dpm_place::{BinGrid, Placement};

/// Result of advecting all cells through one time step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdvectOutcome {
    /// Sum of world-space displacements this step.
    pub total_movement: f64,
    /// Number of cells that moved.
    pub moved_cells: usize,
}

/// Moves every movable cell one step along the velocity field:
/// `x(n+1) = x(n) + v(x(n), y(n)) · Δt` (Eq. 7), with the velocity taken
/// at the cell *center*, bilinearly interpolated when
/// [`DiffusionConfig::interpolate`] is set.
///
/// Rules enforced, in order:
///
/// 1. cells whose center sits in a wall or (when `respect_frozen`) frozen
///    bin do not move;
/// 2. the per-step displacement is clamped to
///    [`DiffusionConfig::max_step_displacement`] bins (CFL);
/// 3. a move whose destination bin is a wall is projected onto the axis
///    that stays outside the wall (cells slide around macros, never onto
///    them);
/// 4. the cell is clamped so its outline stays inside the grid region.
pub(crate) fn advect_cells(
    engine: &DiffusionEngine,
    grid: &BinGrid,
    netlist: &Netlist,
    placement: &mut Placement,
    cfg: &DiffusionConfig,
    respect_frozen: bool,
) -> AdvectOutcome {
    let mut outcome = AdvectOutcome::default();
    let nx = engine.nx() as f64;
    let ny = engine.ny() as f64;

    for cell_id in netlist.movable_cell_ids() {
        let cell = netlist.cell(cell_id);
        let old_pos = placement.get(cell_id);
        let center_world = Point::new(old_pos.x + cell.width / 2.0, old_pos.y + cell.height / 2.0);
        let c = grid.to_bin_coords(center_world);

        let (j, k) = bin_of(c, engine);
        if engine.is_wall(j, k) {
            continue;
        }
        if respect_frozen && engine.is_frozen(j, k) {
            continue;
        }

        let v = if cfg.interpolate {
            engine.velocity_at(c)
        } else {
            engine.bin_velocity(j, k)
        };
        let disp = (v * cfg.dt).clamped_linf(cfg.max_step_displacement);
        if disp.linf_length() == 0.0 {
            continue;
        }

        // Keep the cell outline inside the region (all in bin coords).
        let half_w = cell.width / (2.0 * grid.bin_width());
        let half_h = cell.height / (2.0 * grid.bin_height());
        let lim = |v: f64, half: f64, n: f64| {
            if 2.0 * half >= n {
                n / 2.0 // cell wider than region: pin to the middle
            } else {
                clamp(v, half, n - half)
            }
        };
        let mut target = Point::new(lim(c.x + disp.x, half_w, nx), lim(c.y + disp.y, half_h, ny));

        // Never step onto a macro: project the move axis-wise.
        let (tj, tk) = bin_of(target, engine);
        if engine.is_wall(tj, tk) {
            let x_only = Point::new(target.x, c.y);
            let (xj, xk) = bin_of(x_only, engine);
            let y_only = Point::new(c.x, target.y);
            let (yj, yk) = bin_of(y_only, engine);
            if !engine.is_wall(xj, xk) {
                target = x_only;
            } else if !engine.is_wall(yj, yk) {
                target = y_only;
            } else {
                continue;
            }
        }

        let new_center_world = grid.to_world_coords(target);
        let new_pos = Point::new(
            new_center_world.x - cell.width / 2.0,
            new_center_world.y - cell.height / 2.0,
        );
        let dist = (new_pos - old_pos).length();
        if dist > 0.0 {
            placement.set(cell_id, new_pos);
            outcome.total_movement += dist;
            outcome.moved_cells += 1;
        }
    }
    outcome
}

/// The (clamped) bin containing a point in bin coordinates.
fn bin_of(p: Point, engine: &DiffusionEngine) -> (usize, usize) {
    let j = (p.x.floor().max(0.0) as usize).min(engine.nx() - 1);
    let k = (p.y.floor().max(0.0) as usize).min(engine.ny() - 1);
    (j, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Rect;
    use dpm_netlist::{CellKind, NetlistBuilder};

    /// One 2×2 cell on a 4×4 grid of 10-unit bins.
    fn setup(at_world: Point) -> (Netlist, Placement, BinGrid) {
        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", 2.0, 2.0, CellKind::Movable);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(1);
        p.set(c, at_world);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
        (nl, p, grid)
    }

    fn engine_with_uniform_velocity(vx: f64, vy: f64) -> DiffusionEngine {
        let mut e = DiffusionEngine::from_raw(4, 4, vec![1.0; 16], None);
        for k in 0..4 {
            for j in 0..4 {
                e.set_bin_velocity(j, k, dpm_geom::Vector::new(vx, vy));
            }
        }
        e
    }

    #[test]
    fn cell_moves_along_field() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0));
        let e = engine_with_uniform_velocity(1.0, 0.0);
        let cfg = DiffusionConfig::default();
        let out = advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        assert_eq!(out.moved_cells, 1);
        // v = 1 bin per unit time, dt = 0.2 → 0.2 bins = 2 world units.
        let np = p.get(dpm_netlist::CellId::new(0));
        assert!((np.x - 16.0).abs() < 1e-9, "x = {}", np.x);
        assert!((np.y - 14.0).abs() < 1e-9);
        assert!((out.total_movement - 2.0).abs() < 1e-9);
    }

    #[test]
    fn displacement_is_cfl_clamped() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0));
        let e = engine_with_uniform_velocity(100.0, 0.0); // absurd speed
        let cfg = DiffusionConfig::default();
        advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        let np = p.get(dpm_netlist::CellId::new(0));
        // At most 1 bin = 10 world units.
        assert!(np.x - 14.0 <= 10.0 + 1e-9);
    }

    #[test]
    fn cell_never_leaves_region() {
        let (nl, mut p, grid) = setup(Point::new(36.0, 36.0));
        let e = engine_with_uniform_velocity(5.0, 5.0);
        let cfg = DiffusionConfig::default();
        for _ in 0..20 {
            advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        }
        let r = p.cell_rect(&nl, dpm_netlist::CellId::new(0));
        assert!(grid.region().contains_rect(&r), "cell escaped: {r}");
    }

    #[test]
    fn cell_slides_around_wall() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0)); // center (15,15), bin (1,1)
        let mut d = vec![1.0; 16];
        d[1 * 4 + 2] = 1.0;
        let mut wall = vec![false; 16];
        wall[1 * 4 + 2] = true; // bin (2,1) east of the cell
        let mut e = DiffusionEngine::from_raw(4, 4, d, Some(wall));
        for k in 0..4 {
            for j in 0..4 {
                e.set_bin_velocity(j, k, dpm_geom::Vector::new(5.0, 5.0));
            }
        }
        let cfg = DiffusionConfig::default();
        advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        let center = p.cell_center(&nl, dpm_netlist::CellId::new(0));
        let b = grid.bin_of_point(center);
        assert!(!(b.j == 2 && b.k == 1), "cell moved onto the macro");
        // It still moved (slid north).
        assert!(center.y > 15.0);
    }

    #[test]
    fn frozen_bin_pins_cells_when_respected() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0));
        let mut e = engine_with_uniform_velocity(1.0, 1.0);
        let mut frozen = vec![false; 16];
        frozen[1 * 4 + 1] = true; // the cell's own bin
        e.set_frozen_mask(&frozen);
        let cfg = DiffusionConfig::default();
        let out = advect_cells(&e, &grid, &nl, &mut p, &cfg, true);
        assert_eq!(out.moved_cells, 0);
        assert_eq!(p.get(dpm_netlist::CellId::new(0)), Point::new(14.0, 14.0));
        // Without respect_frozen the cell moves.
        let out2 = advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        assert_eq!(out2.moved_cells, 1);
    }

    #[test]
    fn zero_velocity_means_no_movement() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0));
        let e = engine_with_uniform_velocity(0.0, 0.0);
        let cfg = DiffusionConfig::default();
        let out = advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        assert_eq!(out, AdvectOutcome::default());
    }
}
