//! Sparse symmetric linear algebra: CSR matrices and conjugate gradient.

/// A symmetric positive-definite matrix in compressed-sparse-row form,
/// assembled from coordinate triplets.
///
/// # Examples
///
/// ```
/// use dpm_qplace::CsrMatrix;
///
/// // [[2, -1], [-1, 2]]
/// let mut b = CsrMatrix::builder(2);
/// b.add(0, 0, 2.0);
/// b.add(0, 1, -1.0);
/// b.add(1, 0, -1.0);
/// b.add(1, 1, 2.0);
/// let m = b.build();
/// let y = m.multiply(&[1.0, 0.0]);
/// assert_eq!(y, vec![2.0, -1.0]);
/// ```
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    n: usize,
    row_starts: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

/// Accumulates coordinate triplets for a [`CsrMatrix`]; duplicate
/// entries are summed.
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    n: usize,
    triplets: Vec<(usize, usize, f64)>,
}

impl CsrMatrix {
    /// Starts assembling an `n × n` matrix.
    pub fn builder(n: usize) -> CsrBuilder {
        CsrBuilder {
            n,
            triplets: Vec::new(),
        }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` for the 0 × 0 matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Computes `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "dimension mismatch");
        let mut y = vec![0.0; self.n];
        #[allow(clippy::needless_range_loop)]
        for row in 0..self.n {
            let mut acc = 0.0;
            for i in self.row_starts[row]..self.row_starts[row + 1] {
                acc += self.values[i] * x[self.cols[i]];
            }
            y[row] = acc;
        }
        y
    }

    /// Solves `A·x = b` by Jacobi-preconditioned conjugate gradient,
    /// starting from `x0`, to relative residual `tol` or `max_iters`.
    ///
    /// Returns the solution and the iteration count. `A` must be
    /// symmetric positive definite (the caller's responsibility — the
    /// quadratic-placement Laplacians with at least one anchor are).
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn solve_cg(&self, b: &[f64], x0: &[f64], tol: f64, max_iters: usize) -> (Vec<f64>, usize) {
        assert_eq!(b.len(), self.n, "rhs dimension mismatch");
        assert_eq!(x0.len(), self.n, "x0 dimension mismatch");
        if self.n == 0 {
            return (Vec::new(), 0);
        }
        // Jacobi preconditioner: inverse diagonal.
        let mut inv_diag = vec![1.0; self.n];
        #[allow(clippy::needless_range_loop)]
        for row in 0..self.n {
            for i in self.row_starts[row]..self.row_starts[row + 1] {
                if self.cols[i] == row && self.values[i].abs() > 1e-300 {
                    inv_diag[row] = 1.0 / self.values[i];
                }
            }
        }

        let mut x = x0.to_vec();
        let ax = self.multiply(&x);
        let mut r: Vec<f64> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
        let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
        let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(&ri, &di)| ri * di).collect();
        let mut p = z.clone();
        let mut rz: f64 = r.iter().zip(&z).map(|(&a, &b)| a * b).sum();

        for iter in 0..max_iters {
            let rnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt();
            if rnorm / bnorm <= tol {
                return (x, iter);
            }
            let ap = self.multiply(&p);
            let pap: f64 = p.iter().zip(&ap).map(|(&a, &b)| a * b).sum();
            if pap.abs() < 1e-300 {
                return (x, iter);
            }
            let alpha = rz / pap;
            for i in 0..self.n {
                x[i] += alpha * p[i];
                r[i] -= alpha * ap[i];
            }
            for i in 0..self.n {
                z[i] = r[i] * inv_diag[i];
            }
            let rz_new: f64 = r.iter().zip(&z).map(|(&a, &b)| a * b).sum();
            let beta = rz_new / rz.max(1e-300);
            rz = rz_new;
            for i in 0..self.n {
                p[i] = z[i] + beta * p[i];
            }
        }
        (x, max_iters)
    }
}

impl CsrBuilder {
    /// Adds `value` at `(row, col)` (summed with any existing entry).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of range.
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n && col < self.n,
            "entry ({row},{col}) out of range"
        );
        self.triplets.push((row, col, value));
    }

    /// Finalizes into CSR form.
    pub fn build(mut self) -> CsrMatrix {
        self.triplets.sort_by_key(|&(r, c, _)| (r, c));
        let mut rows: Vec<usize> = Vec::with_capacity(self.triplets.len());
        let mut cols: Vec<usize> = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.triplets.len());
        for &(r, c, v) in &self.triplets {
            if rows.last() == Some(&r) && cols.last() == Some(&c) {
                *values.last_mut().expect("non-empty") += v;
            } else {
                rows.push(r);
                cols.push(c);
                values.push(v);
            }
        }
        let mut row_starts = vec![0usize; self.n + 1];
        for &r in &rows {
            row_starts[r + 1] += 1;
        }
        for i in 0..self.n {
            row_starts[i + 1] += row_starts[i];
        }
        CsrMatrix {
            n: self.n,
            row_starts,
            cols,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_rng::Rng;

    fn dense_solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        // Gaussian elimination with partial pivoting, for cross-checks.
        let n = b.len();
        let mut m: Vec<Vec<f64>> = a.to_vec();
        let mut rhs = b.to_vec();
        for col in 0..n {
            let piv = (col..n)
                .max_by(|&i, &j| m[i][col].abs().total_cmp(&m[j][col].abs()))
                .expect("rows");
            m.swap(col, piv);
            rhs.swap(col, piv);
            let d = m[col][col];
            for row in col + 1..n {
                let f = m[row][col] / d;
                #[allow(clippy::needless_range_loop)]
                for k in col..n {
                    m[row][k] -= f * m[col][k];
                }
                rhs[row] -= f * rhs[col];
            }
        }
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = rhs[row];
            for k in row + 1..n {
                acc -= m[row][k] * x[k];
            }
            x[row] = acc / m[row][row];
        }
        x
    }

    /// Random SPD matrix: L·Lᵀ + n·I from a random lower-triangular L.
    fn random_spd(n: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
        let mut l = vec![vec![0.0; n]; n];
        for (i, row) in l.iter_mut().enumerate() {
            for item in row.iter_mut().take(i + 1) {
                *item = rng.random_range(-1.0..1.0);
            }
        }
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                #[allow(clippy::needless_range_loop)]
                for k in 0..n {
                    a[i][j] += l[i][k] * l[j][k];
                }
            }
            a[i][i] += n as f64;
        }
        a
    }

    #[test]
    fn multiply_matches_dense() {
        let mut b = CsrMatrix::builder(3);
        let dense = [[4.0, -1.0, 0.0], [-1.0, 4.0, -2.0], [0.0, -2.0, 5.0]];
        for (i, row) in dense.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    b.add(i, j, v);
                }
            }
        }
        let m = b.build();
        assert_eq!(m.nnz(), 7);
        let x = [1.0, 2.0, 3.0];
        let y = m.multiply(&x);
        for i in 0..3 {
            let expect: f64 = (0..3).map(|j| dense[i][j] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_entries_are_summed() {
        let mut b = CsrMatrix::builder(2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.5);
        b.add(1, 1, 1.0);
        let m = b.build();
        let y = m.multiply(&[1.0, 1.0]);
        assert!((y[0] - 3.5).abs() < 1e-12);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn cg_matches_gaussian_elimination_on_random_spd() {
        let mut rng = Rng::seed_from_u64(9);
        for n in [2usize, 5, 12, 25] {
            let a = random_spd(n, &mut rng);
            let b: Vec<f64> = (0..n).map(|_| rng.random_range(-5.0..5.0)).collect();
            let mut builder = CsrMatrix::builder(n);
            for (i, row) in a.iter().enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    builder.add(i, j, v);
                }
            }
            let m = builder.build();
            let (x, iters) = m.solve_cg(&b, &vec![0.0; n], 1e-12, 10 * n + 50);
            let expect = dense_solve(&a, &b);
            for i in 0..n {
                assert!(
                    (x[i] - expect[i]).abs() < 1e-6,
                    "n={n} i={i}: cg {} vs dense {} ({iters} iters)",
                    x[i],
                    expect[i]
                );
            }
        }
    }

    #[test]
    fn cg_converges_fast_on_laplacian_chain() {
        // Path-graph Laplacian with both ends anchored: the classic
        // placement system.
        let n = 50;
        let mut b = CsrMatrix::builder(n);
        for i in 0..n {
            let mut diag = 0.0;
            if i > 0 {
                b.add(i, i - 1, -1.0);
                diag += 1.0;
            }
            if i + 1 < n {
                b.add(i, i + 1, -1.0);
                diag += 1.0;
            }
            // Anchors at the ends.
            if i == 0 || i == n - 1 {
                diag += 1.0;
            }
            b.add(i, i, diag);
        }
        let m = b.build();
        // Anchor 0 at x=0 and n-1 at x=100.
        let mut rhs = vec![0.0; n];
        rhs[n - 1] = 100.0;
        let (x, _) = m.solve_cg(&rhs, &vec![0.0; n], 1e-10, 500);
        // Solution is a straight line between the anchors.
        for i in 1..n {
            assert!(x[i] > x[i - 1], "not monotone at {i}");
        }
        assert!((x[0] - 100.0 / (n as f64 + 1.0)).abs() < 1.0);
    }

    #[test]
    fn empty_matrix_solves_trivially() {
        let m = CsrMatrix::builder(0).build();
        let (x, iters) = m.solve_cg(&[], &[], 1e-9, 10);
        assert!(x.is_empty());
        assert_eq!(iters, 0);
        assert!(m.is_empty());
    }
}
