//! Horizontal sharding: route one migration job across K backends.
//!
//! A [`ShardRouter`] takes a normal [`JobRequest`], partitions its die
//! into K bin-aligned shard regions with H-bin density halos
//! ([`ShardPartition`]), and fans each shard's sub-problem out to a
//! backend — either an in-process diffusion run or a remote
//! [`Server`](crate::Server) reached over TCP through
//! [`ServeClient`]. Between shard-local diffusion passes it runs
//! bounded **halo-exchange rounds**: after every fan-out the owned-cell
//! results are stitched into the global placement, ownership and halos
//! are recomputed from the fresh positions, and the next round's shards
//! see their neighbors' latest boundary density through the refreshed
//! ghosts.
//!
//! Correctness anchors:
//!
//! - **K = 1 is a pass-through**: one shard covering the whole die
//!   carries the original die and every cell in order, so the routed
//!   result is bit-identical to calling the engine directly (and, for a
//!   TCP backend, bit-identical through the wire — `f64`s travel as bit
//!   patterns).
//! - **The maximum principle survives stitching**: for K > 1 a round is
//!   *accepted* only if the measured global max bin density did not
//!   increase; a round that would raise it is discarded and the
//!   exchange loop stops. Post-migration max density is therefore never
//!   above pre-migration max density, mirroring the FTCS maximum
//!   principle the engines guarantee per shard.
//! - **Graceful degradation**: a dead, overloaded or panicking shard
//!   leaves its region unmigrated for that round and records a
//!   per-shard error in the [`ShardReply`]; the job as a whole still
//!   succeeds with whatever the healthy shards achieved.
//! - **Warm spares**: a router built with [`ShardRouter::with_spares`]
//!   retries a failed shard's sub-problem on a spare backend within the
//!   same round and hands the shard to that spare for later rounds, so
//!   a killed backend costs a serial retry instead of an unmigrated
//!   region. Replacements are reported as [`ShardFailover`] entries.
//!
//! Telemetry from every shard run is merged: `DiffusionResult` kernel
//! timers via [`KernelTimers::merge`], per-shard service latencies via
//! the `dpm-obs` histogram snapshot merge.

use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use dpm_diffusion::{
    stitch_positions, DiffusionResult, GlobalDiffusion, KernelTimers, LocalDiffusion,
    ShardPartition, ShardProblem,
};
use dpm_geom::{Point, Rect};
use dpm_obs::{
    normalize_spans, rebase_spans, Histogram, HistogramSnapshot, SpanRecord, SpanRecorder,
    TraceContext, TraceIdGen,
};
use dpm_place::{DensityMap, MovementStats, Placement};

use crate::wire::{JobKind, JobRequest, JobResponse, PayloadEncoding, Reply};
use crate::ServeClient;

/// Salt mixed into the inherited span id when seeding the router's
/// span-id generator, distinct from the server's salt so a router and a
/// backend seeded from the same context never collide id streams.
const ROUTE_SEED_SALT: u64 = 0x5AAD_0D15_7A7C_40F5;

/// Spans a traced route keeps locally (round + dispatch spans; remote
/// spans ride back inside the sub-responses instead).
const ROUTE_SPAN_CAPACITY: usize = 256;

/// Where one shard's sub-problems run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardBackend {
    /// Run the diffusion engine on a thread inside the router's
    /// process.
    InProcess,
    /// Send the sub-problem to a [`Server`](crate::Server) at this
    /// address through a [`ServeClient`].
    Tcp(SocketAddr),
}

/// Routing parameters for a [`ShardRouter`].
#[derive(Debug, Clone)]
pub struct ShardRouterConfig {
    /// Requested shard count K. The partitioner may clamp this on tiny
    /// grids; [`ShardReply::shards`] reports what actually ran.
    pub shards: usize,
    /// Halo width H in bins. At least the diffusion window `W2` is
    /// sensible: then a window straddling a shard boundary is fully
    /// visible from both sides.
    pub halo_bins: usize,
    /// Upper bound on halo-exchange rounds (each round is one fan-out
    /// over all shards). With one shard a single round runs — there is
    /// no neighbor state to exchange.
    pub max_halo_rounds: usize,
    /// Payload encoding for TCP backends.
    pub encoding: PayloadEncoding,
}

impl Default for ShardRouterConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            halo_bins: 2,
            max_halo_rounds: 4,
            encoding: PayloadEncoding::Binary,
        }
    }
}

/// Per-shard accounting, accumulated over every halo-exchange round.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard index.
    pub shard: usize,
    /// World rectangle of the shard's owned core region.
    pub region: Rect,
    /// Cells the shard owned in the final round.
    pub owned_cells: usize,
    /// Diffusion steps executed across all rounds.
    pub steps: u64,
    /// Diffusion rounds (the engines' inner rounds) across all rounds.
    pub rounds: u64,
    /// Total service time across all rounds, nanoseconds.
    pub service_ns: u64,
    /// The most recent error, if any round failed on this shard. A set
    /// error means the shard's region kept its pre-round placement for
    /// the failing rounds — degraded, not fatal.
    pub error: Option<String>,
}

/// One warm-spare replacement: the backend a shard was assigned to
/// failed a round, and a spare ran the sub-problem instead (and owns
/// the shard for any later rounds of the same job).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardFailover {
    /// Which shard failed over.
    pub shard: usize,
    /// The backend that failed.
    pub from: ShardBackend,
    /// The spare that took over.
    pub to: ShardBackend,
}

/// Everything the router learned from one routed job.
#[derive(Debug, Clone)]
pub struct ShardReply {
    /// Aggregated response in the same shape a single
    /// [`Server`](crate::Server) would produce: final positions for
    /// every cell, summed steps/rounds, movement stats against the
    /// input placement.
    pub response: JobResponse,
    /// Number of shards that actually ran (after grid clamping).
    pub shards: usize,
    /// Per-shard accounting, indexed by shard.
    pub outcomes: Vec<ShardOutcome>,
    /// Halo-exchange rounds executed (fan-outs over all shards).
    pub halo_exchanges: usize,
    /// Warm-spare replacements performed during this job, in the order
    /// they happened (empty when every assigned backend stayed healthy
    /// or no spares were configured).
    pub failovers: Vec<ShardFailover>,
    /// Measured global max bin density before round 1 and after every
    /// *accepted* round; non-increasing by construction for K > 1.
    pub max_density_trace: Vec<f64>,
    /// Progress frames streamed by TCP backends (0 for in-process
    /// backends, which run unobserved).
    pub progress_frames: u64,
    /// Kernel timers merged across every in-process shard run via
    /// [`KernelTimers::merge`]. TCP backends report timings through
    /// their own stats endpoint instead.
    pub kernels: KernelTimers,
    /// Per-shard service latencies: one histogram per shard, merged
    /// into a single snapshot with the `dpm-obs` histogram merge (one
    /// sample per shard per round).
    pub shard_service_hist: HistogramSnapshot,
}

/// What one shard's run produced in one round.
struct ShardRun {
    /// The sub-problem that ran (carries the owned-cell mapping the
    /// stitcher needs).
    problem: ShardProblem,
    /// Post-run position of every sub-problem cell; `None` on error.
    positions: Option<Vec<Point>>,
    steps: u64,
    rounds: u64,
    converged: bool,
    service_ns: u64,
    progress_frames: u64,
    kernels: Option<KernelTimers>,
    error: Option<String>,
    /// Remote spans exported by a TCP backend, already re-based into
    /// the router's clock by the dispatch span's start.
    spans: Vec<SpanRecord>,
}

/// Fans one [`JobRequest`] out over K shard backends with halo
/// exchange. See the [module docs](self) for the contract.
///
/// # Examples
///
/// ```
/// use dpm_gen::{CircuitSpec, InflationSpec};
/// use dpm_serve::shard::{ShardRouter, ShardRouterConfig};
/// use dpm_serve::wire::{JobKind, JobRequest};
///
/// let mut bench = CircuitSpec::with_size("quick", 120, 5).generate();
/// bench.inflate(&InflationSpec::centered(0.2, 0.3, 9));
/// let req = JobRequest {
///     id: 1,
///     deadline_ms: 0,
///     progress_stride: 0,
///     kind: JobKind::Local,
///     design: "quick".into(),
///     config: dpm_diffusion::DiffusionConfig::default(),
///     netlist: bench.netlist,
///     die: bench.die,
///     placement: bench.placement,
///     vol: None,
///     trace: None,
/// };
/// let router = ShardRouter::in_process(ShardRouterConfig {
///     shards: 2,
///     ..ShardRouterConfig::default()
/// });
/// let reply = router.route(&req);
/// assert_eq!(reply.shards, 2);
/// assert!(reply.halo_exchanges >= 1);
/// // Maximum principle across the stitch: never worse than the input.
/// let trace = &reply.max_density_trace;
/// assert!(trace.last().unwrap() <= trace.first().unwrap());
/// ```
pub struct ShardRouter {
    cfg: ShardRouterConfig,
    backends: Vec<ShardBackend>,
    spares: Vec<ShardBackend>,
}

impl ShardRouter {
    /// Creates a router. Shard `i` runs on backend `i % backends.len()`,
    /// so one backend may serve several shards.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` is zero or `backends` is empty.
    pub fn new(cfg: ShardRouterConfig, backends: Vec<ShardBackend>) -> Self {
        Self::with_spares(cfg, backends, Vec::new())
    }

    /// Creates a router with warm spares: when a shard's assigned
    /// backend fails a round, its sub-problem is retried on the first
    /// untried spare (in order) within the same round, and that spare
    /// takes over the shard for the rest of the job. A spare that fails
    /// its retry is consumed too — it is presumed as dead as the
    /// backend it replaced.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` is zero or `backends` is empty.
    pub fn with_spares(
        cfg: ShardRouterConfig,
        backends: Vec<ShardBackend>,
        spares: Vec<ShardBackend>,
    ) -> Self {
        assert!(cfg.shards >= 1, "shard count must be positive");
        assert!(!backends.is_empty(), "at least one backend required");
        Self {
            cfg,
            backends,
            spares,
        }
    }

    /// Creates a router that runs every shard in-process.
    pub fn in_process(cfg: ShardRouterConfig) -> Self {
        Self::new(cfg, vec![ShardBackend::InProcess])
    }

    /// The routing configuration.
    pub fn config(&self) -> &ShardRouterConfig {
        &self.cfg
    }

    /// The configured backends.
    pub fn backends(&self) -> &[ShardBackend] {
        &self.backends
    }

    /// The configured warm spares (not yet consumed by a failover).
    pub fn spares(&self) -> &[ShardBackend] {
        &self.spares
    }

    /// Routes one job across the shards and stitches the result.
    ///
    /// Never fails as a whole: backend errors degrade to per-shard
    /// [`ShardOutcome::error`] entries while the rest of the die is
    /// still migrated.
    pub fn route(&self, req: &JobRequest) -> ShardReply {
        let t0 = Instant::now();
        // Tracing state: a local recorder for round/dispatch spans and a
        // deterministic id generator seeded from the inherited context.
        // Remote spans come back through the sub-responses and are
        // stitched (re-based onto dispatch-span starts) into one tree.
        let trace_ctx = req.trace;
        let recorder = trace_ctx.map(|_| SpanRecorder::new(ROUTE_SPAN_CAPACITY));
        let recorder_ref = recorder.as_ref();
        let mut ids = trace_ctx.map(|ctx| TraceIdGen::seeded(ctx.span_id ^ ROUTE_SEED_SALT));
        let mut collected_spans: Vec<SpanRecord> = Vec::new();
        let partition = ShardPartition::new(
            &req.die,
            req.config.bin_size,
            self.cfg.shards,
            self.cfg.halo_bins,
        );
        let k = partition.len();
        let grid = partition.grid().clone();
        let target = req.config.d_max + req.config.delta;

        let mut working = req.placement.clone();
        let measure =
            |p: &Placement| DensityMap::from_placement(&req.netlist, p, grid.clone()).max_density();
        let mut trace = vec![measure(&working)];

        let mut outcomes: Vec<ShardOutcome> = partition
            .shards()
            .iter()
            .map(|s| ShardOutcome {
                shard: s.index,
                region: s.core.world_rect(&grid),
                owned_cells: 0,
                steps: 0,
                rounds: 0,
                service_ns: 0,
                error: None,
            })
            .collect();
        let shard_hists: Vec<Histogram> = (0..k)
            .map(|_| Histogram::new(&Histogram::latency_bounds()))
            .collect();
        let mut kernels = KernelTimers::default();
        let mut progress_frames = 0u64;
        let mut halo_exchanges = 0usize;
        let mut single_shard_converged = false;

        // Per-shard backend assignment; failovers rewrite it mid-job.
        let mut assign: Vec<ShardBackend> = (0..k)
            .map(|shard| self.backends[shard % self.backends.len()])
            .collect();
        let mut spares = self.spares.clone();
        let mut failovers: Vec<ShardFailover> = Vec::new();

        let round_cap = if k == 1 {
            1
        } else {
            self.cfg.max_halo_rounds.max(1)
        };
        for _ in 0..round_cap {
            // One `halo.round` span per fan-out; each shard's dispatch
            // context is minted serially up front so span ids stay a
            // pure function of the inherited context, independent of
            // thread interleaving.
            let round_trace = trace_ctx.map(|ctx| {
                let ids = ids.as_mut().expect("id generator exists when traced");
                let round_ctx = ids.child_of(&ctx);
                let dispatch: Vec<TraceContext> =
                    (0..k).map(|_| ids.child_of(&round_ctx)).collect();
                let start = recorder_ref.expect("recorder exists when traced").now_ns();
                (start, round_ctx, dispatch)
            });
            // Halo exchange: ownership and ghost positions are derived
            // from the freshest global placement.
            let owners = partition.assign_owners(&req.netlist, &working);
            let mut runs: Vec<Option<ShardRun>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..k)
                    .map(|shard| {
                        let backend = assign[shard];
                        let partition = &partition;
                        let owners = &owners;
                        let working = &working;
                        let encoding = self.cfg.encoding;
                        let shard_trace = round_trace
                            .as_ref()
                            .map(|(_, _, dispatch)| (recorder_ref.unwrap(), dispatch[shard]));
                        scope.spawn(move || {
                            partition
                                .extract_problem(shard, &req.netlist, &req.die, working, owners)
                                .map(|problem| {
                                    run_shard(backend, req, problem, encoding, shard_trace)
                                })
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard thread never panics"))
                    .collect()
            });

            // Warm-spare failover: retry each failed shard serially on
            // the spares before stitching, so a dead backend costs a
            // retry, not an unmigrated region. The successful spare owns
            // the shard from here on; a spare that fails its retry is
            // consumed (presumed dead) and the next one is tried. The
            // wire is bit-exact, so which backend ran the sub-problem
            // cannot change the stitched placement.
            for (shard, slot) in runs.iter_mut().enumerate() {
                if slot.as_ref().is_none_or(|run| run.error.is_none()) {
                    continue;
                }
                while !spares.is_empty() {
                    let spare = spares.remove(0);
                    // A retry is a fresh dispatch: it gets its own span
                    // (and id) under the same round.
                    let retry_trace = round_trace.as_ref().map(|(_, round_ctx, _)| {
                        let ctx = ids.as_mut().expect("traced").child_of(round_ctx);
                        (recorder_ref.expect("traced"), ctx)
                    });
                    let retry = partition
                        .extract_problem(shard, &req.netlist, &req.die, &working, &owners)
                        .map(|problem| {
                            run_shard(spare, req, problem, self.cfg.encoding, retry_trace)
                        });
                    match retry {
                        Some(run) if run.error.is_none() => {
                            failovers.push(ShardFailover {
                                shard,
                                from: assign[shard],
                                to: spare,
                            });
                            assign[shard] = spare;
                            *slot = Some(run);
                            break;
                        }
                        _ => {}
                    }
                }
            }

            halo_exchanges += 1;
            let mut candidate = working.clone();
            let mut any_steps = false;
            let mut all_converged = true;
            for (shard, run) in runs.into_iter().enumerate() {
                let Some(mut run) = run else {
                    // Shard owns no cells this round; nothing to do.
                    continue;
                };
                collected_spans.append(&mut run.spans);
                let out = &mut outcomes[shard];
                out.owned_cells = run.problem.owned;
                out.steps += run.steps;
                out.rounds += run.rounds;
                out.service_ns += run.service_ns;
                shard_hists[shard].record(run.service_ns);
                progress_frames += run.progress_frames;
                if let Some(kt) = &run.kernels {
                    kernels.merge(kt);
                }
                all_converged &= run.converged && run.error.is_none();
                if let Some(err) = run.error {
                    out.error = Some(err);
                }
                if let Some(positions) = run.positions {
                    any_steps |= run.steps > 0;
                    stitch_positions(&run.problem, &positions, &mut candidate);
                }
            }

            let candidate_max = measure(&candidate);
            if let Some((start, round_ctx, _)) = &round_trace {
                let recorder = recorder_ref.expect("recorder exists when traced");
                recorder.record_traced("halo.round", *start, recorder.now_ns(), *round_ctx);
            }
            if k > 1 && candidate_max > *trace.last().expect("trace is never empty") {
                // Rejecting the round preserves the maximum-principle
                // invariant across the stitch: accepted state is never
                // denser than what came before.
                break;
            }
            working = candidate;
            trace.push(candidate_max);
            single_shard_converged = all_converged;
            if candidate_max <= target || !any_steps {
                break;
            }
        }

        // TCP backends cannot ship per-run kernel timers in a
        // JobResponse; fold in their servers' lifetime timers instead.
        for addr in self.distinct_tcp_addrs() {
            if let Ok(snapshot) = ServeClient::connect(addr).and_then(|mut c| {
                c.stats()
                    .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
            }) {
                kernels.merge(&snapshot.kernels);
            }
        }

        let mut shard_service_hist = HistogramSnapshot::empty(&Histogram::latency_bounds());
        for h in &shard_hists {
            shard_service_hist.merge(&h.snapshot());
        }

        let final_max = *trace.last().expect("trace is never empty");
        // Assemble the stitched span tree: the router's own round and
        // dispatch spans plus every backend's re-based remote spans,
        // normalized so the earliest span starts at 0 (a receiver one
        // hop up re-bases again onto its own dispatch span).
        let spans = match (recorder_ref, trace_ctx) {
            (Some(recorder), Some(ctx)) => {
                let mut spans = recorder.drain_trace(ctx.trace_id);
                spans.append(&mut collected_spans);
                normalize_spans(&mut spans);
                spans
            }
            _ => Vec::new(),
        };
        let movement = MovementStats::between(&req.netlist, &req.placement, &working);
        let response = JobResponse {
            id: req.id,
            converged: final_max <= target || (k == 1 && single_shard_converged),
            steps: outcomes.iter().map(|o| o.steps).sum(),
            rounds: outcomes.iter().map(|o| o.rounds).sum(),
            total_movement: movement.total,
            max_movement: movement.max,
            queue_ns: 0,
            service_ns: t0.elapsed().as_nanos() as u64,
            positions: working.as_slice().to_vec(),
            vol: None,
            spans,
        };
        ShardReply {
            response,
            shards: k,
            outcomes,
            halo_exchanges,
            failovers,
            max_density_trace: trace,
            progress_frames,
            kernels,
            shard_service_hist,
        }
    }

    fn distinct_tcp_addrs(&self) -> Vec<SocketAddr> {
        let mut addrs = Vec::new();
        for b in &self.backends {
            if let ShardBackend::Tcp(a) = b {
                if !addrs.contains(a) {
                    addrs.push(*a);
                }
            }
        }
        addrs
    }
}

/// Runs one shard's sub-problem on its backend. Never panics: engine
/// panics and transport failures degrade to `error`.
///
/// When traced, the whole backend interaction becomes one
/// `shard.dispatch` span under `trace`'s context, the sub-request
/// inherits that context over the wire, and the backend's exported
/// spans (normalized to start at 0) are re-based onto the dispatch
/// span's local start — so remote clocks never enter the stitched tree.
fn run_shard(
    backend: ShardBackend,
    req: &JobRequest,
    problem: ShardProblem,
    encoding: PayloadEncoding,
    trace: Option<(&SpanRecorder, TraceContext)>,
) -> ShardRun {
    let dispatch_start = trace.map(|(recorder, _)| recorder.now_ns());
    let mut run = run_shard_inner(backend, req, problem, encoding, trace.map(|(_, ctx)| ctx));
    if let (Some((recorder, ctx)), Some(start)) = (trace, dispatch_start) {
        recorder.record_traced("shard.dispatch", start, recorder.now_ns(), ctx);
        rebase_spans(&mut run.spans, start);
    }
    run
}

fn run_shard_inner(
    backend: ShardBackend,
    req: &JobRequest,
    problem: ShardProblem,
    encoding: PayloadEncoding,
    trace: Option<TraceContext>,
) -> ShardRun {
    let started = Instant::now();
    match backend {
        ShardBackend::InProcess => {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let mut placement = problem.placement.clone();
                let result: DiffusionResult = match req.kind {
                    JobKind::Global => GlobalDiffusion::new(req.config.clone()).run(
                        &problem.netlist,
                        &problem.die,
                        &mut placement,
                    ),
                    JobKind::Local => LocalDiffusion::new(req.config.clone()).run(
                        &problem.netlist,
                        &problem.die,
                        &mut placement,
                    ),
                };
                (placement, result)
            }));
            let service_ns = started.elapsed().as_nanos() as u64;
            match outcome {
                Ok((placement, result)) => ShardRun {
                    positions: Some(placement.as_slice().to_vec()),
                    steps: result.steps as u64,
                    rounds: result.rounds as u64,
                    converged: result.converged,
                    service_ns,
                    progress_frames: 0,
                    kernels: Some(*result.telemetry.kernels()),
                    error: None,
                    spans: Vec::new(),
                    problem,
                },
                Err(_) => failed(problem, service_ns, "shard engine panicked".into()),
            }
        }
        ShardBackend::Tcp(addr) => {
            let sub = JobRequest {
                id: req.id,
                deadline_ms: req.deadline_ms,
                progress_stride: req.progress_stride,
                kind: req.kind,
                design: format!("{}/shard{}", req.design, problem.shard),
                config: req.config.clone(),
                netlist: problem.netlist.clone(),
                die: problem.die.clone(),
                placement: problem.placement.clone(),
                vol: None,
                trace,
            };
            let mut progress_frames = 0u64;
            let reply = ServeClient::connect(addr)
                .map_err(|e| format!("connect {addr}: {e}"))
                .and_then(|mut client| {
                    client
                        .request_streaming(&sub, encoding, |_| progress_frames += 1)
                        .map_err(|e| format!("transport: {e}"))
                });
            let service_ns = started.elapsed().as_nanos() as u64;
            match reply {
                Ok(Reply::Ok(resp)) => {
                    if resp.positions.len() != problem.cell_map.len() {
                        let msg = format!(
                            "backend returned {} positions for {} cells",
                            resp.positions.len(),
                            problem.cell_map.len()
                        );
                        return failed(problem, service_ns, msg);
                    }
                    ShardRun {
                        positions: Some(resp.positions),
                        steps: resp.steps,
                        rounds: resp.rounds,
                        converged: resp.converged,
                        service_ns: resp.service_ns,
                        progress_frames,
                        kernels: None,
                        error: None,
                        spans: resp.spans,
                        problem,
                    }
                }
                Ok(Reply::Rejected(e)) => {
                    let msg = format!("{}: {}", e.code.as_str(), e.message);
                    failed(problem, service_ns, msg)
                }
                Err(e) => failed(problem, service_ns, e),
            }
        }
    }
}

fn failed(problem: ShardProblem, service_ns: u64, error: String) -> ShardRun {
    ShardRun {
        problem,
        positions: None,
        steps: 0,
        rounds: 0,
        converged: false,
        service_ns,
        progress_frames: 0,
        kernels: None,
        error: Some(error),
        spans: Vec::new(),
    }
}
