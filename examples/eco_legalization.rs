//! ECO legalization: the paper's motivating physical-synthesis scenario.
//!
//! After timing closure, an Engineering Change Order repowers a set of
//! gates (here: the cells on the most timing-critical region), inflating
//! them and creating overlaps. The design must be re-legalized with as
//! little damage to the closed timing as possible. This example measures
//! what each legalizer does to worst slack and FOM.
//!
//! Run with: `cargo run --release --example eco_legalization`

use diffuplace::gen::{CircuitSpec, InflationSpec};
use diffuplace::legalize::{
    DiffusionLegalizer, FlowLegalizer, GreedyLegalizer, Legalizer, TetrisLegalizer,
};
use diffuplace::place::hpwl;
use diffuplace::sta::{DelayModel, TimingAnalyzer};

fn main() {
    // A placed, timing-closed design.
    let golden = CircuitSpec::with_size("eco", 3_000, 11).generate();
    let sta = TimingAnalyzer::new(&golden.netlist, DelayModel::default());
    let clock = sta.critical_path_delay(&golden.netlist, &golden.placement) * 1.02;
    let before = sta.analyze(&golden.netlist, &golden.placement, clock);
    println!(
        "golden design: TWL {:.0}, WNS {:.3}, FOM {:.3} at clock {:.2}",
        hpwl(&golden.netlist, &golden.placement),
        before.wns,
        before.fom,
        clock
    );

    // The ECO: buffers inserted on the longest nets plus concentrated
    // repowering around the die center.
    let mut eco = golden.clone();
    let buffers = eco.insert_buffers(0.04, 6.0);
    let added = eco.inflate(&InflationSpec::centered(0.12, 0.3, 13));
    println!(
        "ECO inserted {buffers} buffers and inflated area by {:.1}% around the die center\n",
        added * 100.0
    );

    // ECO netlists have new cell sizes; rebuild the analyzer.
    let eco_sta = TimingAnalyzer::new(&eco.netlist, DelayModel::default());
    println!(
        "{:<10} {:>6} {:>12} {:>9} {:>9} {:>8}",
        "legalizer", "legal", "TWL", "WNS", "FOM", "CPU(ms)"
    );
    let legalizers: Vec<Box<dyn Legalizer>> = vec![
        Box::new(DiffusionLegalizer::local_default()),
        Box::new(DiffusionLegalizer::global_default()),
        Box::new(FlowLegalizer::new()),
        Box::new(GreedyLegalizer::new()),
        Box::new(TetrisLegalizer::new()),
    ];
    for legalizer in &legalizers {
        let mut placement = eco.placement.clone();
        let outcome = diffuplace::legalize::run_legalizer(
            legalizer.as_ref(),
            &eco.netlist,
            &eco.die,
            &mut placement,
        );
        let t = eco_sta.analyze(&eco.netlist, &placement, clock);
        println!(
            "{:<10} {:>6} {:>12.0} {:>9.3} {:>9.3} {:>8.1}",
            legalizer.name(),
            outcome.is_legal,
            hpwl(&eco.netlist, &placement),
            t.wns,
            t.fom,
            outcome.runtime.as_secs_f64() * 1e3
        );
    }
    println!("\nThe diffusion legalizers should preserve WNS/FOM best: they move");
    println!("cells smoothly along density gradients instead of relocating them.");
}
