//! Table 15 is produced by the ISPD RANDOM run; thin wrapper for naming.

fn main() {
    println!("Table 15 is part of the ISPD RANDOM run:");
    println!("    cargo run --release -p dpm-bench --bin table_ispd -- --set random");
}
