//! Closed-form spectral density evolution: in-tree real-to-real DCT
//! transforms and a solver that jumps the diffusion field to any time.
//!
//! The FTCS kernel integrates `∂ρ/∂t = D·∇²ρ` one small step at a time
//! — thousands of O(n) sweeps per migration. But under the engine's
//! default *conservative* boundary rule (ghost = own density, i.e.
//! zero-flux Neumann), the diffusion operator diagonalizes in the
//! DCT-II basis: the half-sample cosine modes `cos(πk(j+½)/n)` are
//! exactly the eigenfunctions of the heat equation on `[0, n]` with
//! insulated ends. So the solution at *any* time `t` is one forward
//! transform, a per-mode exponential decay `exp(-t·((πk/nx)² +
//! (πl/ny)²))`, and one inverse transform — O(n log n) total instead
//! of O(n·steps).
//!
//! The workspace is hermetic (no registry crates), so the transforms
//! are built here from scratch:
//!
//! - **power-of-two lengths** run through a radix-2 complex FFT of the
//!   even extension (length 2n), the standard DCT-II/III factorization;
//! - **any other length** falls back to direct O(n²) evaluation off a
//!   4n-entry cosine table — exact, just slower, and only ever used
//!   when the bin grid is not a power of two.
//!
//! [`SpectralSolver`] adds the incremental form Algorithm 1 needs: the
//! forward transform of `ρ(0)` is computed once and cached; every
//! density query re-decays the cached coefficients and inverse
//! transforms, so `k` queries cost one forward transform plus `k`
//! inverse transforms.
//!
//! All transforms run serially on the calling thread — the spectral
//! path is trivially bit-identical at any worker-thread count.

use std::f64::consts::PI;

/// Applies the separable mode decay `dst[i] = src[i] * e_line * decay_x[i]`
/// over one coefficient line in explicit 4-wide lane chunks with a scalar
/// tail. Every element is independent and the per-element expression is
/// unchanged, so the lane restructure is bit-identical to the plain loop.
fn decay_line(dst: &mut [f64], src: &[f64], decay_x: &[f64], e_line: f64) {
    const L: usize = 4;
    let n = dst.len();
    let mut j = 0;
    while j + L <= n {
        let mut lane = [0.0f64; L];
        for (t, x) in lane.iter_mut().enumerate() {
            *x = src[j + t] * e_line * decay_x[j + t];
        }
        dst[j..j + L].copy_from_slice(&lane);
        j += L;
    }
    while j < n {
        dst[j] = src[j] * e_line * decay_x[j];
        j += 1;
    }
}

/// Iterative radix-2 complex FFT plan for a fixed power-of-two size.
struct Fft {
    m: usize,
    /// `cos(-2πj/m)` for `j < m/2`.
    tw_re: Vec<f64>,
    /// `sin(-2πj/m)` for `j < m/2`.
    tw_im: Vec<f64>,
    /// Bit-reversal permutation of `0..m`.
    rev: Vec<u32>,
}

impl Fft {
    fn new(m: usize) -> Self {
        debug_assert!(m.is_power_of_two() && m >= 2);
        let half = m / 2;
        let mut tw_re = Vec::with_capacity(half);
        let mut tw_im = Vec::with_capacity(half);
        for j in 0..half {
            let a = -2.0 * PI * j as f64 / m as f64;
            tw_re.push(a.cos());
            tw_im.push(a.sin());
        }
        let bits = m.trailing_zeros();
        let rev = (0..m as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        Self {
            m,
            tw_re,
            tw_im,
            rev,
        }
    }

    /// Unscaled DFT in place. `inverse` flips the twiddle sign
    /// (`e^{+2πijk/m}`); neither direction divides by `m` — callers
    /// fold normalization into their own post-scaling.
    fn transform(&self, re: &mut [f64], im: &mut [f64], inverse: bool) {
        let m = self.m;
        debug_assert_eq!(re.len(), m);
        debug_assert_eq!(im.len(), m);
        for (i, &r) in self.rev.iter().enumerate() {
            let r = r as usize;
            if i < r {
                re.swap(i, r);
                im.swap(i, r);
            }
        }
        let mut len = 2;
        while len <= m {
            let stride = m / len;
            let half = len / 2;
            let mut start = 0;
            while start < m {
                for j in 0..half {
                    let wr = self.tw_re[j * stride];
                    let wi = if inverse {
                        -self.tw_im[j * stride]
                    } else {
                        self.tw_im[j * stride]
                    };
                    let a = start + j;
                    let b = a + half;
                    let xr = re[b] * wr - im[b] * wi;
                    let xi = re[b] * wi + im[b] * wr;
                    re[b] = re[a] - xr;
                    im[b] = im[a] - xi;
                    re[a] += xr;
                    im[a] += xi;
                }
                start += len;
            }
            len *= 2;
        }
    }
}

/// How a [`DctPlan`] evaluates its transforms.
enum Kind {
    /// Power-of-two length: even extension + 2n-point radix-2 FFT,
    /// O(n log n) per transform.
    Pow2 {
        fft: Fft,
        /// `cos(πk/(2n))` for `k < n`.
        ph_cos: Vec<f64>,
        /// `sin(πk/(2n))` for `k < n`.
        ph_sin: Vec<f64>,
    },
    /// Generic length: direct O(n²) evaluation. `cos[t] = cos(πt/(2n))`
    /// for `t < 4n` — every DCT angle reduces to an index mod 4n.
    Naive { cos: Vec<f64> },
}

/// A reusable 1-D DCT-II/DCT-III plan for a fixed length `n`.
///
/// The transforms are **unnormalized**:
///
/// - DCT-II: `X[k] = Σ_j x[j]·cos(πk(2j+1)/(2n))`
/// - DCT-III: `y[j] = c[0]/2 + Σ_{k≥1} c[k]·cos(πk(2j+1)/(2n))`
///
/// which compose to `dct3(dct2(x)) = (n/2)·x` — the inverse of `dct2`
/// is `(2/n)·dct3`.
///
/// # Examples
///
/// ```
/// use dpm_diffusion::DctPlan;
///
/// let x = [1.0, 3.0, -2.0, 0.5, 4.0, -1.0];
/// let mut plan = DctPlan::new(x.len());
/// let mut coeffs = [0.0; 6];
/// let mut back = [0.0; 6];
/// plan.dct2(&x, &mut coeffs);
/// plan.dct3(&coeffs, &mut back);
/// let scale = x.len() as f64 / 2.0;
/// for (orig, rt) in x.iter().zip(&back) {
///     assert!((orig - rt / scale).abs() < 1e-12);
/// }
/// ```
pub struct DctPlan {
    n: usize,
    kind: Kind,
    sc_re: Vec<f64>,
    sc_im: Vec<f64>,
}

impl DctPlan {
    /// Builds a plan for length-`n` transforms. Power-of-two lengths
    /// get the O(n log n) FFT path; anything else the exact O(n²)
    /// fallback.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "DCT length must be positive");
        let (kind, scratch) = if n.is_power_of_two() {
            let mut ph_cos = Vec::with_capacity(n);
            let mut ph_sin = Vec::with_capacity(n);
            for k in 0..n {
                let a = PI * k as f64 / (2.0 * n as f64);
                ph_cos.push(a.cos());
                ph_sin.push(a.sin());
            }
            (
                Kind::Pow2 {
                    fft: Fft::new(2 * n),
                    ph_cos,
                    ph_sin,
                },
                2 * n,
            )
        } else {
            let cos = (0..4 * n)
                .map(|t| (PI * t as f64 / (2.0 * n as f64)).cos())
                .collect();
            (Kind::Naive { cos }, 0)
        };
        Self {
            n,
            kind,
            sc_re: vec![0.0; scratch],
            sc_im: vec![0.0; scratch],
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`: zero-length plans are rejected at construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Unnormalized DCT-II of `input` into `output`.
    ///
    /// # Panics
    ///
    /// Panics if either slice's length differs from [`len`](Self::len).
    pub fn dct2(&mut self, input: &[f64], output: &mut [f64]) {
        let n = self.n;
        assert_eq!(input.len(), n, "dct2 input length");
        assert_eq!(output.len(), n, "dct2 output length");
        match &self.kind {
            Kind::Pow2 {
                fft,
                ph_cos,
                ph_sin,
            } => {
                // Even extension y = [x, reverse(x)] makes the 2n-point
                // DFT carry the DCT-II: Y[k] = 2·e^{iπk/(2n)}·X[k].
                for (j, &x) in input.iter().enumerate() {
                    self.sc_re[j] = x;
                    self.sc_re[2 * n - 1 - j] = x;
                }
                self.sc_im.fill(0.0);
                fft.transform(&mut self.sc_re, &mut self.sc_im, false);
                for k in 0..n {
                    output[k] = 0.5 * (self.sc_re[k] * ph_cos[k] + self.sc_im[k] * ph_sin[k]);
                }
            }
            Kind::Naive { cos } => {
                for (k, out) in output.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (j, &x) in input.iter().enumerate() {
                        acc += x * cos[(2 * j + 1) * k % (4 * n)];
                    }
                    *out = acc;
                }
            }
        }
    }

    /// DCT-II of two sequences through one complex FFT.
    ///
    /// The even extensions of `in0` and `in1` are packed as the real
    /// and imaginary halves of a single 2n-point transform and split
    /// back by conjugate symmetry — the classic two-real-sequences
    /// trick, halving the per-sequence cost on the power-of-two path.
    /// Generic lengths just run [`dct2`](Self::dct2) twice.
    ///
    /// # Panics
    ///
    /// Panics if any slice's length differs from [`len`](Self::len).
    pub fn dct2_pair(&mut self, in0: &[f64], in1: &[f64], out0: &mut [f64], out1: &mut [f64]) {
        let n = self.n;
        assert_eq!(in0.len(), n, "dct2_pair input length");
        assert_eq!(in1.len(), n, "dct2_pair input length");
        assert_eq!(out0.len(), n, "dct2_pair output length");
        assert_eq!(out1.len(), n, "dct2_pair output length");
        match &self.kind {
            Kind::Pow2 {
                fft,
                ph_cos,
                ph_sin,
            } => {
                let m = 2 * n;
                for j in 0..n {
                    self.sc_re[j] = in0[j];
                    self.sc_re[m - 1 - j] = in0[j];
                    self.sc_im[j] = in1[j];
                    self.sc_im[m - 1 - j] = in1[j];
                }
                fft.transform(&mut self.sc_re, &mut self.sc_im, false);
                for k in 0..n {
                    let mk = if k == 0 { 0 } else { m - k };
                    // Split Z into the two conjugate-symmetric spectra:
                    // Y0 = (Z[k] + conj(Z[m-k]))/2, Y1 = (Z[k] - conj(Z[m-k]))/(2i).
                    let y0_re = 0.5 * (self.sc_re[k] + self.sc_re[mk]);
                    let y0_im = 0.5 * (self.sc_im[k] - self.sc_im[mk]);
                    let y1_re = 0.5 * (self.sc_im[k] + self.sc_im[mk]);
                    let y1_im = -0.5 * (self.sc_re[k] - self.sc_re[mk]);
                    out0[k] = 0.5 * (y0_re * ph_cos[k] + y0_im * ph_sin[k]);
                    out1[k] = 0.5 * (y1_re * ph_cos[k] + y1_im * ph_sin[k]);
                }
            }
            Kind::Naive { .. } => {
                self.dct2(in0, out0);
                self.dct2(in1, out1);
            }
        }
    }

    /// DCT-III of two coefficient sequences through one complex FFT
    /// (the inverse-direction counterpart of
    /// [`dct2_pair`](Self::dct2_pair)).
    ///
    /// # Panics
    ///
    /// Panics if any slice's length differs from [`len`](Self::len).
    pub fn dct3_pair(&mut self, in0: &[f64], in1: &[f64], out0: &mut [f64], out1: &mut [f64]) {
        let n = self.n;
        assert_eq!(in0.len(), n, "dct3_pair input length");
        assert_eq!(in1.len(), n, "dct3_pair input length");
        assert_eq!(out0.len(), n, "dct3_pair output length");
        assert_eq!(out1.len(), n, "dct3_pair output length");
        match &self.kind {
            Kind::Pow2 {
                fft,
                ph_cos,
                ph_sin,
            } => {
                let m = 2 * n;
                // Z[k] = Y0[k] + i·Y1[k] where Yi is the conjugate-
                // symmetric even-extension spectrum of sequence i.
                self.sc_re[0] = in0[0];
                self.sc_im[0] = in1[0];
                for k in 1..n {
                    let a_re = in0[k] * ph_cos[k];
                    let a_im = in0[k] * ph_sin[k];
                    let b_re = in1[k] * ph_cos[k];
                    let b_im = in1[k] * ph_sin[k];
                    self.sc_re[k] = a_re - b_im;
                    self.sc_im[k] = a_im + b_re;
                    self.sc_re[m - k] = a_re + b_im;
                    self.sc_im[m - k] = b_re - a_im;
                }
                self.sc_re[n] = 0.0;
                self.sc_im[n] = 0.0;
                fft.transform(&mut self.sc_re, &mut self.sc_im, true);
                for j in 0..n {
                    out0[j] = 0.5 * self.sc_re[j];
                    out1[j] = 0.5 * self.sc_im[j];
                }
            }
            Kind::Naive { .. } => {
                self.dct3(in0, out0);
                self.dct3(in1, out1);
            }
        }
    }

    /// Unnormalized DCT-III of `input` into `output` (half-weight on
    /// the DC coefficient, so `dct3 ∘ dct2 = (n/2)·id`).
    ///
    /// # Panics
    ///
    /// Panics if either slice's length differs from [`len`](Self::len).
    pub fn dct3(&mut self, input: &[f64], output: &mut [f64]) {
        let n = self.n;
        assert_eq!(input.len(), n, "dct3 input length");
        assert_eq!(output.len(), n, "dct3 output length");
        match &self.kind {
            Kind::Pow2 {
                fft,
                ph_cos,
                ph_sin,
            } => {
                // Rebuild the conjugate-symmetric spectrum of the even
                // extension and inverse-transform it; the first n
                // outputs are 2·dct3(input).
                let m = 2 * n;
                self.sc_re[0] = input[0];
                self.sc_im[0] = 0.0;
                for k in 1..n {
                    let re = input[k] * ph_cos[k];
                    let im = input[k] * ph_sin[k];
                    self.sc_re[k] = re;
                    self.sc_im[k] = im;
                    self.sc_re[m - k] = re;
                    self.sc_im[m - k] = -im;
                }
                self.sc_re[n] = 0.0;
                self.sc_im[n] = 0.0;
                fft.transform(&mut self.sc_re, &mut self.sc_im, true);
                for (j, out) in output.iter_mut().enumerate() {
                    *out = 0.5 * self.sc_re[j];
                }
            }
            Kind::Naive { cos } => {
                for (j, out) in output.iter_mut().enumerate() {
                    let mut acc = input[0] * 0.5;
                    for (k, &c) in input.iter().enumerate().skip(1) {
                        acc += c * cos[(2 * j + 1) * k % (4 * n)];
                    }
                    *out = acc;
                }
            }
        }
    }
}

/// Closed-form diffusion solver over a 2-D density field with zero-flux
/// boundaries.
///
/// Construction takes **one forward 2-D DCT-II** of the initial field
/// and caches the coefficients. Every [`density_at`](Self::density_at)
/// query decays each mode `(k, l)` by `exp(-t·((πk/nx)² + (πl/ny)²))`
/// — the *continuous* Neumann eigenvalues, so a sampled cosine mode
/// follows the analytic heat-equation solution to machine precision —
/// and runs one inverse transform. Mode `(0, 0)` never decays: total
/// mass is conserved exactly at every queried time.
///
/// Queries always re-decay from the cached `t = 0` coefficients, never
/// from a previous query, so repeated queries accumulate no error and
/// `t` may be requested in any order.
///
/// # Examples
///
/// ```
/// use dpm_diffusion::SpectralSolver;
/// use std::f64::consts::PI;
///
/// let (nx, ny) = (8, 8);
/// let mut field = vec![0.0; nx * ny];
/// for l in 0..ny {
///     for k in 0..nx {
///         let c = (PI * 2.0 * (k as f64 + 0.5) / nx as f64).cos();
///         field[l * nx + k] = 1.0 + 0.25 * c;
///     }
/// }
/// let mut solver = SpectralSolver::new(nx, ny, &field);
/// let mut out = vec![0.0; nx * ny];
/// // t = 0 reproduces the input field.
/// solver.density_at(0.0, &mut out);
/// assert!(field.iter().zip(&out).all(|(a, b)| (a - b).abs() < 1e-12));
/// // Mass is conserved exactly at any jump distance.
/// solver.density_at(3.0, &mut out);
/// let before: f64 = field.iter().sum();
/// let after: f64 = out.iter().sum();
/// assert!((before - after).abs() < 1e-9 * before.abs().max(1.0));
/// ```
pub struct SpectralSolver {
    nx: usize,
    ny: usize,
    plan_x: DctPlan,
    plan_y: DctPlan,
    /// DCT-II coefficients of the initial field, row-major `[l·nx + k]`.
    coeffs: Vec<f64>,
    /// Continuous Neumann decay rate per x mode: `(πk/nx)²`.
    rate_x: Vec<f64>,
    /// Continuous Neumann decay rate per y mode: `(πl/ny)²`.
    rate_y: Vec<f64>,
    buf_a: Vec<f64>,
    buf_b: Vec<f64>,
    line: Vec<f64>,
    line2: Vec<f64>,
    decay_x: Vec<f64>,
    forward_transforms: u64,
    inverse_transforms: u64,
}

impl SpectralSolver {
    /// Builds a solver from the initial density field (row-major, `ny`
    /// rows of `nx` bins), running the one cached forward transform.
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero or `density.len() != nx·ny`.
    pub fn new(nx: usize, ny: usize, density: &[f64]) -> Self {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        assert_eq!(density.len(), nx * ny, "field length must be nx*ny");
        let n = nx * ny;
        let rate = |k: usize, len: usize| {
            let f = PI * k as f64 / len as f64;
            f * f
        };
        let mut solver = Self {
            nx,
            ny,
            plan_x: DctPlan::new(nx),
            plan_y: DctPlan::new(ny),
            coeffs: vec![0.0; n],
            rate_x: (0..nx).map(|k| rate(k, nx)).collect(),
            rate_y: (0..ny).map(|l| rate(l, ny)).collect(),
            buf_a: vec![0.0; n],
            buf_b: vec![0.0; n],
            line: vec![0.0; nx.max(ny)],
            line2: vec![0.0; nx.max(ny)],
            decay_x: vec![0.0; nx],
            forward_transforms: 0,
            inverse_transforms: 0,
        };
        solver.forward(density);
        solver
    }

    /// Grid width in bins.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in bins.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Forward 2-D DCT-II of `field` into `self.coeffs`. Rows and
    /// columns go through the paired transform two at a time; an odd
    /// trailing line takes the single path.
    fn forward(&mut self, field: &[f64]) {
        let (nx, ny) = (self.nx, self.ny);
        // Rows.
        let mut y = 0;
        while y + 1 < ny {
            let (o0, o1) = self.buf_a[y * nx..(y + 2) * nx].split_at_mut(nx);
            self.plan_x.dct2_pair(
                &field[y * nx..(y + 1) * nx],
                &field[(y + 1) * nx..(y + 2) * nx],
                o0,
                o1,
            );
            y += 2;
        }
        if y < ny {
            self.plan_x.dct2(
                &field[y * nx..(y + 1) * nx],
                &mut self.buf_a[y * nx..(y + 1) * nx],
            );
        }
        // Transpose to x-major so columns are contiguous.
        for y in 0..ny {
            for x in 0..nx {
                self.buf_b[x * ny + y] = self.buf_a[y * nx + x];
            }
        }
        // Columns, scattered straight into row-major coefficients.
        let mut x = 0;
        while x + 1 < nx {
            self.plan_y.dct2_pair(
                &self.buf_b[x * ny..(x + 1) * ny],
                &self.buf_b[(x + 1) * ny..(x + 2) * ny],
                &mut self.line[..ny],
                &mut self.line2[..ny],
            );
            for l in 0..ny {
                self.coeffs[l * nx + x] = self.line[l];
                self.coeffs[l * nx + x + 1] = self.line2[l];
            }
            x += 2;
        }
        if x < nx {
            let (line, buf_b) = (&mut self.line[..ny], &self.buf_b[x * ny..(x + 1) * ny]);
            self.plan_y.dct2(buf_b, line);
            for (l, &c) in line.iter().enumerate() {
                self.coeffs[l * nx + x] = c;
            }
        }
        self.forward_transforms += 1;
    }

    /// Writes the density field at diffusion time `t` into `out`
    /// (row-major, `nx·ny` bins): decays the cached coefficients and
    /// runs one inverse 2-D transform.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or non-finite, or `out.len() != nx·ny`.
    pub fn density_at(&mut self, t: f64, out: &mut [f64]) {
        assert!(t.is_finite() && t >= 0.0, "diffusion time must be >= 0");
        let (nx, ny) = (self.nx, self.ny);
        assert_eq!(out.len(), nx * ny, "output length must be nx*ny");
        // Separable decay: exp(-t·(μx+μy)) = exp(-t·μx)·exp(-t·μy).
        for (d, &r) in self.decay_x.iter_mut().zip(&self.rate_x) {
            *d = (-t * r).exp();
        }
        for l in 0..ny {
            let ey = (-t * self.rate_y[l]).exp();
            let row = &self.coeffs[l * nx..(l + 1) * nx];
            let dst = &mut self.buf_a[l * nx..(l + 1) * nx];
            decay_line(dst, row, &self.decay_x, ey);
        }
        // Transpose, inverse-transform columns (two per FFT), then rows.
        for y in 0..ny {
            for x in 0..nx {
                self.buf_b[x * ny + y] = self.buf_a[y * nx + x];
            }
        }
        let mut x = 0;
        while x + 1 < nx {
            self.plan_y.dct3_pair(
                &self.buf_b[x * ny..(x + 1) * ny],
                &self.buf_b[(x + 1) * ny..(x + 2) * ny],
                &mut self.line[..ny],
                &mut self.line2[..ny],
            );
            for l in 0..ny {
                self.buf_a[l * nx + x] = self.line[l];
                self.buf_a[l * nx + x + 1] = self.line2[l];
            }
            x += 2;
        }
        if x < nx {
            let (line, buf_b) = (&mut self.line[..ny], &self.buf_b[x * ny..(x + 1) * ny]);
            self.plan_y.dct3(buf_b, line);
            for (l, &c) in line.iter().enumerate() {
                self.buf_a[l * nx + x] = c;
            }
        }
        let norm = 4.0 / (nx as f64 * ny as f64);
        let mut y = 0;
        while y + 1 < ny {
            self.plan_x.dct3_pair(
                &self.buf_a[y * nx..(y + 1) * nx],
                &self.buf_a[(y + 1) * nx..(y + 2) * nx],
                &mut self.line[..nx],
                &mut self.line2[..nx],
            );
            for j in 0..nx {
                out[y * nx + j] = self.line[j] * norm;
                out[(y + 1) * nx + j] = self.line2[j] * norm;
            }
            y += 2;
        }
        if y < ny {
            let (line, buf_a) = (&mut self.line[..nx], &self.buf_a[y * nx..(y + 1) * nx]);
            self.plan_x.dct3(buf_a, line);
            for (j, &v) in line.iter().enumerate() {
                out[y * nx + j] = v * norm;
            }
        }
        self.inverse_transforms += 1;
    }

    /// Forward 2-D transforms run so far (1 after construction).
    pub fn forward_transforms(&self) -> u64 {
        self.forward_transforms
    }

    /// Inverse 2-D transforms run so far (one per
    /// [`density_at`](Self::density_at) query).
    pub fn inverse_transforms(&self) -> u64 {
        self.inverse_transforms
    }
}

/// Closed-form diffusion solver over a **3-D** (volumetric) density field
/// with zero-flux boundaries.
///
/// The separable extension of [`SpectralSolver`]: the Neumann heat
/// operator on a box diagonalizes in the tensor-product DCT-II basis, so
/// mode `(k, l, m)` decays by `exp(-t·((πk/nx)² + (πl/ny)² + (πm/nz)²))`.
/// The three axis transforms reuse the same 1-D [`DctPlan`] primitives as
/// the planar solver (FFT on power-of-two lengths, exact O(n²) fallback
/// otherwise). Fields are plane-major: `field[(z·ny + k)·nx + j]`,
/// matching [`DiffusionEngine::from_raw_3d`](crate::DiffusionEngine::from_raw_3d).
///
/// All transforms run serially on the calling thread — bit-identical at
/// any worker-thread count, like the planar solver.
///
/// # Examples
///
/// ```
/// use dpm_diffusion::SpectralSolver3;
///
/// let (nx, ny, nz) = (8, 4, 3);
/// let field: Vec<f64> = (0..nx * ny * nz).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
/// let mut solver = SpectralSolver3::new(nx, ny, nz, &field);
/// let mut out = vec![0.0; nx * ny * nz];
/// // t = 0 reproduces the input field.
/// solver.density_at(0.0, &mut out);
/// assert!(field.iter().zip(&out).all(|(a, b)| (a - b).abs() < 1e-9));
/// // Mass is conserved exactly at any jump distance.
/// solver.density_at(5.0, &mut out);
/// let before: f64 = field.iter().sum();
/// let after: f64 = out.iter().sum();
/// assert!((before - after).abs() < 1e-9 * before);
/// ```
pub struct SpectralSolver3 {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: DctPlan,
    plan_y: DctPlan,
    plan_z: DctPlan,
    /// DCT-II coefficients of the initial field, plane-major.
    coeffs: Vec<f64>,
    rate_x: Vec<f64>,
    rate_y: Vec<f64>,
    rate_z: Vec<f64>,
    buf: Vec<f64>,
    line_in: Vec<f64>,
    line_out: Vec<f64>,
    decay_x: Vec<f64>,
    forward_transforms: u64,
    inverse_transforms: u64,
}

impl SpectralSolver3 {
    /// Builds a solver from the initial volumetric density field
    /// (plane-major, `nz` planes of `ny` rows of `nx` bins), running the
    /// one cached forward transform.
    ///
    /// # Panics
    ///
    /// Panics if any side is zero or `density.len() != nx·ny·nz`.
    pub fn new(nx: usize, ny: usize, nz: usize, density: &[f64]) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid must be non-empty");
        assert_eq!(density.len(), nx * ny * nz, "field length must be nx*ny*nz");
        let n = nx * ny * nz;
        let rate = |k: usize, len: usize| {
            let f = PI * k as f64 / len as f64;
            f * f
        };
        let mut solver = Self {
            nx,
            ny,
            nz,
            plan_x: DctPlan::new(nx),
            plan_y: DctPlan::new(ny),
            plan_z: DctPlan::new(nz),
            coeffs: vec![0.0; n],
            rate_x: (0..nx).map(|k| rate(k, nx)).collect(),
            rate_y: (0..ny).map(|l| rate(l, ny)).collect(),
            rate_z: (0..nz).map(|m| rate(m, nz)).collect(),
            buf: vec![0.0; n],
            line_in: vec![0.0; nx.max(ny).max(nz)],
            line_out: vec![0.0; nx.max(ny).max(nz)],
            decay_x: vec![0.0; nx],
            forward_transforms: 0,
            inverse_transforms: 0,
        };
        solver.forward(density);
        solver
    }

    /// Grid width in bins.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in bins.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of tiers.
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Forward 3-D DCT-II of `field` into `self.coeffs`: contiguous
    /// x-lines first, then strided gather/transform/scatter along y and z.
    fn forward(&mut self, field: &[f64]) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        for l in 0..ny * nz {
            self.plan_x.dct2(
                &field[l * nx..(l + 1) * nx],
                &mut self.buf[l * nx..(l + 1) * nx],
            );
        }
        for z in 0..nz {
            for x in 0..nx {
                for k in 0..ny {
                    self.line_in[k] = self.buf[(z * ny + k) * nx + x];
                }
                self.plan_y
                    .dct2(&self.line_in[..ny], &mut self.line_out[..ny]);
                for k in 0..ny {
                    self.buf[(z * ny + k) * nx + x] = self.line_out[k];
                }
            }
        }
        let plane = nx * ny;
        for i in 0..plane {
            for z in 0..nz {
                self.line_in[z] = self.buf[z * plane + i];
            }
            self.plan_z
                .dct2(&self.line_in[..nz], &mut self.line_out[..nz]);
            for z in 0..nz {
                self.coeffs[z * plane + i] = self.line_out[z];
            }
        }
        self.forward_transforms += 1;
    }

    /// Writes the density field at diffusion time `t` into `out`
    /// (plane-major, `nx·ny·nz` bins): decays the cached coefficients and
    /// runs one inverse 3-D transform.
    ///
    /// # Panics
    ///
    /// Panics if `t` is negative or non-finite, or `out.len() != nx·ny·nz`.
    pub fn density_at(&mut self, t: f64, out: &mut [f64]) {
        assert!(t.is_finite() && t >= 0.0, "diffusion time must be >= 0");
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        assert_eq!(out.len(), nx * ny * nz, "output length must be nx*ny*nz");
        // Separable decay exp(-t·(μx+μy+μz)).
        for (d, &r) in self.decay_x.iter_mut().zip(&self.rate_x) {
            *d = (-t * r).exp();
        }
        for z in 0..nz {
            let ez = (-t * self.rate_z[z]).exp();
            for l in 0..ny {
                let eyz = ez * (-t * self.rate_y[l]).exp();
                let base = (z * ny + l) * nx;
                decay_line(
                    &mut self.buf[base..base + nx],
                    &self.coeffs[base..base + nx],
                    &self.decay_x,
                    eyz,
                );
            }
        }
        // Inverse: z, then y (strided), then contiguous x with the
        // normalization folded in (dct3∘dct2 = (n/2)·id per axis).
        let plane = nx * ny;
        for i in 0..plane {
            for z in 0..nz {
                self.line_in[z] = self.buf[z * plane + i];
            }
            self.plan_z
                .dct3(&self.line_in[..nz], &mut self.line_out[..nz]);
            for z in 0..nz {
                self.buf[z * plane + i] = self.line_out[z];
            }
        }
        for z in 0..nz {
            for x in 0..nx {
                for k in 0..ny {
                    self.line_in[k] = self.buf[(z * ny + k) * nx + x];
                }
                self.plan_y
                    .dct3(&self.line_in[..ny], &mut self.line_out[..ny]);
                for k in 0..ny {
                    self.buf[(z * ny + k) * nx + x] = self.line_out[k];
                }
            }
        }
        let norm = 8.0 / (nx as f64 * ny as f64 * nz as f64);
        for l in 0..ny * nz {
            self.plan_x
                .dct3(&self.buf[l * nx..(l + 1) * nx], &mut self.line_out[..nx]);
            for (j, &v) in self.line_out[..nx].iter().enumerate() {
                out[l * nx + j] = v * norm;
            }
        }
        self.inverse_transforms += 1;
    }

    /// Forward 3-D transforms run so far (1 after construction).
    pub fn forward_transforms(&self) -> u64 {
        self.forward_transforms
    }

    /// Inverse 3-D transforms run so far (one per
    /// [`density_at`](Self::density_at) query).
    pub fn inverse_transforms(&self) -> u64 {
        self.inverse_transforms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_rng::Rng;

    fn random_vec(rng: &mut Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.random_range(-2.0..2.0)).collect()
    }

    /// Textbook O(n²) DCT-II, the definition the fast paths must match.
    fn reference_dct2(x: &[f64]) -> Vec<f64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                x.iter()
                    .enumerate()
                    .map(|(j, &v)| v * (PI * k as f64 * (2 * j + 1) as f64 / (2 * n) as f64).cos())
                    .sum()
            })
            .collect()
    }

    #[test]
    fn pow2_dct2_matches_textbook_definition() {
        let mut rng = Rng::seed_from_u64(0xD0C7);
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = random_vec(&mut rng, n);
            let mut plan = DctPlan::new(n);
            let mut got = vec![0.0; n];
            plan.dct2(&x, &mut got);
            let want = reference_dct2(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "n={n}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn generic_length_dct2_matches_textbook_definition() {
        let mut rng = Rng::seed_from_u64(0xD0C8);
        for n in [3usize, 5, 6, 12, 20, 97] {
            let x = random_vec(&mut rng, n);
            let mut plan = DctPlan::new(n);
            let mut got = vec![0.0; n];
            plan.dct2(&x, &mut got);
            let want = reference_dct2(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9, "n={n}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn round_trip_is_scaled_identity_on_all_lengths() {
        let mut rng = Rng::seed_from_u64(0xF00D);
        for n in [1usize, 2, 4, 8, 32, 128, 3, 6, 10, 24, 100] {
            let x = random_vec(&mut rng, n);
            let mut plan = DctPlan::new(n);
            let mut coeffs = vec![0.0; n];
            let mut back = vec![0.0; n];
            plan.dct2(&x, &mut coeffs);
            plan.dct3(&coeffs, &mut back);
            let scale = n as f64 / 2.0;
            for (orig, rt) in x.iter().zip(&back) {
                assert!(
                    (orig - rt / scale).abs() < 1e-10,
                    "n={n}: {orig} vs {}",
                    rt / scale
                );
            }
        }
    }

    #[test]
    fn paired_transforms_match_single_transforms() {
        let mut rng = Rng::seed_from_u64(0x9A17);
        for n in [2usize, 8, 32, 6, 15] {
            let a = random_vec(&mut rng, n);
            let b = random_vec(&mut rng, n);
            let mut plan = DctPlan::new(n);
            let mut sa = vec![0.0; n];
            let mut sb = vec![0.0; n];
            let mut pa = vec![0.0; n];
            let mut pb = vec![0.0; n];

            plan.dct2(&a, &mut sa);
            plan.dct2(&b, &mut sb);
            plan.dct2_pair(&a, &b, &mut pa, &mut pb);
            for i in 0..n {
                assert!((sa[i] - pa[i]).abs() < 1e-10, "dct2 n={n} i={i}");
                assert!((sb[i] - pb[i]).abs() < 1e-10, "dct2 n={n} i={i}");
            }

            plan.dct3(&a, &mut sa);
            plan.dct3(&b, &mut sb);
            plan.dct3_pair(&a, &b, &mut pa, &mut pb);
            for i in 0..n {
                assert!((sa[i] - pa[i]).abs() < 1e-10, "dct3 n={n} i={i}");
                assert!((sb[i] - pb[i]).abs() < 1e-10, "dct3 n={n} i={i}");
            }
        }
    }

    #[test]
    fn dct2_is_linear() {
        let mut rng = Rng::seed_from_u64(0xA11E);
        for n in [8usize, 12] {
            let x = random_vec(&mut rng, n);
            let y = random_vec(&mut rng, n);
            let (a, b) = (1.75, -0.5);
            let combined: Vec<f64> = x.iter().zip(&y).map(|(&u, &v)| a * u + b * v).collect();
            let mut plan = DctPlan::new(n);
            let mut tx = vec![0.0; n];
            let mut ty = vec![0.0; n];
            let mut tc = vec![0.0; n];
            plan.dct2(&x, &mut tx);
            plan.dct2(&y, &mut ty);
            plan.dct2(&combined, &mut tc);
            for ((&u, &v), &c) in tx.iter().zip(&ty).zip(&tc) {
                assert!((a * u + b * v - c).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn closed_form_vectors_constant_and_single_mode() {
        for n in [8usize, 12] {
            let mut plan = DctPlan::new(n);
            let mut out = vec![0.0; n];

            // Constant input: all energy in the DC coefficient, n·c.
            let c = 0.7;
            plan.dct2(&vec![c; n], &mut out);
            assert!((out[0] - n as f64 * c).abs() < 1e-10, "n={n} dc={}", out[0]);
            for (k, &v) in out.iter().enumerate().skip(1) {
                assert!(v.abs() < 1e-10, "n={n} leak at k={k}: {v}");
            }

            // A single sampled cosine mode is a DCT-II basis vector:
            // dct2 concentrates it as (n/2)·δ_{k,m}.
            let m = 3;
            let x: Vec<f64> = (0..n)
                .map(|j| (PI * m as f64 * (j as f64 + 0.5) / n as f64).cos())
                .collect();
            plan.dct2(&x, &mut out);
            for (k, &v) in out.iter().enumerate() {
                let want = if k == m { n as f64 / 2.0 } else { 0.0 };
                assert!((v - want).abs() < 1e-10, "n={n} k={k}: {v} vs {want}");
            }
        }
    }

    #[test]
    fn solver_single_mode_decays_at_the_analytic_rate() {
        // On a 2-D grid, a sampled product-cosine mode must decay by
        // exactly exp(-t·((πk/nx)² + (πl/ny)²)) around its mean — the
        // closed-form heat-equation solution with insulated boundaries.
        for (nx, ny) in [(16usize, 16usize), (12, 20)] {
            let (k, l) = (2, 3);
            let amp = 0.4;
            let base = 1.0;
            let mode = |x: usize, y: usize| {
                (PI * k as f64 * (x as f64 + 0.5) / nx as f64).cos()
                    * (PI * l as f64 * (y as f64 + 0.5) / ny as f64).cos()
            };
            let field: Vec<f64> = (0..nx * ny)
                .map(|i| base + amp * mode(i % nx, i / nx))
                .collect();
            let mut solver = SpectralSolver::new(nx, ny, &field);
            let mut out = vec![0.0; nx * ny];
            let t = 1.7;
            solver.density_at(t, &mut out);
            let rate = (PI * k as f64 / nx as f64).powi(2) + (PI * l as f64 / ny as f64).powi(2);
            let decay = (-t * rate).exp();
            for (i, &v) in out.iter().enumerate() {
                let want = base + amp * decay * mode(i % nx, i / nx);
                assert!((v - want).abs() < 1e-12, "{nx}x{ny} bin {i}: {v} vs {want}");
            }
        }
    }

    #[test]
    fn solver_conserves_mass_and_flattens_random_fields() {
        let mut rng = Rng::seed_from_u64(0xBEEF);
        let (nx, ny) = (24, 16);
        let field: Vec<f64> = (0..nx * ny).map(|_| rng.random_range(0.0..3.0)).collect();
        let mass: f64 = field.iter().sum();
        let mean = mass / (nx * ny) as f64;
        let mut solver = SpectralSolver::new(nx, ny, &field);
        let mut out = vec![0.0; nx * ny];
        let mut last_spread = f64::INFINITY;
        for t in [0.0, 0.5, 2.0, 10.0, 2000.0] {
            solver.density_at(t, &mut out);
            let m: f64 = out.iter().sum();
            assert!((m - mass).abs() < 1e-9 * mass, "t={t}: mass {m} vs {mass}");
            let spread = out.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
            assert!(
                spread <= last_spread + 1e-12,
                "t={t}: spread grew {last_spread} -> {spread}"
            );
            last_spread = spread;
        }
        // Far in the future the field is the uniform mean.
        assert!(last_spread < 1e-9, "residual spread {last_spread}");
        assert_eq!(solver.forward_transforms(), 1);
        assert_eq!(solver.inverse_transforms(), 5);
    }

    #[test]
    fn queries_are_order_independent() {
        let mut rng = Rng::seed_from_u64(0xCAFE);
        let (nx, ny) = (8, 8);
        let field: Vec<f64> = (0..nx * ny).map(|_| rng.random_range(0.0..2.0)).collect();
        let mut solver = SpectralSolver::new(nx, ny, &field);
        let mut early = vec![0.0; nx * ny];
        let mut late = vec![0.0; nx * ny];
        let mut early_again = vec![0.0; nx * ny];
        solver.density_at(0.25, &mut early);
        solver.density_at(5.0, &mut late);
        solver.density_at(0.25, &mut early_again);
        assert_eq!(early, early_again, "re-decay must not accumulate state");
    }

    #[test]
    fn volumetric_solver_with_one_tier_matches_planar_solver() {
        let mut rng = Rng::seed_from_u64(0x3D01);
        let (nx, ny) = (16, 12);
        let field: Vec<f64> = (0..nx * ny).map(|_| rng.random_range(0.0..2.0)).collect();
        let mut planar = SpectralSolver::new(nx, ny, &field);
        let mut volume = SpectralSolver3::new(nx, ny, 1, &field);
        let mut out2 = vec![0.0; nx * ny];
        let mut out3 = vec![0.0; nx * ny];
        for t in [0.0, 0.4, 3.0] {
            planar.density_at(t, &mut out2);
            volume.density_at(t, &mut out3);
            for i in 0..nx * ny {
                assert!(
                    (out2[i] - out3[i]).abs() < 1e-9,
                    "t={t} bin {i}: {} vs {}",
                    out2[i],
                    out3[i]
                );
            }
        }
    }

    #[test]
    fn volumetric_single_mode_decays_at_the_analytic_rate() {
        for (nx, ny, nz) in [(8usize, 8usize, 4usize), (6, 10, 3)] {
            let (k, l, m) = (2, 1, 1);
            let amp = 0.3;
            let base = 1.0;
            let mode = |x: usize, y: usize, z: usize| {
                (PI * k as f64 * (x as f64 + 0.5) / nx as f64).cos()
                    * (PI * l as f64 * (y as f64 + 0.5) / ny as f64).cos()
                    * (PI * m as f64 * (z as f64 + 0.5) / nz as f64).cos()
            };
            let field: Vec<f64> = (0..nx * ny * nz)
                .map(|i| {
                    let (x, y, z) = (i % nx, (i / nx) % ny, i / (nx * ny));
                    base + amp * mode(x, y, z)
                })
                .collect();
            let mut solver = SpectralSolver3::new(nx, ny, nz, &field);
            let mut out = vec![0.0; nx * ny * nz];
            let t = 0.9;
            solver.density_at(t, &mut out);
            let rate = (PI * k as f64 / nx as f64).powi(2)
                + (PI * l as f64 / ny as f64).powi(2)
                + (PI * m as f64 / nz as f64).powi(2);
            let decay = (-t * rate).exp();
            for (i, &v) in out.iter().enumerate() {
                let (x, y, z) = (i % nx, (i / nx) % ny, i / (nx * ny));
                let want = base + amp * decay * mode(x, y, z);
                assert!(
                    (v - want).abs() < 1e-11,
                    "{nx}x{ny}x{nz} bin {i}: {v} vs {want}"
                );
            }
        }
    }

    #[test]
    fn volumetric_solver_conserves_mass_and_flattens() {
        let mut rng = Rng::seed_from_u64(0x3D02);
        let (nx, ny, nz) = (12, 8, 5);
        let field: Vec<f64> = (0..nx * ny * nz)
            .map(|_| rng.random_range(0.0..3.0))
            .collect();
        let mass: f64 = field.iter().sum();
        let mean = mass / (nx * ny * nz) as f64;
        let mut solver = SpectralSolver3::new(nx, ny, nz, &field);
        let mut out = vec![0.0; nx * ny * nz];
        let mut last_spread = f64::INFINITY;
        for t in [0.0, 0.5, 2.0, 10.0, 2000.0] {
            solver.density_at(t, &mut out);
            let m: f64 = out.iter().sum();
            assert!((m - mass).abs() < 1e-9 * mass, "t={t}: mass {m} vs {mass}");
            let spread = out.iter().map(|v| (v - mean).abs()).fold(0.0, f64::max);
            assert!(
                spread <= last_spread + 1e-12,
                "t={t}: spread grew {last_spread} -> {spread}"
            );
            last_spread = spread;
        }
        assert!(last_spread < 1e-9, "residual spread {last_spread}");
        assert_eq!(solver.forward_transforms(), 1);
        assert_eq!(solver.inverse_transforms(), 5);
    }
}
