#![warn(missing_docs)]

//! Diffusion-based placement migration.
//!
//! This crate implements the primary contribution of *"Diffusion-Based
//! Placement Migration with Application on Legalization"* (Ren, Pan,
//! Alpert, Villarrubia, Nam — DAC 2005 / IEEE TCAD 2007):
//!
//! - the **continuous diffusion model** of placement density (Eq. 1) and
//!   its discretization by Forward-Time-Centered-Space (Eq. 4), including
//!   the mirror boundary conditions around chip edges and fixed macros
//!   (Section V-B) — see [`DiffusionEngine`];
//! - the **velocity field** driving cell motion (Eq. 5) and the bilinear
//!   **velocity interpolation** that keeps side-by-side cells moving
//!   coherently (Eq. 6) — see [`DiffusionEngine::velocity_at`];
//! - **density-map manipulation** (Eq. 8) that prevents over-spreading by
//!   lifting under-full bins so the equilibrium density equals the target
//!   — see [`manipulate_density`];
//! - **global diffusion legalization** (Algorithm 1) —
//!   [`GlobalDiffusion`];
//! - **local diffusion windows** (Algorithm 2) — [`identify_windows`];
//! - the **robust local diffusion** flow with dynamic density update
//!   (Algorithm 3) — [`LocalDiffusion`];
//! - **die sharding** for horizontal scale: bin-aligned rectangular
//!   shard regions with read-only density halos and an exclusive-owner
//!   stitcher — [`ShardPartition`], [`stitch_positions`] (the routing
//!   loop lives in `dpm-serve`);
//! - a **closed-form spectral solver**: the diffusion equation
//!   diagonalizes in the DCT basis under the engine's zero-flux
//!   boundaries, so `ρ(t)` for any `t` is one cached forward transform
//!   plus one decayed inverse transform — [`SpectralSolver`], selected
//!   per run with [`SolverKind::Spectral`] on [`DiffusionConfig`]
//!   (walled/frozen grids automatically keep the FTCS stepper).
//!
//! All four hot kernels — FTCS step, velocity field, cell advection and
//! the density splat — run on the deterministic worker pool of
//! [`dpm_par`]: work is decomposed into fixed chunks independent of the
//! thread count, so results are bit-identical at any parallelism. Set the
//! thread count with [`DiffusionConfig::with_threads`]; per-kernel wall
//! time is reported through [`KernelTimers`] on each run's
//! [`Telemetry`].
//!
//! Runs can be watched live through a [`DiffusionObserver`] attached
//! with `run_observed` on either runner: per-step, per-round and
//! per-kernel callbacks that see only post-step state and therefore
//! never perturb the dynamics (observed runs are bit-identical to
//! plain runs). Trajectory tracing and `dpm-serve`'s streaming
//! progress frames are both observers.
//!
//! The engine works in *bin coordinates*: the die is divided into square
//! bins and scaled so each bin is 1×1, exactly as the paper assumes. The
//! orchestrators ([`GlobalDiffusion`], [`LocalDiffusion`]) handle the
//! world↔bin transforms and push cells of a real
//! [`Placement`](dpm_place::Placement) through the velocity field.
//!
//! # Quickstart
//!
//! ```
//! use dpm_geom::Point;
//! use dpm_netlist::{NetlistBuilder, CellKind};
//! use dpm_place::{Die, Placement};
//! use dpm_diffusion::{DiffusionConfig, GlobalDiffusion};
//!
//! // Ten cells piled into one spot of a small die.
//! let mut b = NetlistBuilder::new();
//! for i in 0..10 {
//!     b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
//! }
//! let nl = b.build()?;
//! let die = Die::new(120.0, 120.0, 12.0);
//! let mut placement = Placement::new(nl.num_cells());
//! for c in nl.cell_ids() {
//!     placement.set(c, Point::new(48.0, 48.0));
//! }
//!
//! let cfg = DiffusionConfig::default().with_bin_size(24.0);
//! let result = GlobalDiffusion::new(cfg).run(&nl, &die, &mut placement);
//! assert!(result.converged);
//! # Ok::<(), dpm_netlist::BuildNetlistError>(())
//! ```

mod advect;
mod config;
mod dims;
mod engine;
mod field;
mod global;
mod local;
mod manip;
mod observe;
mod shard;
mod spectral;
mod telemetry;
mod trace;
mod velocity;
mod vol;
mod window;

pub use advect::AdvectOutcome;
pub use config::{ConfigError, DiffusionConfig, FieldPrecision, LaneMode, SolverKind};
pub use dims::Dims;
pub use engine::DiffusionEngine;
pub use field::FieldMigration;
pub use global::{DiffusionResult, GlobalDiffusion};
pub use local::LocalDiffusion;
pub use manip::manipulate_density;
pub use observe::{
    DiffusionObserver, KernelEvent, KernelKind, NoopObserver, RoundEvent, SpanObserver, StepEvent,
    KERNEL_SPAN_CAP,
};
pub use shard::{
    stitch_positions, BinRect, ShardPartition, ShardProblem, ShardRegion, ZSlab, ZSlabPartition,
};
pub use spectral::{DctPlan, SpectralSolver, SpectralSolver3};
pub use telemetry::{KernelTimers, KernelTiming, StepRecord, Telemetry};
pub use trace::{trace_global_diffusion, TracedRun, Trajectory};
pub use velocity::interpolate_velocity;
pub use vol::{
    splat_volume, volume_wall_mask, VolJobSpec, VolPlacement, VolResult, VolumetricDiffusion,
};
pub use window::{identify_windows, identify_windows_into};
