//! Volumetric (3D-IC) diffusion migration.
//!
//! A volumetric placement stacks `nz` tiers of the same die: cells carry
//! a depth coordinate in *tier units* alongside their planar position,
//! and the density field lives on the engine's `nx × ny × nz` plane-major
//! grid ([`Dims::D3`](crate::Dims)). This module supplies the runner half
//! of that story, mirroring the planar
//! [`GlobalDiffusion`](crate::GlobalDiffusion) flow
//! (Algorithm 1) axis-for-axis:
//!
//! - [`VolPlacement`] pairs a planar [`Placement`] with a per-cell depth;
//! - [`splat_volume`] measures the volumetric density: movable cells
//!   splat their area overlap into their own tier's plane, while fixed
//!   macros raise **through-stack walls** — a macro footprint blocks its
//!   bins in *every* tier, the 3D-IC analogue of a TSV keep-out column;
//! - [`VolumetricDiffusion`] runs the migration loop — velocity, serial
//!   3D advection with trilinear interpolation, FTCS step — under either
//!   solver ([`SolverKind::Spectral`] jumps through
//!   [`SpectralSolver3`](crate::SpectralSolver3) when the stack has no
//!   walls);
//! - [`VolJobSpec`] is the *field-continuation* contract the z-slab
//!   router (`dpm-serve`) speaks: a sub-job receives a pre-evolved raw
//!   density region plus its tier offset, runs an exact number of steps,
//!   and returns the evolved field for stitching. The density is
//!   splatted and manipulated **once** globally and then evolves as a
//!   pure PDE, so slab-sharded rounds reproduce a direct run
//!   bit-for-bit.
//!
//! Advection moves owned cells in **global** tier coordinates (the slab
//! offset is subtracted only to sample the local field), so a cell may
//! drift across a slab boundary mid-round; the router re-derives
//! ownership from the fresh depths every round.

use crate::advect::AdvectOutcome;
use crate::spectral::SpectralSolver3;
use crate::{
    manipulate_density, DiffusionConfig, DiffusionEngine, DiffusionObserver, FieldPrecision,
    KernelEvent, KernelKind, NoopObserver, SolverKind, StepRecord, Telemetry,
};
use dpm_geom::{clamp, Point, Point3};
use dpm_netlist::{CellId, CellKind, Netlist};
use dpm_place::{BinGrid, BinIdx, DensityMap, Die, Placement};
use std::time::Instant;

/// A placement with depth: planar positions plus one tier-unit z
/// coordinate per cell (the cell's center depth; tier `t` spans
/// `[t, t+1)`, so a cell resting in tier `t` sits at `t + 0.5`).
#[derive(Debug, Clone, PartialEq)]
pub struct VolPlacement {
    /// Planar (x, y) positions, world coordinates.
    pub xy: Placement,
    /// Per-cell center depth in tier units, indexed by cell id.
    pub z: Vec<f64>,
}

impl VolPlacement {
    /// A placement for `num_cells` cells, all at the origin of tier 0
    /// (depth 0.5).
    pub fn new(num_cells: usize) -> Self {
        Self {
            xy: Placement::new(num_cells),
            z: vec![0.5; num_cells],
        }
    }

    /// Number of cells tracked.
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.z.len()
    }

    /// Sets a cell's planar position and depth in one call.
    #[inline]
    pub fn set(&mut self, id: CellId, pos: Point, z: f64) {
        self.xy.set(id, pos);
        self.z[id.index()] = z;
    }

    /// The tier containing a cell's center, clamped to `[0, nz)` —
    /// the same rule [`ZSlabPartition::owner_of_depth`] applies.
    ///
    /// [`ZSlabPartition::owner_of_depth`]: crate::ZSlabPartition::owner_of_depth
    #[inline]
    pub fn tier(&self, id: CellId, nz: usize) -> usize {
        tier_of(self.z[id.index()], nz)
    }
}

/// The tier containing depth `z`, clamped to `[0, nz)`.
#[inline]
fn tier_of(z: f64, nz: usize) -> usize {
    (z.floor().max(0.0) as usize).min(nz - 1)
}

/// Raises the through-stack macro walls into `density`/`wall`: bins
/// whose planar macro coverage reaches
/// [`DensityMap::FIXED_COVER_THRESHOLD`] are pinned at density 1 and
/// marked wall in **every** tier; partial covers contribute area to
/// every tier. Planar rules are identical to
/// [`DensityMap::recompute`]'s macro pass.
fn splat_macros(
    netlist: &Netlist,
    xy: &Placement,
    grid: &BinGrid,
    nz: usize,
    density: &mut [f64],
    wall: &mut [bool],
) {
    let nxy = grid.len();
    let bin_area = grid.bin_area();
    for cell in netlist.macro_ids() {
        let r = xy.cell_rect(netlist, cell);
        let Some((lo, hi)) = grid.bins_overlapping(&r) else {
            continue;
        };
        for k in lo.k..=hi.k {
            for j in lo.j..=hi.j {
                let idx = BinIdx::new(j, k);
                let f = grid.flat(idx);
                let cover = grid.bin_rect(idx).overlap_area(&r) / bin_area;
                if cover >= DensityMap::FIXED_COVER_THRESHOLD {
                    for z in 0..nz {
                        wall[z * nxy + f] = true;
                        density[z * nxy + f] = 1.0;
                    }
                } else {
                    for z in 0..nz {
                        density[z * nxy + f] += cover;
                    }
                }
            }
        }
    }
}

/// Measures the volumetric density of a placement over `nz` tiers of
/// `grid`: returns plane-major `(density, wall)` buffers of length
/// `grid.len() · nz`.
///
/// Fixed macros raise through-stack walls (see module docs); movable
/// cells add their planar area overlap to the plane of the tier
/// containing their center. Pads occupy no area. The splat is serial and
/// accumulates in netlist order, so it is deterministic at any thread
/// count by construction.
pub fn splat_volume(
    netlist: &Netlist,
    placement: &VolPlacement,
    grid: &BinGrid,
    nz: usize,
) -> (Vec<f64>, Vec<bool>) {
    let nxy = grid.len();
    let mut density = vec![0.0; nxy * nz];
    let mut wall = vec![false; nxy * nz];
    splat_macros(netlist, &placement.xy, grid, nz, &mut density, &mut wall);
    let bin_area = grid.bin_area();
    for c in netlist.cell_ids() {
        if netlist.cell(c).kind != CellKind::Movable {
            continue;
        }
        let r = placement.xy.cell_rect(netlist, c);
        let Some((lo, hi)) = grid.bins_overlapping(&r) else {
            continue;
        };
        let plane = placement.tier(c, nz) * nxy;
        for k in lo.k..=hi.k {
            for j in lo.j..=hi.j {
                let idx = BinIdx::new(j, k);
                // Area stacked on a macro bin is counted, exactly like
                // the planar splat, so overflow metrics see it.
                density[plane + grid.flat(idx)] += grid.bin_rect(idx).overlap_area(&r) / bin_area;
            }
        }
    }
    (density, wall)
}

/// The through-stack wall mask alone (no density): what a raw-field
/// sub-job needs, since its density arrives pre-evolved but walls must
/// still be rebuilt from the macros it was shipped.
pub fn volume_wall_mask(netlist: &Netlist, xy: &Placement, grid: &BinGrid, nz: usize) -> Vec<bool> {
    let mut density = vec![0.0; grid.len() * nz];
    let mut wall = vec![false; grid.len() * nz];
    splat_macros(netlist, xy, grid, nz, &mut density, &mut wall);
    wall
}

/// How a volumetric run sources its density field and when it stops —
/// the contract between the z-slab router and a backend.
///
/// The default ([`VolJobSpec::full`]) is a self-contained run: splat the
/// placement, manipulate, iterate to convergence. The router instead
/// ships each slab a [`field`](Self::field) region it splatted (and
/// manipulated) globally, plus the slab's tier offset, and asks for an
/// exact number of steps per round.
#[derive(Debug, Clone, PartialEq)]
pub struct VolJobSpec {
    /// Tiers in *this* job's region (the engine's `nz`).
    pub nz: usize,
    /// First global tier of the region: local tier `t` is global
    /// `z0 + t`. Zero for unsharded runs.
    pub z0: usize,
    /// Full stack height, for the global depth clamp — a cell may
    /// advect beyond its slab, but never off the stack.
    pub global_nz: usize,
    /// Pre-evolved plane-major density region (`grid.len() · nz`
    /// values). When present the splat **and** manipulation are skipped
    /// — the field already went through both — but through-stack walls
    /// are still rebuilt from the job's macros.
    pub field: Option<Vec<f64>>,
    /// Run exactly this many FTCS steps and return, skipping every
    /// convergence check (the router owns convergence); `None` iterates
    /// to convergence like the planar runner.
    pub exact_steps: Option<usize>,
}

impl VolJobSpec {
    /// A self-contained full-stack job: splat, manipulate, iterate to
    /// convergence over `nz` tiers.
    pub fn full(nz: usize) -> Self {
        Self {
            nz,
            z0: 0,
            global_nz: nz,
            field: None,
            exact_steps: None,
        }
    }
}

/// Outcome of a volumetric diffusion run.
#[derive(Debug, Clone)]
pub struct VolResult {
    /// Diffusion steps executed (spectral mode: advect/re-jump
    /// iterations, as in the planar runner).
    pub steps: usize,
    /// `true` if the density target was reached. Always `false` under
    /// [`VolJobSpec::exact_steps`] — the router owns convergence there.
    pub converged: bool,
    /// `true` if a cancellation hook cut the run short.
    pub cancelled: bool,
    /// Per-step telemetry ([`StepRecord::max_density`] is the monotone
    /// max-density trace of the maximum principle).
    pub telemetry: Telemetry,
    /// The final plane-major density field of the job's region — the
    /// router stitches slab cores out of these.
    pub field: Vec<f64>,
}

/// Volumetric global diffusion: the planar Algorithm 1 with a tier axis.
///
/// The loop is the planar one, per axis: compute the velocity field,
/// advect every movable cell trilinearly (serial, netlist order —
/// deterministic at any thread count), step the density by FTCS (the
/// `Δt·ndim ≤ 1` stability bound holds for the default `Δt = 0.2`), and
/// stop when the maximum live density reaches `d_max + Δ`. Under
/// [`SolverKind::Spectral`] a wall-free stack jumps through
/// [`SpectralSolver3`](crate::SpectralSolver3) with the same
/// geometrically-growing stride schedule as the planar runner.
///
/// # Examples
///
/// ```
/// use dpm_geom::Point;
/// use dpm_netlist::{NetlistBuilder, CellKind};
/// use dpm_place::Die;
/// use dpm_diffusion::{DiffusionConfig, VolPlacement, VolumetricDiffusion};
///
/// // 24 cells piled into one bin of the middle tier of a 3-tier stack.
/// let mut b = NetlistBuilder::new();
/// for i in 0..24 {
///     b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
/// }
/// let nl = b.build()?;
/// let die = Die::new(96.0, 96.0, 12.0);
/// let mut vp = VolPlacement::new(nl.num_cells());
/// for (i, c) in nl.cell_ids().enumerate() {
///     let dx = (i % 4) as f64 * 2.5;
///     let dy = (i / 4) as f64 * 2.0;
///     vp.set(c, Point::new(36.0 + dx, 36.0 + dy), 1.5);
/// }
/// let cfg = DiffusionConfig::default().with_bin_size(24.0);
/// let result = VolumetricDiffusion::new(cfg, 3).run(&nl, &die, &mut vp);
/// assert!(result.converged);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VolumetricDiffusion {
    cfg: DiffusionConfig,
    nz: usize,
}

impl VolumetricDiffusion {
    /// A volumetric runner over an `nz`-tier stack.
    ///
    /// # Panics
    ///
    /// Panics if `nz` is zero.
    pub fn new(cfg: DiffusionConfig, nz: usize) -> Self {
        assert!(nz > 0, "a volumetric stack needs at least one tier");
        Self { cfg, nz }
    }

    /// The configuration this runner uses.
    pub fn config(&self) -> &DiffusionConfig {
        &self.cfg
    }

    /// Number of tiers in the stack.
    pub fn layers(&self) -> usize {
        self.nz
    }

    /// Runs volumetric diffusion over the full stack, mutating
    /// `placement` in place.
    pub fn run(&self, netlist: &Netlist, die: &Die, placement: &mut VolPlacement) -> VolResult {
        self.run_job(&VolJobSpec::full(self.nz), netlist, die, placement, &|| {
            false
        })
    }

    /// Like [`run`](Self::run) with a cancellation hook, polled between
    /// steps exactly like
    /// [`GlobalDiffusion::run_with_cancel`](crate::GlobalDiffusion::run_with_cancel).
    pub fn run_with_cancel(
        &self,
        netlist: &Netlist,
        die: &Die,
        placement: &mut VolPlacement,
        should_stop: &dyn Fn() -> bool,
    ) -> VolResult {
        self.run_job(
            &VolJobSpec::full(self.nz),
            netlist,
            die,
            placement,
            should_stop,
        )
    }

    /// Runs one volumetric job — the full entry point the z-slab router
    /// uses. `job.nz` overrides the runner's tier count (a slab region
    /// is shorter than the stack); positions in `placement` are global
    /// and only the job's cells should be present in `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if a supplied [`VolJobSpec::field`] does not match the
    /// region size, or `placement` does not cover the netlist.
    pub fn run_job(
        &self,
        job: &VolJobSpec,
        netlist: &Netlist,
        die: &Die,
        placement: &mut VolPlacement,
        should_stop: &dyn Fn() -> bool,
    ) -> VolResult {
        self.run_job_observed(job, netlist, die, placement, should_stop, &mut NoopObserver)
    }

    /// Like [`run_job`](Self::run_job) with an attached
    /// [`DiffusionObserver`]: each timed kernel invocation additionally
    /// fires [`DiffusionObserver::on_kernel`]. Observers are read-only
    /// witnesses, so the result is bit-identical with or without one.
    pub fn run_job_observed(
        &self,
        job: &VolJobSpec,
        netlist: &Netlist,
        die: &Die,
        placement: &mut VolPlacement,
        should_stop: &dyn Fn() -> bool,
        observer: &mut dyn DiffusionObserver,
    ) -> VolResult {
        let kernel_event = |kernel: KernelKind, elapsed: std::time::Duration| KernelEvent {
            kernel,
            elapsed,
            threads: self.cfg.threads.max(1),
        };
        assert_eq!(
            placement.z.len(),
            netlist.num_cells(),
            "volumetric placement does not cover the netlist"
        );
        let grid = BinGrid::new(die.outline(), self.cfg.bin_size);
        let splat_start = Instant::now();
        let (density, wall) = match &job.field {
            Some(f) => {
                assert_eq!(
                    f.len(),
                    grid.len() * job.nz,
                    "raw field does not match the job region"
                );
                // Shift to region-local depths only for the splat of the
                // wall mask — macros are planar so only nz matters.
                (
                    f.clone(),
                    volume_wall_mask(netlist, &placement.xy, &grid, job.nz),
                )
            }
            None => {
                // Depths are global; splat against a region-local view.
                let local = VolPlacement {
                    xy: placement.xy.clone(),
                    z: placement.z.iter().map(|&z| z - job.z0 as f64).collect(),
                };
                splat_volume(netlist, &local, &grid, job.nz)
            }
        };
        let mut engine =
            DiffusionEngine::from_raw_3d(grid.nx(), grid.ny(), job.nz, density, Some(wall));
        engine.set_conservative_boundaries(!self.cfg.paper_boundaries);
        engine.set_threads(self.cfg.threads);
        engine.set_lanes(self.cfg.lanes);
        engine.set_precision(self.cfg.precision);
        let splat_elapsed = splat_start.elapsed();
        engine.kernel_timers_mut().splat.record(splat_elapsed, 1);
        observer.on_kernel(&kernel_event(KernelKind::Splat, splat_elapsed));

        if self.cfg.manipulate && job.field.is_none() {
            let mut d = engine.densities().to_vec();
            let wall = engine.wall_mask().to_vec();
            manipulate_density(&mut d, Some(&wall), self.cfg.d_max);
            engine.load_densities(&d);
        }

        let mut telemetry = Telemetry::new();
        let mut steps = 0;
        let mut converged = job.exact_steps.is_none()
            && engine.max_live_density() <= self.cfg.d_max + self.cfg.delta;
        let mut cancelled = false;
        let step_cap = job.exact_steps.unwrap_or(self.cfg.max_steps);

        let use_spectral = job.exact_steps.is_none()
            && self.cfg.solver == SolverKind::Spectral
            && self.cfg.precision == FieldPrecision::F64
            && !self.cfg.paper_boundaries
            && !engine.wall_mask().iter().any(|&w| w);

        if use_spectral {
            let tau = self.cfg.dt * self.cfg.diffusivity;
            let mut solver =
                SpectralSolver3::new(engine.nx(), engine.ny(), engine.nz(), engine.densities());
            let mut field = vec![0.0; engine.densities().len()];
            let mut elapsed_budget = 0usize;
            while !converged && elapsed_budget < self.cfg.max_steps {
                if should_stop() {
                    cancelled = true;
                    break;
                }
                let stride = (1usize << steps.min(20)).min(self.cfg.max_steps - elapsed_budget);
                let velocity_start = Instant::now();
                engine.compute_velocities();
                observer.on_kernel(&kernel_event(
                    KernelKind::Velocity,
                    velocity_start.elapsed(),
                ));
                let advect_start = Instant::now();
                let mut strided = self.cfg.clone();
                strided.dt = self.cfg.dt * stride as f64;
                let advect = advect_cells3(
                    &engine,
                    &grid,
                    netlist,
                    placement,
                    &strided,
                    job.z0,
                    job.global_nz,
                );
                let advect_elapsed = advect_start.elapsed();
                engine.kernel_timers_mut().advect.record(advect_elapsed, 1);
                observer.on_kernel(&kernel_event(KernelKind::Advect, advect_elapsed));
                let jump_start = Instant::now();
                elapsed_budget += stride;
                solver.density_at(elapsed_budget as f64 * tau * 0.5, &mut field);
                engine.load_densities(&field);
                let jump_elapsed = jump_start.elapsed();
                engine.kernel_timers_mut().ftcs.record(jump_elapsed, 1);
                observer.on_kernel(&kernel_event(KernelKind::Ftcs, jump_elapsed));
                steps += 1;
                let max_density = engine.max_live_density();
                telemetry.push(StepRecord {
                    step: steps - 1,
                    movement: advect.total_movement,
                    computed_overflow: engine.total_overflow(self.cfg.d_max),
                    max_density,
                    measured_overflow: None,
                });
                converged = max_density <= self.cfg.d_max + self.cfg.delta;
            }
        } else {
            while !converged && steps < step_cap {
                if should_stop() {
                    cancelled = true;
                    break;
                }
                let velocity_start = Instant::now();
                engine.compute_velocities();
                observer.on_kernel(&kernel_event(
                    KernelKind::Velocity,
                    velocity_start.elapsed(),
                ));
                let advect_start = Instant::now();
                let advect = advect_cells3(
                    &engine,
                    &grid,
                    netlist,
                    placement,
                    &self.cfg,
                    job.z0,
                    job.global_nz,
                );
                let advect_elapsed = advect_start.elapsed();
                engine.kernel_timers_mut().advect.record(advect_elapsed, 1);
                observer.on_kernel(&kernel_event(KernelKind::Advect, advect_elapsed));
                let ftcs_start = Instant::now();
                engine.step_density(self.cfg.dt * self.cfg.diffusivity);
                observer.on_kernel(&kernel_event(KernelKind::Ftcs, ftcs_start.elapsed()));
                steps += 1;
                let max_density = engine.max_live_density();
                telemetry.push(StepRecord {
                    step: steps - 1,
                    movement: advect.total_movement,
                    computed_overflow: engine.total_overflow(self.cfg.d_max),
                    max_density,
                    measured_overflow: None,
                });
                if job.exact_steps.is_none() {
                    converged = max_density <= self.cfg.d_max + self.cfg.delta;
                }
            }
        }

        telemetry.set_kernels(*engine.kernel_timers());
        VolResult {
            steps,
            converged,
            cancelled,
            telemetry,
            field: engine.densities().to_vec(),
        }
    }
}

/// Moves every movable cell one step along the volumetric velocity
/// field — the tier-axis extension of the planar advection (Eq. 7),
/// rule-for-rule:
///
/// 1. cells whose center bin is a wall do not move;
/// 2. the displacement is clamped per-axis to
///    [`DiffusionConfig::max_step_displacement`];
/// 3. x/y clamp the cell outline into the region, z clamps the center
///    to `[0.5, global_nz − 0.5]` (cells are one tier deep) — a cell
///    may leave its slab, never the stack;
/// 4. a move into a wall is projected axis-wise, x first, then y, then
///    z (walls are through-stack, so the z projection succeeds whenever
///    the cell's own column is clear).
///
/// The loop is serial in netlist order: each step depends only on the
/// cell's own position and the fixed field, so results are
/// deterministic at any thread count by construction.
fn advect_cells3(
    engine: &DiffusionEngine,
    grid: &BinGrid,
    netlist: &Netlist,
    placement: &mut VolPlacement,
    cfg: &DiffusionConfig,
    z0: usize,
    global_nz: usize,
) -> AdvectOutcome {
    let nx = engine.nx() as f64;
    let ny = engine.ny() as f64;
    let gz = global_nz as f64;
    let mut outcome = AdvectOutcome::default();
    for cell_id in netlist.movable_cell_ids() {
        let cell = netlist.cell(cell_id);
        let old_pos = placement.xy.get(cell_id);
        let old_z = placement.z[cell_id.index()];
        let center = Point::new(old_pos.x + cell.width / 2.0, old_pos.y + cell.height / 2.0);
        let c = grid.to_bin_coords(center);
        let zl = old_z - z0 as f64;
        let (j, k, t) = bin3_of(c.x, c.y, zl, engine);
        if engine.is_wall3(j, k, t) {
            continue;
        }
        let v = if cfg.interpolate {
            engine.velocity_at3(Point3::new(c.x, c.y, zl))
        } else {
            engine.bin_velocity3(j, k, t)
        };
        let disp = (v * cfg.dt).clamped_linf(cfg.max_step_displacement);
        if disp.linf_length() == 0.0 {
            continue;
        }
        let half_w = cell.width / (2.0 * grid.bin_width());
        let half_h = cell.height / (2.0 * grid.bin_height());
        let lim = |v: f64, half: f64, n: f64| {
            if 2.0 * half >= n {
                n / 2.0 // cell spans the whole axis: pin to the middle
            } else {
                clamp(v, half, n - half)
            }
        };
        let mut tx = lim(c.x + disp.x, half_w, nx);
        let mut ty = lim(c.y + disp.y, half_h, ny);
        // z stays global; clamp against the full stack.
        let mut tz = lim(old_z + disp.z, 0.5, gz);
        let (tj, tk, tt) = bin3_of(tx, ty, tz - z0 as f64, engine);
        if engine.is_wall3(tj, tk, tt) {
            let (xj, xk, xt) = bin3_of(tx, c.y, zl, engine);
            let (yj, yk, yt) = bin3_of(c.x, ty, zl, engine);
            let (zj, zk, zt) = bin3_of(c.x, c.y, tz - z0 as f64, engine);
            if !engine.is_wall3(xj, xk, xt) {
                ty = c.y;
                tz = old_z;
            } else if !engine.is_wall3(yj, yk, yt) {
                tx = c.x;
                tz = old_z;
            } else if !engine.is_wall3(zj, zk, zt) {
                tx = c.x;
                ty = c.y;
            } else {
                continue;
            }
        }
        let new_center = grid.to_world_coords(Point::new(tx, ty));
        let new_pos = Point::new(
            new_center.x - cell.width / 2.0,
            new_center.y - cell.height / 2.0,
        );
        // Movement mixes units deliberately: world distance in-plane
        // plus tier count along z (tiers have no world pitch).
        let dist = (new_pos - old_pos).length() + (tz - old_z).abs();
        if dist > 0.0 {
            placement.xy.set(cell_id, new_pos);
            placement.z[cell_id.index()] = tz;
            outcome.total_movement += dist;
            outcome.moved_cells += 1;
        }
    }
    outcome
}

/// The (clamped) region-local bin containing a point: x/y in bin
/// coordinates, z in region-local tier units.
fn bin3_of(x: f64, y: f64, zl: f64, engine: &DiffusionEngine) -> (usize, usize, usize) {
    let j = (x.floor().max(0.0) as usize).min(engine.nx() - 1);
    let k = (y.floor().max(0.0) as usize).min(engine.ny() - 1);
    let t = (zl.floor().max(0.0) as usize).min(engine.nz() - 1);
    (j, k, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_netlist::NetlistBuilder;

    /// `n` movable cells piled near `at` in tier `tier` of a 96×96 die.
    fn pile(n: usize, at: Point, tier: usize) -> (Netlist, Die, VolPlacement) {
        let mut b = NetlistBuilder::new();
        for i in 0..n {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(96.0, 96.0, 12.0);
        let mut vp = VolPlacement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().enumerate() {
            let dx = (i % 4) as f64 * 2.5;
            let dy = (i / 4) as f64 * 2.0;
            vp.set(c, Point::new(at.x + dx, at.y + dy), tier as f64 + 0.5);
        }
        (nl, die, vp)
    }

    fn cfg() -> DiffusionConfig {
        DiffusionConfig::default().with_bin_size(24.0)
    }

    #[test]
    fn hotspot_converges_and_uses_the_z_axis() {
        // A z-asymmetric pile: two thirds in tier 1, one third in
        // tier 0 — asymmetry is what gives the interior tier a nonzero
        // z-velocity (a perfectly symmetric middle-tier spike sits at a
        // zero of the z-gradient and can only spread in-plane).
        let mut b = NetlistBuilder::new();
        for i in 0..48 {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(96.0, 96.0, 12.0);
        let mut vp = VolPlacement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().enumerate() {
            let dx = (i % 4) as f64 * 2.5;
            let dy = (i / 4) as f64 * 2.0;
            // One cohort rests just under the tier-0/1 boundary: the
            // upward z-drift away from the overfull lower tiers must
            // carry it across.
            let z = if i % 3 == 0 {
                0.7
            } else {
                0.95 + (i % 2) as f64 * 0.35
            };
            vp.set(c, Point::new(36.0 + dx, 36.0 + dy), z);
        }
        let start_tiers: Vec<usize> = nl.cell_ids().map(|c| vp.tier(c, 3)).collect();
        let r = VolumetricDiffusion::new(cfg().with_delta(0.05), 3).run(&nl, &die, &mut vp);
        assert!(r.converged, "did not converge in {} steps", r.steps);
        assert!(r.steps > 0);
        // Some cells must have changed tier — the z axis is a real
        // relief valve, not dead weight.
        let moved_tiers = nl
            .cell_ids()
            .enumerate()
            .filter(|&(i, c)| vp.tier(c, 3) != start_tiers[i])
            .count();
        assert!(moved_tiers > 0, "no cell changed tier");
        // And every depth stays inside the stack.
        for &z in &vp.z {
            assert!((0.5..=2.5).contains(&z), "depth escaped the stack: {z}");
        }
    }

    #[test]
    fn max_density_trace_is_monotone_nonincreasing() {
        // The FTCS update with dt·ndim ≤ 1 is a convex combination —
        // the discrete maximum principle. The trace must never rise.
        let (nl, die, mut vp) = pile(48, Point::new(36.0, 36.0), 1);
        let r = VolumetricDiffusion::new(cfg(), 3).run(&nl, &die, &mut vp);
        let trace: Vec<f64> = r
            .telemetry
            .records()
            .iter()
            .map(|s| s.max_density)
            .collect();
        assert!(trace.len() >= 2);
        for w in trace.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "max density rose: {} -> {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn raw_field_full_stack_job_is_bit_identical_to_direct_run() {
        // The K=1 router path: splat + manipulate globally, ship the
        // field raw. Must be float-for-float the direct run.
        let (nl, die, mut direct) = pile(48, Point::new(36.0, 36.0), 1);
        let runner = VolumetricDiffusion::new(cfg(), 3);
        let r1 = runner.run(&nl, &die, &mut direct);

        let (_, _, mut via_field) = pile(48, Point::new(36.0, 36.0), 1);
        let grid = BinGrid::new(die.outline(), cfg().bin_size);
        let (mut density, wall) = splat_volume(&nl, &via_field, &grid, 3);
        manipulate_density(&mut density, Some(&wall), cfg().d_max);
        let job = VolJobSpec {
            field: Some(density),
            ..VolJobSpec::full(3)
        };
        let r2 = runner.run_job(&job, &nl, &die, &mut via_field, &|| false);

        assert_eq!(r1.steps, r2.steps);
        assert_eq!(r1.converged, r2.converged);
        assert_eq!(direct, via_field, "raw-field run must be bit-identical");
        assert_eq!(r1.field, r2.field);
    }

    #[test]
    fn chained_exact_steps_reproduce_a_direct_run() {
        // The K>1 round loop in miniature: one slab covering the whole
        // stack, one exact step per round, field re-fed between rounds.
        // The chaining contract is FTCS-only (a spectral run is not a
        // pure function of the current field), which is why the z-slab
        // router refuses spectral — pin the solver against DPM_SOLVER.
        let (nl, die, mut direct) = pile(48, Point::new(36.0, 36.0), 1);
        let runner = VolumetricDiffusion::new(cfg().with_solver(SolverKind::Ftcs), 3);
        let r_direct = runner.run(&nl, &die, &mut direct);
        assert!(r_direct.steps >= 2, "need a multi-step run to chain");

        let (_, _, mut chained) = pile(48, Point::new(36.0, 36.0), 1);
        let grid = BinGrid::new(die.outline(), cfg().bin_size);
        let (mut field, wall) = splat_volume(&nl, &chained, &grid, 3);
        manipulate_density(&mut field, Some(&wall), cfg().d_max);
        for _ in 0..r_direct.steps {
            let job = VolJobSpec {
                field: Some(field.clone()),
                exact_steps: Some(1),
                ..VolJobSpec::full(3)
            };
            let r = runner.run_job(&job, &nl, &die, &mut chained, &|| false);
            assert_eq!(r.steps, 1);
            field = r.field;
        }
        assert_eq!(direct, chained, "chained rounds must be bit-identical");
        assert_eq!(field, r_direct.field);
    }

    #[test]
    fn through_stack_macro_blocks_every_tier() {
        let mut b = NetlistBuilder::new();
        let m = b.add_cell("blk", 24.0, 48.0, CellKind::FixedMacro);
        for i in 0..30 {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(96.0, 96.0, 12.0);
        let mut vp = VolPlacement::new(nl.num_cells());
        vp.set(m, Point::new(48.0, 24.0), 1.5);
        for (i, c) in nl.movable_cell_ids().enumerate() {
            let dx = (i % 3) as f64 * 4.0;
            let dy = (i / 3) as f64 * 1.5;
            // Pile next to the macro, concentrated in tier 0 so the
            // density actually overflows (a third per tier would not).
            vp.set(c, Point::new(28.0 + dx, 30.0 + dy), 0.5);
        }
        let grid = BinGrid::new(die.outline(), 24.0);
        let (_, wall) = splat_volume(&nl, &vp, &grid, 3);
        let nxy = grid.len();
        let walls_per_tier: Vec<usize> = (0..3)
            .map(|z| wall[z * nxy..(z + 1) * nxy].iter().filter(|&&w| w).count())
            .collect();
        assert!(walls_per_tier[0] > 0, "macro raised no walls");
        assert_eq!(walls_per_tier[0], walls_per_tier[1]);
        assert_eq!(walls_per_tier[1], walls_per_tier[2]);

        let r = VolumetricDiffusion::new(cfg(), 3).run(&nl, &die, &mut vp);
        assert!(r.steps > 0);
        // No movable cell center may end inside the macro column, in
        // any tier.
        let macro_rect = vp.xy.cell_rect(&nl, m);
        for c in nl.movable_cell_ids() {
            let center = vp.xy.cell_center(&nl, c);
            assert!(
                !macro_rect.contains(center)
                    || (center.x - macro_rect.llx).abs() < 1e-9
                    || (macro_rect.urx - center.x).abs() < 1e-9,
                "cell {c} center {center} inside the macro column"
            );
        }
    }

    #[test]
    fn spectral_stack_converges_faster_and_matches_ftcs_legality() {
        let (nl, die, mut p_ftcs) = pile(48, Point::new(36.0, 36.0), 1);
        let ftcs = VolumetricDiffusion::new(cfg().with_solver(SolverKind::Ftcs), 3).run(
            &nl,
            &die,
            &mut p_ftcs,
        );
        let (_, _, mut p_spec) = pile(48, Point::new(36.0, 36.0), 1);
        let spec = VolumetricDiffusion::new(cfg().with_solver(SolverKind::Spectral), 3).run(
            &nl,
            &die,
            &mut p_spec,
        );
        assert!(spec.converged, "spectral stuck after {} iters", spec.steps);
        assert!(
            spec.steps < ftcs.steps,
            "spectral iterations ({}) should undercut FTCS steps ({})",
            spec.steps,
            ftcs.steps
        );
    }

    #[test]
    fn cancellation_stops_mid_run() {
        use std::cell::Cell;
        let (nl, die, mut p_ref) = pile(48, Point::new(36.0, 36.0), 1);
        let runner = VolumetricDiffusion::new(cfg(), 3);
        let full = runner.run(&nl, &die, &mut p_ref);
        assert!(full.steps > 2, "workload too small to cancel mid-run");
        let (_, _, mut vp) = pile(48, Point::new(36.0, 36.0), 1);
        let budget = Cell::new(2usize);
        let r = runner.run_with_cancel(&nl, &die, &mut vp, &|| {
            if budget.get() == 0 {
                true
            } else {
                budget.set(budget.get() - 1);
                false
            }
        });
        assert!(r.cancelled);
        assert!(!r.converged);
        assert_eq!(r.steps, 2);
    }

    #[test]
    fn single_tier_stack_behaves_like_a_planar_problem() {
        // nz = 1: the z axis never sees a velocity and depths stay
        // pinned at the middle of the only tier.
        let (nl, die, mut vp) = pile(24, Point::new(36.0, 36.0), 0);
        let r = VolumetricDiffusion::new(cfg(), 1).run(&nl, &die, &mut vp);
        assert!(r.converged);
        for &z in &vp.z {
            assert_eq!(z, 0.5, "depth moved on a single-tier stack");
        }
    }
}
