//! Die (placement image) geometry: outline and standard-cell rows.

use dpm_geom::Rect;

/// One standard-cell row: a horizontal strip of the die where cells of one
/// row height may be placed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Row {
    /// Row index from the bottom of the die.
    pub index: usize,
    /// Lower edge of the row.
    pub y: f64,
    /// Left end of the row.
    pub llx: f64,
    /// Right end of the row.
    pub urx: f64,
}

impl Row {
    /// Usable width of the row.
    #[inline]
    pub fn width(&self) -> f64 {
        self.urx - self.llx
    }
}

/// The placement region: a rectangular outline divided into equal-height
/// standard-cell rows.
///
/// Fixed macros are *not* part of the die itself — they are cells of kind
/// [`FixedMacro`](dpm_netlist::CellKind::FixedMacro) in the netlist, and
/// density computation and legality checking subtract them from the usable
/// area.
///
/// # Examples
///
/// ```
/// use dpm_place::Die;
///
/// let die = Die::new(100.0, 60.0, 12.0);
/// assert_eq!(die.num_rows(), 5);
/// assert_eq!(die.row(2).y, 24.0);
/// assert_eq!(die.row_of_y(25.0), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Die {
    outline: Rect,
    row_height: f64,
    rows: Vec<Row>,
}

impl Die {
    /// Creates a die of the given width and height with rows of
    /// `row_height`, anchored at the origin.
    ///
    /// The die height is truncated down to a whole number of rows.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is non-positive or the die is shorter than
    /// one row.
    pub fn new(width: f64, height: f64, row_height: f64) -> Self {
        Self::with_origin(0.0, 0.0, width, height, row_height)
    }

    /// Creates a die with an explicit lower-left corner.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is non-positive or the die is shorter than
    /// one row.
    pub fn with_origin(llx: f64, lly: f64, width: f64, height: f64, row_height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "die dimensions must be positive"
        );
        assert!(row_height > 0.0, "row height must be positive");
        let n_rows = (height / row_height).floor() as usize;
        assert!(n_rows >= 1, "die must fit at least one row");
        let rows = (0..n_rows)
            .map(|i| Row {
                index: i,
                y: lly + i as f64 * row_height,
                llx,
                urx: llx + width,
            })
            .collect();
        Self {
            outline: Rect::new(llx, lly, llx + width, lly + n_rows as f64 * row_height),
            row_height,
            rows,
        }
    }

    /// The die outline (trimmed to a whole number of rows).
    #[inline]
    pub fn outline(&self) -> Rect {
        self.outline
    }

    /// Height of each standard-cell row.
    #[inline]
    pub fn row_height(&self) -> f64 {
        self.row_height
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The row with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_rows()`.
    #[inline]
    pub fn row(&self, index: usize) -> Row {
        self.rows[index]
    }

    /// All rows, bottom to top.
    #[inline]
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// The index of the row containing vertical coordinate `y`, clamped to
    /// the die (coordinates below the die map to row 0, above to the top
    /// row).
    pub fn row_of_y(&self, y: f64) -> usize {
        let rel = (y - self.outline.lly) / self.row_height;
        (rel.floor().max(0.0) as usize).min(self.rows.len() - 1)
    }

    /// Snaps a y coordinate to the bottom edge of the nearest row (by the
    /// cell's lower edge).
    pub fn snap_y(&self, y: f64) -> f64 {
        let rel = (y - self.outline.lly) / self.row_height;
        let idx = (rel.round().max(0.0) as usize).min(self.rows.len() - 1);
        self.rows[idx].y
    }

    /// Total placement area of the die.
    #[inline]
    pub fn area(&self) -> f64 {
        self.outline.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_tile_the_die() {
        let die = Die::new(50.0, 37.0, 12.0);
        // 37 / 12 -> 3 full rows; outline trimmed to 36.
        assert_eq!(die.num_rows(), 3);
        assert_eq!(die.outline().ury, 36.0);
        assert_eq!(die.row(0).y, 0.0);
        assert_eq!(die.row(1).y, 12.0);
        assert_eq!(die.row(2).y, 24.0);
        for r in die.rows() {
            assert_eq!(r.width(), 50.0);
        }
    }

    #[test]
    fn row_of_y_clamps() {
        let die = Die::new(10.0, 36.0, 12.0);
        assert_eq!(die.row_of_y(-5.0), 0);
        assert_eq!(die.row_of_y(0.0), 0);
        assert_eq!(die.row_of_y(11.9), 0);
        assert_eq!(die.row_of_y(12.0), 1);
        assert_eq!(die.row_of_y(100.0), 2);
    }

    #[test]
    fn snap_y_rounds_to_nearest_row() {
        let die = Die::new(10.0, 36.0, 12.0);
        assert_eq!(die.snap_y(5.0), 0.0);
        assert_eq!(die.snap_y(7.0), 12.0);
        assert_eq!(die.snap_y(35.0), 24.0);
        assert_eq!(die.snap_y(-3.0), 0.0);
    }

    #[test]
    fn with_origin_offsets_rows() {
        let die = Die::with_origin(10.0, 20.0, 40.0, 24.0, 12.0);
        assert_eq!(die.row(0).y, 20.0);
        assert_eq!(die.row(0).llx, 10.0);
        assert_eq!(die.row(0).urx, 50.0);
        assert_eq!(die.row_of_y(33.0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn too_short_die_panics() {
        let _ = Die::new(10.0, 5.0, 12.0);
    }
}
