//! Parameter sweep: how bin size, windows, and the update period trade
//! movement against runtime — a miniature of the paper's Section VII-C.
//!
//! Run with: `cargo run --release --example parameter_sweep`

use diffuplace::diffusion::DiffusionConfig;
use diffuplace::gen::{CircuitSpec, InflationSpec};
use diffuplace::legalize::{DiffusionLegalizer, Legalizer};
use diffuplace::place::{hpwl, MovementStats};
use std::time::Instant;

fn main() {
    // A dense, concentrated hotspot: the regime where the parameters
    // genuinely trade movement against runtime.
    let mut bench = CircuitSpec::with_size("sweep", 2_000, 21)
        .with_local_utilization(0.97)
        .with_clusters_per_gap(6)
        .generate();
    bench.inflate(&InflationSpec::centered(0.15, 0.3, 22));
    let row_height = bench.die.row_height();

    println!(
        "{:<28} {:>9} {:>11} {:>9}",
        "configuration", "movement", "TWL", "CPU(ms)"
    );

    // Bin size (paper Fig. 11: sweet spot 2-4 row heights).
    for rows in [1.0, 2.0, 2.5, 4.0, 8.0] {
        run(
            &bench,
            &format!("bin = {rows} row heights"),
            DiffusionConfig::default()
                .with_bin_size(rows * row_height)
                .with_windows(1, 2),
        );
    }
    // Windows (paper Figs. 12-13: small is better).
    for (w1, w2) in [(1, 1), (1, 3), (2, 2), (3, 3)] {
        run(
            &bench,
            &format!("windows W1={w1} W2={w2}"),
            DiffusionConfig::default()
                .with_bin_size(2.5 * row_height)
                .with_windows(w1, w2),
        );
    }
    // Update period (paper Table IX: longer is cheaper, similar quality).
    for n_u in [5, 15, 30] {
        run(
            &bench,
            &format!("update period N_U = {n_u}"),
            DiffusionConfig::default()
                .with_bin_size(2.5 * row_height)
                .with_windows(1, 2)
                .with_update_period(n_u),
        );
    }
}

fn run(bench: &diffuplace::gen::Benchmark, label: &str, cfg: DiffusionConfig) {
    let legalizer = DiffusionLegalizer::local(cfg);
    let mut placement = bench.placement.clone();
    let start = Instant::now();
    legalizer.legalize_in_place(&bench.netlist, &bench.die, &mut placement);
    let elapsed = start.elapsed();
    let moves = MovementStats::between(&bench.netlist, &bench.placement, &placement);
    println!(
        "{:<28} {:>9.0} {:>11.0} {:>9.1}",
        label,
        moves.total,
        hpwl(&bench.netlist, &placement),
        elapsed.as_secs_f64() * 1e3
    );
}
