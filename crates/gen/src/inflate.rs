//! Inflation workloads: creating overlaps the way the paper does.

use crate::Benchmark;
use dpm_netlist::CellId;
use dpm_rng::Rng;

/// How to inflate cells of a [`Benchmark`] to create overlap.
///
/// The paper uses two families of workloads:
///
/// - **industrial** (Tables I–IX): cells are inflated until the added
///   area reaches a percentage of the movable area, either spread over
///   the whole die (`Distributed`, "to simulate the behavior of
///   repowering in physical synthesis") or concentrated around the die
///   center (`Centered`, "mimics a hotspot");
/// - **ISPD** (Tables X–XVI): a fixed fraction of cells is selected
///   (randomly, or nearest the die center) and each selected cell's width
///   grows by a fixed factor — the paper uses 10% of cells and 60% width
///   growth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InflationSpec {
    /// Inflate randomly chosen cells until the added area is
    /// `area_pct` of the total movable area.
    Distributed {
        /// Target added area as a fraction of movable area (e.g. 0.25).
        area_pct: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Like `Distributed` but only cells within `radius_frac` of the die
    /// half-diagonal from the die center are eligible.
    Centered {
        /// Target added area as a fraction of movable area.
        area_pct: f64,
        /// Eligible radius as a fraction of the die half-diagonal.
        radius_frac: f64,
        /// RNG seed.
        seed: u64,
    },
    /// ISPD protocol, `RANDOM` set: inflate `frac_cells` of all cells by
    /// `width_factor` (e.g. 0.1 and 1.6).
    RandomWidth {
        /// Fraction of cells to inflate.
        frac_cells: f64,
        /// Width multiplication factor (> 1).
        width_factor: f64,
        /// RNG seed.
        seed: u64,
    },
    /// ISPD protocol, `CENTER` set: inflate the `frac_cells` of cells
    /// nearest the die center by `width_factor`.
    CenterWidth {
        /// Fraction of cells to inflate.
        frac_cells: f64,
        /// Width multiplication factor (> 1).
        width_factor: f64,
    },
}

impl InflationSpec {
    /// Distributed industrial inflation (paper Table I style).
    pub fn distributed(area_pct: f64, seed: u64) -> Self {
        Self::Distributed { area_pct, seed }
    }

    /// Concentrated industrial inflation (paper Table VI, type C).
    pub fn centered(area_pct: f64, radius_frac: f64, seed: u64) -> Self {
        Self::Centered {
            area_pct,
            radius_frac,
            seed,
        }
    }

    /// ISPD `RANDOM` inflation (Table X): `frac_cells` inflated by
    /// `width_factor`.
    pub fn random_width(frac_cells: f64, width_factor: f64, seed: u64) -> Self {
        Self::RandomWidth {
            frac_cells,
            width_factor,
            seed,
        }
    }

    /// ISPD `CENTER` inflation (Table X).
    pub fn center_width(frac_cells: f64, width_factor: f64) -> Self {
        Self::CenterWidth {
            frac_cells,
            width_factor,
        }
    }
}

/// Inflates cells drawn *without replacement* (Fisher–Yates order) by a
/// random repowering factor in [1.3, 2.0) until `target` area has been
/// added or every candidate was inflated once. Sampling without
/// replacement mirrors repowering — a gate is upsized once — and avoids
/// pathological many-times-inflated giants.
fn inflate_without_replacement(
    netlist: &mut dpm_netlist::Netlist,
    rng: &mut Rng,
    mut ids: Vec<CellId>,
    target: f64,
) {
    let mut added = 0.0;
    while added < target && !ids.is_empty() {
        let pick = rng.random_range(0..ids.len());
        let cell = ids.swap_remove(pick);
        let factor = rng.random_range(1.3..2.0);
        let c = netlist.cell(cell);
        added += c.width * (factor - 1.0) * c.height;
        netlist.inflate_cell_width(cell, factor);
    }
}

impl Benchmark {
    /// Applies an inflation workload, growing cell widths in place (the
    /// placement is untouched, so overlaps appear).
    ///
    /// Returns the achieved inflation: added area as a fraction of the
    /// pre-inflation movable area.
    pub fn inflate(&mut self, spec: &InflationSpec) -> f64 {
        let area_before = self.netlist.movable_area();
        match *spec {
            InflationSpec::Distributed { area_pct, seed } => {
                let mut rng = Rng::seed_from_u64(seed);
                let ids: Vec<CellId> = self.netlist.movable_cell_ids().collect();
                let target = area_before * area_pct;
                inflate_without_replacement(&mut self.netlist, &mut rng, ids, target);
            }
            InflationSpec::Centered {
                area_pct,
                radius_frac,
                seed,
            } => {
                let mut rng = Rng::seed_from_u64(seed);
                let center = self.die.outline().center();
                let radius = radius_frac
                    * (self
                        .die
                        .outline()
                        .width()
                        .hypot(self.die.outline().height())
                        / 2.0);
                let ids: Vec<CellId> = self
                    .netlist
                    .movable_cell_ids()
                    .filter(|&c| {
                        self.placement
                            .cell_center(&self.netlist, c)
                            .distance(center)
                            <= radius
                    })
                    .collect();
                if ids.is_empty() {
                    return 0.0;
                }
                // A concentrated hotspot: the eligible region is small, so
                // hitting the area target needs a *uniform* blow-up of all
                // eligible cells rather than sampling. Jitter the factor
                // ±15% per cell; cap at 4x to keep cells placeable.
                let eligible_area: f64 = ids.iter().map(|&c| self.netlist.cell(c).area()).sum();
                let target = area_before * area_pct;
                let factor = (1.0 + target / eligible_area).min(4.0);
                for cell in ids {
                    let jitter = rng.random_range(0.85..1.15);
                    let f = (1.0 + (factor - 1.0) * jitter).min(4.0);
                    self.netlist.inflate_cell_width(cell, f);
                }
            }
            InflationSpec::RandomWidth {
                frac_cells,
                width_factor,
                seed,
            } => {
                let mut rng = Rng::seed_from_u64(seed);
                for cell in self.netlist.movable_cell_ids().collect::<Vec<_>>() {
                    if rng.random_f64() < frac_cells {
                        self.netlist.inflate_cell_width(cell, width_factor);
                    }
                }
            }
            InflationSpec::CenterWidth {
                frac_cells,
                width_factor,
            } => {
                let center = self.die.outline().center();
                let mut ids: Vec<(f64, CellId)> = self
                    .netlist
                    .movable_cell_ids()
                    .map(|c| {
                        (
                            self.placement
                                .cell_center(&self.netlist, c)
                                .distance(center),
                            c,
                        )
                    })
                    .collect();
                ids.sort_by(|a, b| a.0.total_cmp(&b.0));
                let count = ((ids.len() as f64) * frac_cells).round() as usize;
                for &(_, cell) in ids.iter().take(count) {
                    self.netlist.inflate_cell_width(cell, width_factor);
                }
            }
        }
        (self.netlist.movable_area() - area_before) / area_before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitSpec;
    use dpm_place::check_legality;

    #[test]
    fn distributed_hits_target_area() {
        let mut bench = CircuitSpec::small(1).generate();
        let achieved = bench.inflate(&InflationSpec::distributed(0.3, 11));
        assert!((0.28..0.45).contains(&achieved), "achieved {achieved}");
    }

    #[test]
    fn distributed_creates_overlap() {
        let mut bench = CircuitSpec::small(2).generate();
        bench.inflate(&InflationSpec::distributed(0.25, 3));
        let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 5);
        assert!(!report.is_legal());
        assert!(report.total_overlap_area > 0.0);
    }

    #[test]
    fn centered_only_touches_center_cells() {
        let mut bench = CircuitSpec::small(3).generate();
        let widths_before: Vec<f64> = bench
            .netlist
            .movable_cell_ids()
            .map(|c| bench.netlist.cell(c).width)
            .collect();
        let center = bench.die.outline().center();
        let radius = 0.25
            * (bench
                .die
                .outline()
                .width()
                .hypot(bench.die.outline().height())
                / 2.0);
        // Distances must be measured *before* inflation: growing a cell's
        // width shifts its center.
        let dist_before: Vec<f64> = bench
            .netlist
            .movable_cell_ids()
            .map(|c| {
                bench
                    .placement
                    .cell_center(&bench.netlist, c)
                    .distance(center)
            })
            .collect();
        bench.inflate(&InflationSpec::centered(0.15, 0.25, 5));
        for (i, c) in bench.netlist.movable_cell_ids().enumerate() {
            let grew = bench.netlist.cell(c).width > widths_before[i] + 1e-12;
            if grew {
                assert!(
                    dist_before[i] <= radius + 1e-9,
                    "far cell {c} inflated (d = {}, r = {radius})",
                    dist_before[i]
                );
            }
        }
    }

    #[test]
    fn ispd_random_inflates_expected_fraction() {
        let mut bench = CircuitSpec::small(4).generate();
        let widths_before: Vec<f64> = bench
            .netlist
            .movable_cell_ids()
            .map(|c| bench.netlist.cell(c).width)
            .collect();
        bench.inflate(&InflationSpec::random_width(0.1, 1.6, 9));
        let inflated = bench
            .netlist
            .movable_cell_ids()
            .enumerate()
            .filter(|&(i, c)| bench.netlist.cell(c).width > widths_before[i] + 1e-12)
            .count();
        let frac = inflated as f64 / widths_before.len() as f64;
        assert!((0.05..0.16).contains(&frac), "inflated fraction {frac}");
        // Each inflated cell grew exactly 60% in width.
        for (i, c) in bench.netlist.movable_cell_ids().enumerate() {
            let w = bench.netlist.cell(c).width;
            assert!(
                (w - widths_before[i]).abs() < 1e-9 || (w - widths_before[i] * 1.6).abs() < 1e-9,
                "unexpected width change"
            );
        }
    }

    #[test]
    fn ispd_center_picks_nearest_cells() {
        let mut bench = CircuitSpec::small(5).generate();
        let n = bench.netlist.movable_cell_ids().count();
        let widths_before: Vec<f64> = bench
            .netlist
            .movable_cell_ids()
            .map(|c| bench.netlist.cell(c).width)
            .collect();
        let center = bench.die.outline().center();
        // Record distances *before* inflation shifts cell centers.
        let dist_before: Vec<f64> = bench
            .netlist
            .movable_cell_ids()
            .map(|c| {
                bench
                    .placement
                    .cell_center(&bench.netlist, c)
                    .distance(center)
            })
            .collect();
        bench.inflate(&InflationSpec::center_width(0.1, 1.6));
        let mut inflated_d = Vec::new();
        let mut untouched_d = Vec::new();
        for (i, c) in bench.netlist.movable_cell_ids().enumerate() {
            if bench.netlist.cell(c).width > widths_before[i] + 1e-12 {
                inflated_d.push(dist_before[i]);
            } else {
                untouched_d.push(dist_before[i]);
            }
        }
        assert_eq!(inflated_d.len(), (n as f64 * 0.1).round() as usize);
        let max_inflated = inflated_d.iter().cloned().fold(0.0, f64::max);
        let min_untouched = untouched_d.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max_inflated <= min_untouched + 1e-9,
            "inflated set is not the nearest-to-center prefix"
        );
    }

    #[test]
    fn inflation_is_deterministic() {
        let mut a = CircuitSpec::small(6).generate();
        let mut b = CircuitSpec::small(6).generate();
        let ra = a.inflate(&InflationSpec::distributed(0.2, 42));
        let rb = b.inflate(&InflationSpec::distributed(0.2, 42));
        assert_eq!(ra, rb);
    }
}
