//! Tenant admission: bounded per-tenant queues drained with deficit
//! round-robin.
//!
//! One noisy tenant replaying a thousand-job ECO sweep must not starve
//! a tenant submitting one interactive request. Each tenant gets its
//! own bounded queue (admission control: overflow is rejected at the
//! door with a typed error, not buffered without bound) and workers
//! drain the queues with deficit round-robin: every service turn a
//! tenant's deficit is refilled by its weight and it may dequeue that
//! many unit-cost jobs before the turn passes on. Long-run throughput
//! is proportional to weight; latency under contention is bounded by
//! one round of everyone else's quanta.
//!
//! The schedule is a pure function of the push/pop sequence — no
//! clocks — so replaying a request stream replays the exact service
//! order, which the fairness tests pin.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// One tenant's admission contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Tenant name, matched against the `tenant` field of requests.
    pub name: String,
    /// Relative service weight (jobs per DRR round). Zero is clamped
    /// to one — a configured tenant is never fully starved.
    pub weight: u32,
    /// Jobs that may wait in this tenant's queue before admission
    /// rejects with [`AdmitError::QueueFull`].
    pub max_queued: usize,
}

impl TenantSpec {
    /// A tenant with unit weight and the given queue bound.
    pub fn new(name: impl Into<String>, weight: u32, max_queued: usize) -> Self {
        Self {
            name: name.into(),
            weight,
            max_queued,
        }
    }
}

/// Why admission rejected a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The request named a tenant the control plane was not configured
    /// with.
    UnknownTenant,
    /// The tenant's queue is at `max_queued`.
    QueueFull,
    /// The queue was closed for shutdown.
    Closed,
}

struct TenantState<T> {
    weight: u64,
    max_queued: usize,
    deficit: u64,
    queue: VecDeque<T>,
}

struct State<T> {
    tenants: Vec<TenantState<T>>,
    /// DRR cursor: index of the tenant whose turn it is.
    cursor: usize,
    closed: bool,
}

/// A multi-tenant bounded queue with deficit-round-robin service.
///
/// `try_push` never blocks (admission control); `pop_wait` blocks until
/// a job is available or the queue is closed and drained.
pub struct FairQueue<T> {
    names: Vec<String>,
    state: Mutex<State<T>>,
    ready: Condvar,
}

impl<T> FairQueue<T> {
    /// Builds a queue serving exactly the given tenants.
    pub fn new(specs: &[TenantSpec]) -> Self {
        let names = specs.iter().map(|s| s.name.clone()).collect();
        let tenants = specs
            .iter()
            .map(|s| TenantState {
                weight: u64::from(s.weight.max(1)),
                max_queued: s.max_queued,
                deficit: 0,
                queue: VecDeque::new(),
            })
            .collect();
        Self {
            names,
            state: Mutex::new(State {
                tenants,
                cursor: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Index of `tenant` in the service order, if configured.
    pub fn tenant_index(&self, tenant: &str) -> Option<usize> {
        self.names.iter().position(|n| n == tenant)
    }

    /// Name of the tenant at `index`.
    pub fn tenant_name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Configured tenant names, in service order.
    pub fn tenant_names(&self) -> &[String] {
        &self.names
    }

    /// Enqueues a job for `tenant` without blocking.
    ///
    /// # Errors
    ///
    /// [`AdmitError::UnknownTenant`] for unconfigured tenants,
    /// [`AdmitError::QueueFull`] at the tenant's bound,
    /// [`AdmitError::Closed`] after [`close`](Self::close).
    pub fn try_push(&self, tenant: &str, item: T) -> Result<(), AdmitError> {
        let idx = self.tenant_index(tenant).ok_or(AdmitError::UnknownTenant)?;
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(AdmitError::Closed);
        }
        let t = &mut st.tenants[idx];
        if t.queue.len() >= t.max_queued {
            return Err(AdmitError::QueueFull);
        }
        t.queue.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the next job in DRR order, blocking while all queues
    /// are empty. Returns the owning tenant's index alongside the job;
    /// `None` once the queue is closed and fully drained.
    pub fn pop_wait(&self) -> Option<(usize, T)> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(popped) = Self::pop_drr(&mut st) {
                return Some(popped);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap();
        }
    }

    /// Non-blocking [`pop_wait`](Self::pop_wait) — `None` when every
    /// queue is empty (closed or not).
    pub fn try_pop(&self) -> Option<(usize, T)> {
        Self::pop_drr(&mut self.state.lock().unwrap())
    }

    fn pop_drr(st: &mut State<T>) -> Option<(usize, T)> {
        let n = st.tenants.len();
        if n == 0 {
            return None;
        }
        // At most one full round: if nobody has work, report empty.
        for _ in 0..n {
            let i = st.cursor;
            let t = &mut st.tenants[i];
            if t.queue.is_empty() {
                // An empty tenant forfeits its remaining quantum —
                // deficits never accumulate while idle, so a returning
                // tenant cannot burst past its share.
                t.deficit = 0;
                st.cursor = (i + 1) % n;
                continue;
            }
            if t.deficit == 0 {
                t.deficit = t.weight;
            }
            t.deficit -= 1;
            let item = t.queue.pop_front().expect("checked non-empty");
            if t.deficit == 0 || t.queue.is_empty() {
                if t.queue.is_empty() {
                    t.deficit = 0;
                }
                st.cursor = (i + 1) % n;
            }
            return Some((i, item));
        }
        None
    }

    /// Total queued jobs across all tenants.
    pub fn len(&self) -> usize {
        let st = self.state.lock().unwrap();
        st.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes admission and wakes every blocked worker. Already-queued
    /// jobs are still drained by `pop_wait`.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(weights: &[(&str, u32)]) -> FairQueue<u32> {
        let specs: Vec<TenantSpec> = weights
            .iter()
            .map(|&(n, w)| TenantSpec::new(n, w, 64))
            .collect();
        FairQueue::new(&specs)
    }

    #[test]
    fn drr_serves_in_weight_proportion() {
        let fq = q(&[("a", 2), ("b", 1)]);
        for i in 0..12 {
            fq.try_push("a", i).unwrap();
            fq.try_push("b", 100 + i).unwrap();
        }
        let order: Vec<usize> = (0..9).map(|_| fq.pop_wait().unwrap().0).collect();
        // Quantum 2 for a, 1 for b: a a b a a b ...
        assert_eq!(order, vec![0, 0, 1, 0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn schedule_is_deterministic_for_a_replayed_stream() {
        let run = || {
            let fq = q(&[("a", 1), ("b", 3)]);
            for i in 0..8 {
                fq.try_push("b", i).unwrap();
            }
            fq.try_push("a", 99).unwrap();
            (0..9).map(|_| fq.pop_wait().unwrap()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn admission_rejects_overflow_and_unknown_tenants() {
        let specs = [TenantSpec::new("a", 1, 2)];
        let fq: FairQueue<u32> = FairQueue::new(&specs);
        fq.try_push("a", 1).unwrap();
        fq.try_push("a", 2).unwrap();
        assert_eq!(fq.try_push("a", 3), Err(AdmitError::QueueFull));
        assert_eq!(fq.try_push("ghost", 1), Err(AdmitError::UnknownTenant));
        assert_eq!(fq.len(), 2);
    }

    #[test]
    fn close_drains_then_returns_none() {
        let fq = q(&[("a", 1)]);
        fq.try_push("a", 7).unwrap();
        fq.close();
        assert_eq!(fq.try_push("a", 8), Err(AdmitError::Closed));
        assert_eq!(fq.pop_wait(), Some((0, 7)));
        assert_eq!(fq.pop_wait(), None);
    }

    #[test]
    fn idle_tenants_do_not_accumulate_deficit() {
        let fq = q(&[("a", 4), ("b", 1)]);
        // a drains alone first — its leftover quantum is forfeited, so
        // the turn passes to b before a's next full 4-job quantum.
        fq.try_push("a", 0).unwrap();
        assert_eq!(fq.pop_wait().unwrap().0, 0);
        for i in 0..6 {
            fq.try_push("a", i).unwrap();
            fq.try_push("b", i).unwrap();
        }
        let order: Vec<usize> = (0..6).map(|_| fq.pop_wait().unwrap().0).collect();
        assert_eq!(
            order,
            vec![1, 0, 0, 0, 0, 1],
            "idle reset hands the turn to b"
        );
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        use std::sync::Arc;
        let fq = Arc::new(q(&[("a", 1)]));
        let fq2 = Arc::clone(&fq);
        let h = std::thread::spawn(move || fq2.pop_wait());
        std::thread::sleep(std::time::Duration::from_millis(20));
        fq.try_push("a", 5).unwrap();
        assert_eq!(h.join().unwrap(), Some((0, 5)));
    }
}
