//! Field-driven placement migration: diffusion on arbitrary scalar
//! fields.
//!
//! Legalization diffuses *area density*, but the paper's introduction
//! lists other design-closure fields migration should relieve: routing
//! congestion, crosstalk noise, heat. All of them reduce to the same
//! mechanism — blend the offending per-bin field into the density the
//! engine evolves, and cells drift out of the hot regions. This module
//! packages that mechanism: [`FieldMigration`] runs a bounded number of
//! diffusion steps on `area_density + weight · normalized(field)` and
//! moves cells along the blended gradients.

use crate::advect::advect_cells;
use crate::{DiffusionConfig, DiffusionEngine, DiffusionResult, StepRecord, Telemetry};
use dpm_netlist::Netlist;
use dpm_place::{BinGrid, DensityMap, Die, Placement};

/// Migration driven by an external per-bin scalar field.
///
/// # Examples
///
/// Relieve a synthetic hot spot (e.g. a thermal map):
///
/// ```
/// use dpm_diffusion::{DiffusionConfig, FieldMigration};
/// use dpm_gen::CircuitSpec;
/// use dpm_place::BinGrid;
///
/// let bench = CircuitSpec::small(4).generate();
/// let cfg = DiffusionConfig::default().with_bin_size(2.5 * bench.die.row_height());
/// let grid = BinGrid::new(bench.die.outline(), cfg.bin_size);
///
/// // A field that is hot in the die center.
/// let center = grid.region().center();
/// let field: Vec<f64> = grid
///     .iter()
///     .map(|idx| {
///         let d = grid.bin_center(idx).distance(center);
///         (1.0 - d / 200.0).max(0.0)
///     })
///     .collect();
///
/// let mut placement = bench.placement.clone();
/// let run = FieldMigration::new(cfg)
///     .with_weight(0.8)
///     .with_steps(20)
///     .run(&bench.netlist, &bench.die, &mut placement, &field);
/// assert_eq!(run.steps, 20);
/// ```
#[derive(Debug, Clone)]
pub struct FieldMigration {
    cfg: DiffusionConfig,
    weight: f64,
    steps: usize,
}

impl FieldMigration {
    /// Creates a field migrator with weight 1.0 and 30 steps.
    pub fn new(cfg: DiffusionConfig) -> Self {
        Self {
            cfg,
            weight: 1.0,
            steps: 30,
        }
    }

    /// Sets how strongly the external field counts relative to area
    /// density (the field is first normalized to peak 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is negative or not finite.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "weight must be non-negative"
        );
        self.weight = weight;
        self
    }

    /// Sets the number of migration steps (field relief is a bounded
    /// perturbation, not a run-to-equilibrium).
    pub fn with_steps(mut self, steps: usize) -> Self {
        self.steps = steps;
        self
    }

    /// Runs the migration: `steps` diffusion steps on the blended field,
    /// advecting cells, then returns the telemetry. The placement is
    /// *not* legalized — run a detailed legalizer afterwards, exactly as
    /// after density-driven diffusion.
    ///
    /// # Panics
    ///
    /// Panics if `field.len()` does not match the bin grid implied by the
    /// configuration's bin size over this die.
    pub fn run(
        &self,
        netlist: &Netlist,
        die: &Die,
        placement: &mut Placement,
        field: &[f64],
    ) -> DiffusionResult {
        let grid = BinGrid::new(die.outline(), self.cfg.bin_size);
        assert_eq!(
            field.len(),
            grid.len(),
            "field has {} bins, grid has {}",
            field.len(),
            grid.len()
        );
        let map = DensityMap::from_placement(netlist, placement, grid.clone());
        let peak = field.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        let blended: Vec<f64> = map
            .densities()
            .iter()
            .zip(field)
            .map(|(&d, &f)| d + self.weight * (f / peak).max(0.0))
            .collect();
        let mut engine = DiffusionEngine::from_raw(
            grid.nx(),
            grid.ny(),
            blended,
            Some(map.fixed_mask().to_vec()),
        );
        engine.set_conservative_boundaries(!self.cfg.paper_boundaries);
        engine.set_threads(self.cfg.threads);
        engine.set_lanes(self.cfg.lanes);
        engine.set_precision(self.cfg.precision);

        let mut telemetry = Telemetry::new();
        for step in 0..self.steps {
            engine.compute_velocities();
            let advect = advect_cells(&engine, &grid, netlist, placement, &self.cfg, false);
            engine.step_density(self.cfg.dt * self.cfg.diffusivity);
            telemetry.push(StepRecord {
                step,
                movement: advect.total_movement,
                computed_overflow: engine.total_overflow(self.cfg.d_max),
                max_density: engine.max_live_density(),
                measured_overflow: None,
            });
        }
        DiffusionResult {
            steps: self.steps,
            rounds: 1,
            converged: true,
            cancelled: false,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Point;
    use dpm_netlist::{CellKind, NetlistBuilder};

    fn uniform_bench() -> (Netlist, Die, Placement, BinGrid, DiffusionConfig) {
        // A 6x6 grid of cells spread uniformly — area density alone gives
        // no gradients, so any movement must come from the external field.
        let mut b = NetlistBuilder::new();
        for i in 0..36 {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(144.0, 144.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().enumerate() {
            p.set(
                c,
                Point::new((i % 6) as f64 * 24.0 + 6.0, (i / 6) as f64 * 24.0),
            );
        }
        let cfg = DiffusionConfig::default().with_bin_size(24.0);
        let grid = BinGrid::new(die.outline(), 24.0);
        (nl, die, p, grid, cfg)
    }

    #[test]
    fn zero_field_moves_nothing_on_uniform_placement() {
        let (nl, die, mut p, grid, cfg) = uniform_bench();
        let before = p.clone();
        let field = vec![0.0; grid.len()];
        FieldMigration::new(cfg)
            .with_steps(10)
            .run(&nl, &die, &mut p, &field);
        // Uniform density + zero field ⇒ zero gradients everywhere.
        for c in nl.movable_cell_ids() {
            assert!(
                (p.get(c) - before.get(c)).length() < 0.5,
                "cell {c} drifted"
            );
        }
    }

    #[test]
    fn hot_field_pushes_cells_away() {
        let (nl, die, mut p, grid, cfg) = uniform_bench();
        let center = grid.region().center();
        let field: Vec<f64> = grid
            .iter()
            .map(|idx| {
                if grid.bin_center(idx).distance(center) < 40.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let before = p.clone();
        FieldMigration::new(cfg)
            .with_weight(1.5)
            .with_steps(30)
            .run(&nl, &die, &mut p, &field);
        // Cells near the hot center move outward; average distance to the
        // center grows.
        let avg_d = |q: &Placement| {
            nl.movable_cell_ids()
                .map(|c| q.cell_center(&nl, c).distance(center))
                .sum::<f64>()
                / 36.0
        };
        assert!(
            avg_d(&p) > avg_d(&before) + 1.0,
            "field did not push cells out: {} -> {}",
            avg_d(&before),
            avg_d(&p)
        );
    }

    #[test]
    fn weight_scales_the_effect() {
        let (nl, die, p0, grid, cfg) = uniform_bench();
        let center = grid.region().center();
        let field: Vec<f64> = grid
            .iter()
            .map(|idx| {
                if grid.bin_center(idx).distance(center) < 40.0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let movement = |weight: f64| {
            let mut p = p0.clone();
            let r = FieldMigration::new(cfg.clone())
                .with_weight(weight)
                .with_steps(20)
                .run(&nl, &die, &mut p, &field);
            r.telemetry.total_movement()
        };
        let weak = movement(0.2);
        let strong = movement(2.0);
        assert!(
            strong > weak,
            "stronger field must move more: {weak} vs {strong}"
        );
    }

    #[test]
    #[should_panic(expected = "bins")]
    fn wrong_field_size_rejected() {
        let (nl, die, mut p, _, cfg) = uniform_bench();
        FieldMigration::new(cfg).run(&nl, &die, &mut p, &[1.0, 2.0]);
    }
}
