//! Table VIII — cell movement (max/total) of DIFF(G) vs DIFF(L) during
//! the diffusion phase.

use dpm_bench::suite::run_diffusion_comparison;
use dpm_bench::{fnum, print_table, scale_from_env, TextTable, CKT_DEFAULT_SCALE};

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Table VIII at scale {scale}.");
    let rows = run_diffusion_comparison(scale);
    let mut t = TextTable::new(["testcase", "G max", "G total", "L max", "L total"]);
    let mut sums = [0.0f64; 4];
    for row in &rows {
        sums[0] += row.global_movement.0;
        sums[1] += row.global_movement.1;
        sums[2] += row.local_movement.0;
        sums[3] += row.local_movement.1;
        t.row([
            row.name.clone(),
            fnum(row.global_movement.0),
            fnum(row.global_movement.1),
            fnum(row.local_movement.0),
            fnum(row.local_movement.1),
        ]);
    }
    let impr_max = if sums[0] > 0.0 {
        (1.0 - sums[2] / sums[0]) * 100.0
    } else {
        0.0
    };
    let impr_tot = if sums[1] > 0.0 {
        (1.0 - sums[3] / sums[1]) * 100.0
    } else {
        0.0
    };
    t.row([
        "improvement".to_string(),
        String::new(),
        String::new(),
        format!("{}%", fnum(impr_max)),
        format!("{}%", fnum(impr_tot)),
    ]);
    print_table(
        "Table VIII: cell movement (paper improvements: 19% max, 70% total)",
        &t,
    );
}
