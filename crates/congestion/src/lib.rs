#![warn(missing_docs)]

//! RUDY-style routing-congestion estimation.
//!
//! The paper reports wiring-congestion improvements "after global
//! routing"; this crate is the workspace's stand-in for a global router:
//! the RUDY estimator (Rectangular Uniform wire DensitY, Spindler &
//! Johannes, DATE 2007). Each net smears a routing demand of
//! `hpwl / bbox_area` uniformly over its bounding box; summing over nets
//! gives a per-bin demand map whose hot spots track where a real router
//! would congest. RUDY is monotone in exactly what placement migration
//! changes — how far apart connected cells sit — which is all the
//! comparison needs.
//!
//! # Examples
//!
//! ```
//! use dpm_geom::{Point, Rect};
//! use dpm_netlist::{NetlistBuilder, CellKind, PinDir};
//! use dpm_place::{BinGrid, Placement};
//! use dpm_congestion::CongestionMap;
//!
//! let mut b = NetlistBuilder::new();
//! let u = b.add_cell("u", 2.0, 2.0, CellKind::Movable);
//! let v = b.add_cell("v", 2.0, 2.0, CellKind::Movable);
//! let n = b.add_net("n");
//! b.connect(u, n, PinDir::Output, 1.0, 1.0);
//! b.connect(v, n, PinDir::Input, 1.0, 1.0);
//! let nl = b.build()?;
//! let mut p = Placement::new(2);
//! p.set(u, Point::new(10.0, 10.0));
//! p.set(v, Point::new(30.0, 10.0));
//!
//! let grid = BinGrid::new(Rect::new(0.0, 0.0, 60.0, 60.0), 10.0);
//! let map = CongestionMap::build(&nl, &p, grid);
//! assert!(map.max_demand() > 0.0);
//! # Ok::<(), dpm_netlist::BuildNetlistError>(())
//! ```

use dpm_geom::Rect;
use dpm_netlist::Netlist;
use dpm_place::{net_bbox, BinGrid, BinIdx, Placement};

/// Per-bin routing-demand map computed with the RUDY model.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionMap {
    grid: BinGrid,
    demand: Vec<f64>,
}

impl CongestionMap {
    /// Minimum bounding-box edge (in world units) used when a net's pins
    /// are collinear or coincident, so demand never divides by zero.
    pub const MIN_EDGE: f64 = 1.0;

    /// Builds the demand map for a placement.
    ///
    /// Every net with at least two pins adds `(w + h) / (w · h)` demand
    /// density over its bounding box (`w`, `h` clamped below by one
    /// routing track so degenerate boxes stay finite). The contribution
    /// to a bin is the density times the overlap area, normalized by the
    /// bin area.
    pub fn build(netlist: &Netlist, placement: &Placement, grid: BinGrid) -> Self {
        let mut demand = vec![0.0; grid.len()];
        let bin_area = grid.bin_area();
        for net in netlist.net_ids() {
            if netlist.net(net).pins.len() < 2 {
                continue;
            }
            let Some(bbox) = net_bbox(netlist, placement, net) else {
                continue;
            };
            let w = bbox.width().max(Self::MIN_EDGE);
            let h = bbox.height().max(Self::MIN_EDGE);
            let density = (w + h) / (w * h);
            let r = Rect::new(bbox.llx, bbox.lly, bbox.llx + w, bbox.lly + h);
            let Some((lo, hi)) = grid.bins_overlapping(&r) else {
                continue;
            };
            for k in lo.k..=hi.k {
                for j in lo.j..=hi.j {
                    let idx = BinIdx::new(j, k);
                    let overlap = grid.bin_rect(idx).overlap_area(&r);
                    demand[grid.flat(idx)] += density * overlap / bin_area;
                }
            }
        }
        Self { grid, demand }
    }

    /// The underlying grid.
    pub fn grid(&self) -> &BinGrid {
        &self.grid
    }

    /// Raw per-bin demand, row-major.
    pub fn demands(&self) -> &[f64] {
        &self.demand
    }

    /// Demand of one bin.
    pub fn demand(&self, idx: BinIdx) -> f64 {
        self.demand[self.grid.flat(idx)]
    }

    /// Maximum bin demand.
    pub fn max_demand(&self) -> f64 {
        self.demand.iter().copied().fold(0.0, f64::max)
    }

    /// Total demand above `capacity`, summed over bins — the congestion
    /// overflow metric used by the benchmark harness.
    pub fn total_overflow(&self, capacity: f64) -> f64 {
        self.demand.iter().map(|&d| (d - capacity).max(0.0)).sum()
    }

    /// Number of bins whose demand exceeds `capacity`.
    pub fn hot_bins(&self, capacity: f64) -> usize {
        self.demand.iter().filter(|&&d| d > capacity).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Point;
    use dpm_netlist::{CellKind, NetlistBuilder, PinDir};

    fn two_cell_net(u_at: Point, v_at: Point) -> (Netlist, Placement) {
        let mut b = NetlistBuilder::new();
        let u = b.add_cell("u", 2.0, 2.0, CellKind::Movable);
        let v = b.add_cell("v", 2.0, 2.0, CellKind::Movable);
        let n = b.add_net("n");
        b.connect(u, n, PinDir::Output, 1.0, 1.0);
        b.connect(v, n, PinDir::Input, 1.0, 1.0);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(2);
        p.set(u, u_at);
        p.set(v, v_at);
        (nl, p)
    }

    fn grid() -> BinGrid {
        BinGrid::new(Rect::new(0.0, 0.0, 60.0, 60.0), 10.0)
    }

    #[test]
    fn empty_netlist_has_zero_demand() {
        let nl = NetlistBuilder::new().build().expect("empty");
        let p = Placement::new(0);
        let m = CongestionMap::build(&nl, &p, grid());
        assert_eq!(m.max_demand(), 0.0);
        assert_eq!(m.total_overflow(0.0), 0.0);
        assert_eq!(m.hot_bins(0.0), 0);
    }

    #[test]
    fn demand_concentrates_on_net_bbox() {
        let (nl, p) = two_cell_net(Point::new(10.0, 10.0), Point::new(30.0, 10.0));
        let m = CongestionMap::build(&nl, &p, grid());
        // Net bbox runs x 11..31 at y 11: demand lands in row k=1.
        assert!(m.demand(BinIdx::new(1, 1)) > 0.0);
        assert_eq!(m.demand(BinIdx::new(5, 5)), 0.0);
    }

    #[test]
    fn overlapping_nets_stack_demand() {
        let mut b = NetlistBuilder::new();
        let mut ids = Vec::new();
        for i in 0..4 {
            ids.push(b.add_cell(format!("c{i}"), 2.0, 2.0, CellKind::Movable));
        }
        let n1 = b.add_net("n1");
        b.connect(ids[0], n1, PinDir::Output, 1.0, 1.0);
        b.connect(ids[1], n1, PinDir::Input, 1.0, 1.0);
        let n2 = b.add_net("n2");
        b.connect(ids[2], n2, PinDir::Output, 1.0, 1.0);
        b.connect(ids[3], n2, PinDir::Input, 1.0, 1.0);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(4);
        // Both nets span the same region.
        p.set(ids[0], Point::new(10.0, 10.0));
        p.set(ids[1], Point::new(30.0, 10.0));
        p.set(ids[2], Point::new(10.0, 10.0));
        p.set(ids[3], Point::new(30.0, 10.0));
        let stacked = CongestionMap::build(&nl, &p, grid());
        // Move the second net elsewhere.
        p.set(ids[2], Point::new(10.0, 40.0));
        p.set(ids[3], Point::new(30.0, 40.0));
        let spread = CongestionMap::build(&nl, &p, grid());
        assert!(stacked.max_demand() > spread.max_demand());
    }

    #[test]
    fn single_pin_nets_ignored() {
        let mut b = NetlistBuilder::new();
        let u = b.add_cell("u", 2.0, 2.0, CellKind::Movable);
        let n = b.add_net("n");
        b.connect(u, n, PinDir::Output, 1.0, 1.0);
        let nl = b.build().expect("valid");
        let p = Placement::new(1);
        let m = CongestionMap::build(&nl, &p, grid());
        assert_eq!(m.max_demand(), 0.0);
    }

    #[test]
    fn degenerate_bbox_uses_min_edge() {
        // Vertical net: zero-width bbox must still produce finite demand.
        let (nl, p) = two_cell_net(Point::new(10.0, 10.0), Point::new(10.0, 40.0));
        let m = CongestionMap::build(&nl, &p, grid());
        assert!(m.max_demand().is_finite());
        assert!(m.max_demand() > 0.0);
    }

    #[test]
    fn hot_bins_counts_threshold_crossings() {
        let (nl, p) = two_cell_net(Point::new(10.0, 10.0), Point::new(30.0, 10.0));
        let m = CongestionMap::build(&nl, &p, grid());
        assert!(m.hot_bins(0.0) > 0);
        assert_eq!(m.hot_bins(f64::INFINITY), 0);
        assert!(m.total_overflow(0.0) > 0.0);
    }
}
