#![warn(missing_docs)]

//! # diffuplace — diffusion-based placement migration
//!
//! A Rust reproduction of *"Diffusion-Based Placement Migration with
//! Application on Legalization"* (Ren, Pan, Alpert, Villarrubia, Nam —
//! DAC 2005 / IEEE TCAD 2007).
//!
//! This facade crate re-exports the workspace's public API under topical
//! modules so downstream users need a single dependency:
//!
//! - [`geom`] — points, rectangles, overlap arithmetic
//! - [`netlist`] — cells, pins, nets, DAG levelization
//! - [`place`] — placement, rows, bins, density maps, HPWL, legality
//! - [`diffusion`] — the paper's contribution: FTCS density evolution,
//!   velocity fields, global ([`diffusion::GlobalDiffusion`]) and robust
//!   local ([`diffusion::LocalDiffusion`]) migration
//! - [`legalize`] — detailed, greedy, flow-based, Tetris, row-DP and
//!   grid-stretch legalizers, plus the diffusion legalizer glue
//! - [`mcmf`] — min-cost max-flow substrate used by the FLOW baseline
//! - [`sta`] — static timing (worst slack, FOM)
//! - [`congestion`] — RUDY-style routing-demand estimation
//! - [`gen`] — synthetic benchmark circuits and inflation workloads
//! - [`viz`] — SVG rendering of placements and migration vectors
//! - [`par`] — deterministic fixed-chunk worker pool behind every
//!   parallel kernel (bit-identical results at any thread count)
//! - [`rng`] — the tiny SplitMix64 generator used by [`gen`] and tests
//! - [`serve`] — migration-as-a-service: a framed TCP server with a
//!   bounded queue, per-request deadlines, streaming progress frames
//!   and JSONL request logs
//! - [`ctl`] — multi-tenant control plane over [`serve`]: content-hash
//!   design cache with ECO-delta streaming, poll-based connection
//!   front-end, deficit-round-robin tenant fairness, health-checked
//!   backend registry with warm spares
//! - [`obs`] — std-only observability: atomic metrics registry,
//!   fixed-bucket histograms with deterministic merge, bounded span
//!   recorder
//!
//! # Quickstart
//!
//! ```
//! use diffuplace::gen::{CircuitSpec, InflationSpec};
//! use diffuplace::legalize::{DiffusionLegalizer, Legalizer};
//! use diffuplace::place::hpwl;
//!
//! // Generate a small legal placement, then inflate 10% of cells by 60%
//! // width to create overlap (mimicking repowering during physical
//! // synthesis).
//! let spec = CircuitSpec::small(42);
//! let mut bench = spec.generate();
//! bench.inflate(&InflationSpec::random_width(0.1, 1.6, 7));
//!
//! let before = hpwl(&bench.netlist, &bench.placement);
//! let outcome = DiffusionLegalizer::local_default()
//!     .legalize(&bench.netlist, &bench.die, &mut bench.placement);
//! assert!(outcome.is_legal);
//! let after = hpwl(&bench.netlist, &bench.placement);
//! // Legalization perturbs wirelength only modestly.
//! assert!(after < before * 2.0);
//! ```

pub use dpm_bookshelf as bookshelf;
pub use dpm_congestion as congestion;
pub use dpm_ctl as ctl;
pub use dpm_diffusion as diffusion;
pub use dpm_gen as gen;
pub use dpm_geom as geom;
pub use dpm_legalize as legalize;
pub use dpm_mcmf as mcmf;
pub use dpm_netlist as netlist;
pub use dpm_obs as obs;
pub use dpm_par as par;
pub use dpm_place as place;
pub use dpm_qplace as qplace;
pub use dpm_rng as rng;
pub use dpm_route as route;
pub use dpm_serve as serve;
pub use dpm_sta as sta;
pub use dpm_viz as viz;
