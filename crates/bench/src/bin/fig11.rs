//! Fig. 11 — total movement and WNS vs bin size B on ckt2.

use dpm_bench::{fnum, print_table, scale_from_env, Experiment, TextTable, CKT_DEFAULT_SCALE};
use dpm_diffusion::DiffusionConfig;
use dpm_gen::suites::ckt_suite;
use dpm_legalize::DiffusionLegalizer;

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Fig. 11 at scale {scale} (ckt2, bin-size sweep; row height = 12).");
    let entry = &ckt_suite(scale)[1];
    let base = entry.spec.generate();
    let (bench, _) = entry.generate_inflated();
    let exp = Experiment::new(bench, &base);

    let mut t = TextTable::new(["B", "B/row-height", "movement", "WNS"]);
    for b in [6.0, 12.0, 20.0, 30.0, 40.0, 60.0, 80.0] {
        let cfg = DiffusionConfig::default()
            .with_bin_size(b)
            .with_windows(1, 2);
        let r = exp.run(&DiffusionLegalizer::local(cfg));
        t.row([
            fnum(b),
            fnum(b / 12.0),
            fnum(r.movement.total),
            fnum(r.metrics.wns),
        ]);
        eprintln!("  B = {b} done");
    }
    print_table(
        "Fig. 11: bin-size sweep (paper: sweet spot at 2-4 row heights; tiny and huge bins both degrade)",
        &t,
    );
}
