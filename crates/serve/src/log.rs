//! Structured JSONL request logging.
//!
//! One JSON object per line per request, written through a shared,
//! mutex-guarded sink. Fields are flat and stable so the log can be
//! post-processed with any line-oriented tool:
//!
//! ```json
//! {"id":3,"outcome":"ok","kind":"local","cells":1200,"queue_ns":18000,
//!  "service_ns":5301200,"steps":40,"rounds":4,"converged":true,
//!  "movement_total":913.2,"movement_max":14.8}
//! ```

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// One request's log record. Fields that do not apply to an outcome
/// (e.g. `service_ns` for an `overloaded` rejection) are zero.
#[derive(Debug, Clone, Default)]
pub struct RequestRecord {
    /// Request id as echoed to the client.
    pub id: u64,
    /// Outcome name: `ok` or an [`ErrorCode`](crate::wire::ErrorCode)
    /// name such as `overloaded` or `deadline_expired`.
    pub outcome: &'static str,
    /// `global`, `local`, or `-` when the request never decoded.
    pub kind: &'static str,
    /// Number of cells in the request design.
    pub cells: usize,
    /// Nanoseconds spent waiting in the admission queue.
    pub queue_ns: u64,
    /// Nanoseconds spent running diffusion.
    pub service_ns: u64,
    /// Diffusion steps executed.
    pub steps: u64,
    /// Local-diffusion rounds executed.
    pub rounds: u64,
    /// Whether the stopping criterion was met.
    pub converged: bool,
    /// Total cell movement of the run.
    pub movement_total: f64,
    /// Largest single-cell movement of the run.
    pub movement_max: f64,
}

impl RequestRecord {
    fn to_jsonl(&self) -> String {
        let mut line = String::with_capacity(192);
        let _ = write!(
            line,
            "{{\"id\":{},\"outcome\":\"{}\",\"kind\":\"{}\",\"cells\":{},\
             \"queue_ns\":{},\"service_ns\":{},\"steps\":{},\"rounds\":{},\
             \"converged\":{},\"movement_total\":{:.3},\"movement_max\":{:.3}}}",
            self.id,
            self.outcome,
            self.kind,
            self.cells,
            self.queue_ns,
            self.service_ns,
            self.steps,
            self.rounds,
            self.converged,
            self.movement_total,
            self.movement_max,
        );
        line.push('\n');
        line
    }
}

/// A shared JSONL sink. Cheap to clone behind the server's `Arc`.
pub struct RequestLog {
    sink: Option<Mutex<BufWriter<File>>>,
}

impl RequestLog {
    /// A log that discards every record.
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A log appending to the file at `path` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened.
    pub fn to_file(path: &Path) -> io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(Self {
            sink: Some(Mutex::new(BufWriter::new(file))),
        })
    }

    /// Appends one record. Logging failures are swallowed — the service
    /// must not die because its log disk filled up.
    pub fn write(&self, record: &RequestRecord) {
        if let Some(sink) = &self.sink {
            let line = record.to_jsonl();
            if let Ok(mut w) = sink.lock() {
                let _ = w.write_all(line.as_bytes());
            }
        }
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            if let Ok(mut w) = sink.lock() {
                let _ = w.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_become_one_json_line_each() {
        let dir = std::env::temp_dir().join("dpm_serve_log_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("log_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let log = RequestLog::to_file(&path).expect("opens");
        log.write(&RequestRecord {
            id: 1,
            outcome: "ok",
            kind: "local",
            cells: 10,
            queue_ns: 5,
            service_ns: 6,
            steps: 7,
            rounds: 2,
            converged: true,
            movement_total: 1.5,
            movement_max: 0.5,
        });
        log.write(&RequestRecord {
            id: 2,
            outcome: "overloaded",
            kind: "-",
            ..Default::default()
        });
        log.flush();

        let text = std::fs::read_to_string(&path).expect("readable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":1") && lines[0].contains("\"outcome\":\"ok\""));
        assert!(lines[0].contains("\"converged\":true"));
        assert!(lines[1].contains("\"outcome\":\"overloaded\""));
        // Every line is a single flat JSON object.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_log_is_a_no_op() {
        let log = RequestLog::disabled();
        log.write(&RequestRecord::default());
        log.flush();
    }
}
