//! End-to-end tests for the volumetric z-slab routing path: K = 1 and
//! K = 2 bit-identicality with the direct 3D engine (in-process and
//! through the wire), the maximum principle across stitched rounds,
//! awkward partitions (halos thicker than a slab, K not dividing the
//! stack), through-stack macros, and the router's exactness refusals.

use dpm_diffusion::{DiffusionConfig, SolverKind, VolPlacement, VolumetricDiffusion};
use dpm_gen::{VolBenchmark, VolCircuitSpec};
use dpm_serve::shard::ShardBackend;
use dpm_serve::wire::{JobKind, JobRequest, PayloadEncoding, Reply, VolRequestExt};
use dpm_serve::zslab::{VolRouteError, VolRouter, VolRouterConfig};
use dpm_serve::{ServeClient, ServeConfig, Server};

/// A 3-tier stack with an overfull middle tier — the canonical 3D-IC
/// migration workload.
fn hot_stack(seed: u64) -> VolBenchmark {
    VolCircuitSpec::with_size("vol_e2e", 3, 150, seed)
        .with_hotspot(1)
        .generate()
}

/// The z-slab contract is FTCS-only, so pin the solver regardless of
/// any ambient `DPM_SOLVER` override.
fn ftcs() -> DiffusionConfig {
    DiffusionConfig::default().with_solver(SolverKind::Ftcs)
}

fn request(bench: &VolBenchmark, id: u64) -> JobRequest {
    JobRequest {
        id,
        deadline_ms: 0,
        progress_stride: 0,
        kind: JobKind::Global,
        design: format!("vol_e2e_{id}"),
        config: ftcs(),
        netlist: bench.netlist.clone(),
        die: bench.die.clone(),
        placement: bench.placement.xy.clone(),
        vol: Some(VolRequestExt {
            nz: bench.layers() as u32,
            z0: 0,
            global_nz: bench.layers() as u32,
            exact_steps: None,
            z: bench.placement.z.clone(),
            field: None,
        }),
        trace: None,
    }
}

/// Runs the same workload directly through [`VolumetricDiffusion`],
/// returning the final volumetric placement and step count.
fn direct_run(bench: &VolBenchmark) -> (VolPlacement, u64) {
    let mut vp = bench.placement.clone();
    let r =
        VolumetricDiffusion::new(ftcs(), bench.layers()).run(&bench.netlist, &bench.die, &mut vp);
    assert!(
        r.converged,
        "direct run did not converge in {} steps",
        r.steps
    );
    assert!(r.steps > 0, "workload must do real work");
    (vp, r.steps as u64)
}

fn assert_monotone(trace: &[f64]) {
    assert!(trace.len() >= 2, "at least one round: {trace:?}");
    for w in trace.windows(2) {
        assert!(
            w[1] <= w[0],
            "max density rose across a stitched round: {trace:?}"
        );
    }
}

#[test]
fn k1_in_process_is_bit_identical_to_direct_volumetric_run() {
    let bench = hot_stack(71);
    let (direct, steps) = direct_run(&bench);

    let router = VolRouter::in_process(VolRouterConfig {
        slabs: 1,
        ..VolRouterConfig::default()
    });
    let reply = router.route(&request(&bench, 1)).expect("routes");

    assert_eq!(reply.slabs, 1);
    assert_eq!(reply.rounds as u64, steps);
    assert!(reply.response.converged);
    assert_eq!(
        reply.response.positions,
        direct.xy.as_slice().to_vec(),
        "K=1 routed stack must reproduce the direct engine bit-for-bit"
    );
    let ext = reply.response.vol.as_ref().expect("volumetric reply");
    assert_eq!(ext.z, direct.z, "depths must be bit-identical too");
    assert_monotone(&reply.max_density_trace);
    // In-process slabs merge their kernel timers into the reply.
    assert!(reply.kernels.ftcs.calls > 0);
}

#[test]
fn k2_in_process_is_bit_identical_to_k1() {
    let bench = hot_stack(73);
    let k1 = VolRouter::in_process(VolRouterConfig {
        slabs: 1,
        ..VolRouterConfig::default()
    })
    .route(&request(&bench, 2))
    .expect("K=1 routes");

    let k2 = VolRouter::in_process(VolRouterConfig {
        slabs: 2,
        ..VolRouterConfig::default()
    })
    .route(&request(&bench, 2))
    .expect("K=2 routes");

    assert_eq!(k2.slabs, 2);
    assert_eq!(k1.rounds, k2.rounds);
    assert_eq!(
        k1.response.positions, k2.response.positions,
        "slab count must not perturb a single bit of the placement"
    );
    assert_eq!(
        k1.response.vol.as_ref().expect("vol").z,
        k2.response.vol.as_ref().expect("vol").z
    );
    assert_eq!(
        k1.response.vol.as_ref().expect("vol").field,
        k2.response.vol.as_ref().expect("vol").field,
        "the stitched density field must match the K=1 field exactly"
    );
    assert_monotone(&k2.max_density_trace);
    assert_eq!(k1.max_density_trace, k2.max_density_trace);
}

#[test]
fn k2_over_tcp_is_bit_identical_to_k1_and_preserves_the_maximum_principle() {
    let bench = hot_stack(79);
    let req = request(&bench, 3);

    let k1 = VolRouter::in_process(VolRouterConfig {
        slabs: 1,
        ..VolRouterConfig::default()
    })
    .route(&req)
    .expect("K=1 routes");

    let server_a = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server a");
    let server_b = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server b");
    let router = VolRouter::new(
        VolRouterConfig {
            slabs: 2,
            ..VolRouterConfig::default()
        },
        vec![
            ShardBackend::Tcp(server_a.local_addr()),
            ShardBackend::Tcp(server_b.local_addr()),
        ],
    );
    let reply = router.route(&req).expect("K=2 routes over TCP");
    server_a.shutdown();
    server_b.shutdown();

    assert_eq!(reply.slabs, 2);
    assert!(reply.response.converged);
    assert_eq!(
        reply.response.positions, k1.response.positions,
        "f64s travel as bit patterns, so TCP slabs must match K=1 exactly"
    );
    assert_eq!(
        reply.response.vol.as_ref().expect("vol").z,
        k1.response.vol.as_ref().expect("vol").z
    );
    assert_eq!(
        reply.response.vol.as_ref().expect("vol").field,
        k1.response.vol.as_ref().expect("vol").field
    );
    assert_monotone(&reply.max_density_trace);
}

#[test]
fn awkward_partitions_stay_exact() {
    // Three tiers, two slabs: K does not divide the stack (slabs own 2
    // and 1 tiers) and the 2-tier halo is thicker than the thin slab.
    // Requesting more slabs than tiers clamps to one slab per tier.
    let bench = hot_stack(83);
    let req = request(&bench, 4);
    let k1 = VolRouter::in_process(VolRouterConfig {
        slabs: 1,
        ..VolRouterConfig::default()
    })
    .route(&req)
    .expect("K=1 routes");

    for slabs in [2usize, 3, 5] {
        let reply = VolRouter::in_process(VolRouterConfig {
            slabs,
            ..VolRouterConfig::default()
        })
        .route(&req)
        .expect("routes");
        assert_eq!(reply.slabs, slabs.min(bench.layers()));
        assert_eq!(
            reply.response.positions, k1.response.positions,
            "K={slabs} placement diverged from K=1"
        );
        assert_eq!(
            reply.response.vol.as_ref().expect("vol").field,
            k1.response.vol.as_ref().expect("vol").field,
            "K={slabs} field diverged from K=1"
        );
    }
}

#[test]
fn through_stack_macros_wall_every_slab_identically() {
    let bench = VolCircuitSpec::with_size("vol_e2e_macro", 3, 150, 89)
        .with_macros(2)
        .with_hotspot(1)
        .generate();
    let req = request(&bench, 5);
    let k1 = VolRouter::in_process(VolRouterConfig {
        slabs: 1,
        ..VolRouterConfig::default()
    })
    .route(&req)
    .expect("K=1 routes");
    let k3 = VolRouter::in_process(VolRouterConfig {
        slabs: 3,
        ..VolRouterConfig::default()
    })
    .route(&req)
    .expect("K=3 routes");

    assert_eq!(
        k1.response.positions, k3.response.positions,
        "macro walls must carve every slab the same way"
    );
    // Macros never move, whichever slab carried them.
    for m in bench.netlist.macro_ids() {
        assert_eq!(
            k3.response.positions[m.index()],
            bench.placement.xy.get(m),
            "macro {m} moved"
        );
    }
}

#[test]
fn router_refuses_what_it_cannot_run_exactly() {
    let bench = hot_stack(97);
    let router = VolRouter::in_process(VolRouterConfig::default());

    // Spectral stacks jump through time analytically and cannot honor
    // the one-step halo contract.
    let mut spectral = request(&bench, 6);
    spectral.config = spectral.config.with_solver(SolverKind::Spectral);
    assert_eq!(
        router.route(&spectral).unwrap_err(),
        VolRouteError::SpectralUnsupported
    );

    // Volumetric routing is global-diffusion only.
    let mut local = request(&bench, 7);
    local.kind = JobKind::Local;
    assert_eq!(router.route(&local).unwrap_err(), VolRouteError::NotGlobal);

    // A planar request belongs on the ShardRouter.
    let mut planar = request(&bench, 8);
    planar.vol = None;
    assert_eq!(
        router.route(&planar).unwrap_err(),
        VolRouteError::NotVolumetric
    );

    // The router owns splatting and round-chaining, so the extension
    // must be a self-contained full-stack job: no pre-splatted field,
    // no exact-step override, no sub-region.
    let mut pre_split = request(&bench, 9);
    if let Some(v) = pre_split.vol.as_mut() {
        v.exact_steps = Some(1);
    }
    assert!(matches!(
        router.route(&pre_split).unwrap_err(),
        VolRouteError::BadExtension(_)
    ));

    let mut short_z = request(&bench, 10);
    if let Some(v) = short_z.vol.as_mut() {
        v.z.pop();
    }
    assert!(matches!(
        router.route(&short_z).unwrap_err(),
        VolRouteError::BadExtension(_)
    ));
}

#[test]
fn dead_slab_backend_fails_the_whole_job() {
    // Exact stitching is impossible without every region, so unlike the
    // planar ShardRouter there is no degraded partial result.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = l.local_addr().expect("addr");
        drop(l);
        addr
    };
    let bench = hot_stack(101);
    let router = VolRouter::new(
        VolRouterConfig {
            slabs: 2,
            ..VolRouterConfig::default()
        },
        vec![ShardBackend::InProcess, ShardBackend::Tcp(dead)],
    );
    match router.route(&request(&bench, 11)) {
        Err(VolRouteError::Backend { slab: 1, message }) => {
            assert!(message.contains("connect"), "unexpected error: {message}");
        }
        other => panic!("expected a backend failure, got {other:?}"),
    }
}

#[test]
fn volumetric_job_over_tcp_runs_directly_and_omits_the_field() {
    // A client can skip the router and send a full-stack job straight to
    // a server. The reply carries the migrated depths; the evolved field
    // ships back only when the request shipped one in (the router's
    // sub-job shape), so plain clients don't pay for it.
    let bench = hot_stack(103);
    let req = request(&bench, 12);

    let (direct, steps) = direct_run(&bench);

    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connects");
    let reply = client
        .request(&req, PayloadEncoding::Binary)
        .expect("transport");
    server.shutdown();

    let resp = match reply {
        Reply::Ok(resp) => resp,
        Reply::Rejected(e) => panic!("rejected: {} {}", e.code.as_str(), e.message),
    };
    assert!(resp.converged);
    assert_eq!(resp.steps, steps);
    assert_eq!(
        resp.positions,
        direct.xy.as_slice().to_vec(),
        "a wire round trip must not perturb the volumetric run"
    );
    let ext = resp.vol.expect("volumetric reply carries the extension");
    assert_eq!(ext.z, direct.z);
    assert!(ext.field.is_none(), "field not requested, must not ship");
}

#[test]
fn local_job_with_vol_extension_is_rejected_by_the_server() {
    let bench = hot_stack(107);
    let mut req = request(&bench, 13);
    req.kind = JobKind::Local;

    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server starts");
    let mut client = ServeClient::connect(server.local_addr()).expect("connects");
    let reply = client
        .request(&req, PayloadEncoding::Binary)
        .expect("transport");
    server.shutdown();

    match reply {
        Reply::Rejected(e) => {
            assert_eq!(e.code, dpm_serve::ErrorCode::InvalidConfig);
            assert!(
                e.message.contains("global"),
                "unexpected message: {}",
                e.message
            );
        }
        Reply::Ok(_) => panic!("a Local job with a vol extension must be rejected"),
    }
}
