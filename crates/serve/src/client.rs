//! A minimal blocking client for the migration server.
//!
//! One [`ServeClient`] wraps one TCP connection; requests on it are
//! serialized (send a frame, read the reply frame). Use one client per
//! thread for concurrency — the server handles each connection on its
//! own thread.
//!
//! Requests with `progress_stride > 0` stream [`ProgressUpdate`] frames
//! before the terminal reply. [`request`](ServeClient::request) silently
//! skips them (the old-client grace path);
//! [`request_streaming`](ServeClient::request_streaming) hands each one
//! to a callback. [`send_request`](ServeClient::send_request) /
//! [`recv_reply`](ServeClient::recv_reply) split the two halves so
//! several requests can be kept in flight on one connection (pipelining
//! — the server answers in submission order).

//! Tracing: [`with_tracing`](ServeClient::with_tracing) arms the
//! connection with a deterministic trace-id generator. Each request
//! stamped via [`begin_trace`](ServeClient::begin_trace) becomes a
//! `client.request` root span; the span tree the server (or a router)
//! exports in its reply is harvested, re-based onto the root's local
//! start, and accumulated until
//! [`take_trace_spans`](ServeClient::take_trace_spans) drains it.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use dpm_netlist::Netlist;
use dpm_obs::{rebase_spans, SpanRecord, SpanRecorder, TraceContext, TraceIdGen};
use dpm_place::{Die, Placement};

use crate::delta::{encode_delta_request, DeltaJobRequest};
use crate::wire::{
    decode_design_ack, decode_need_design, decode_progress, decode_stats, encode_design_bytes,
    encode_put_design, fnv1a64, read_frame, write_frame, DesignAck, FrameKind, JobRequest,
    NeedDesign, PayloadEncoding, ProgressUpdate, PutDesign, Reply, StatsSnapshot, WireError,
    DEFAULT_MAX_FRAME_LEN,
};

/// What a delta request can come back with: a normal terminal [`Reply`]
/// or a typed [`NeedDesign`] cache miss asking the client to upload the
/// baseline and resend.
#[derive(Debug, Clone)]
pub enum DeltaReply {
    /// The server had the baseline and ran the job.
    Done(Reply),
    /// The baseline is not cached; upload it and resend the delta.
    NeedDesign(NeedDesign),
}

/// A traced request awaiting its terminal reply.
struct PendingTrace {
    id: u64,
    ctx: TraceContext,
    start_ns: u64,
}

/// Per-connection tracing state, armed by
/// [`ServeClient::with_tracing`].
struct Tracing {
    /// Used only as the connection's monotonic clock (its epoch anchors
    /// every root span); nothing is recorded into its ring.
    clock: SpanRecorder,
    ids: TraceIdGen,
    tenant: String,
    pending: VecDeque<PendingTrace>,
    harvested: Vec<SpanRecord>,
}

/// A blocking connection to a [`Server`](crate::Server).
pub struct ServeClient {
    stream: TcpStream,
    max_frame_len: usize,
    tracing: Option<Tracing>,
}

impl ServeClient {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            tracing: None,
        })
    }

    /// Caps the size of reply frames this client will accept.
    pub fn with_max_frame_len(mut self, max: usize) -> Self {
        self.max_frame_len = max;
        self
    }

    /// Arms distributed tracing on this connection. Trace and span ids
    /// are minted deterministically from `seed`, so the same seed and
    /// request sequence reproduce the same ids.
    pub fn with_tracing(mut self, seed: u64) -> Self {
        self.tracing = Some(Tracing {
            clock: SpanRecorder::new(1),
            ids: TraceIdGen::seeded(seed),
            tenant: String::new(),
            pending: VecDeque::new(),
            harvested: Vec::new(),
        });
        self
    }

    /// Labels this traced connection with a tenant name, surfaced by
    /// exporters as a `tenant` arg on root spans. No-op unless
    /// [`with_tracing`](Self::with_tracing) was called first.
    pub fn with_tenant(mut self, tenant: &str) -> Self {
        if let Some(t) = &mut self.tracing {
            t.tenant = tenant.to_string();
        }
        self
    }

    /// The tenant label of a traced connection, if any was set.
    pub fn tenant(&self) -> Option<&str> {
        self.tracing
            .as_ref()
            .filter(|t| !t.tenant.is_empty())
            .map(|t| t.tenant.as_str())
    }

    /// Mints a fresh root [`TraceContext`] and stamps it onto `req`, so
    /// the request joins a new distributed trace. Returns `None` (and
    /// leaves `req` untouched) unless tracing is armed.
    pub fn begin_trace(&mut self, req: &mut JobRequest) -> Option<TraceContext> {
        let root = self.mint_root(req.id)?;
        req.trace = Some(root);
        Some(root)
    }

    /// Like [`begin_trace`](Self::begin_trace) for delta requests. The
    /// root span covers the whole handshake, including a cache-miss
    /// baseline upload and resend.
    pub fn begin_delta_trace(&mut self, req: &mut DeltaJobRequest) -> Option<TraceContext> {
        let root = self.mint_root(req.id)?;
        req.trace = Some(root);
        Some(root)
    }

    fn mint_root(&mut self, id: u64) -> Option<TraceContext> {
        let t = self.tracing.as_mut()?;
        let root = t.ids.root();
        t.pending.push_back(PendingTrace {
            id,
            ctx: root,
            start_ns: t.clock.now_ns(),
        });
        Some(root)
    }

    /// Drains every span harvested from traced requests so far: one
    /// `client.request` root per completed traced request plus the
    /// remote span tree its reply exported, re-based under the root.
    pub fn take_trace_spans(&mut self) -> Vec<SpanRecord> {
        self.tracing
            .as_mut()
            .map(|t| std::mem::take(&mut t.harvested))
            .unwrap_or_default()
    }

    /// Closes out the pending trace a terminal reply belongs to:
    /// records the `client.request` root span and folds the reply's
    /// exported spans (normalized to 0 by the sender) into the
    /// connection's harvest, shifted onto the root's local start.
    fn harvest(&mut self, reply: &mut Reply) {
        let Some(t) = self.tracing.as_mut() else {
            return;
        };
        let reply_id = match reply {
            Reply::Ok(resp) => resp.id,
            Reply::Rejected(e) => e.id,
        };
        let Some(pos) = t.pending.iter().position(|p| p.id == reply_id) else {
            return;
        };
        let pending = t.pending.remove(pos).expect("position is in range");
        t.harvested.push(SpanRecord {
            name: "client.request".into(),
            start_ns: pending.start_ns,
            end_ns: t.clock.now_ns(),
            trace_id: pending.ctx.trace_id,
            span_id: pending.ctx.span_id,
            parent_id: 0,
        });
        if let Reply::Ok(resp) = reply {
            let mut remote = std::mem::take(&mut resp.spans);
            rebase_spans(&mut remote, pending.start_ns);
            t.harvested.append(&mut remote);
        }
    }

    /// Sends one request without waiting for its reply. Pair with
    /// [`recv_reply`](Self::recv_reply); the server replies in
    /// submission order, so N sends followed by N receives keeps N
    /// requests in flight on this connection.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails.
    pub fn send_request(
        &mut self,
        req: &JobRequest,
        encoding: PayloadEncoding,
    ) -> Result<(), WireError> {
        let payload = crate::wire::encode_request(req, encoding);
        write_frame(&mut self.stream, FrameKind::Request, &payload)
    }

    /// Blocks until the next terminal reply arrives, discarding any
    /// interleaved progress frames.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails or a frame is
    /// corrupt.
    pub fn recv_reply(&mut self) -> Result<Reply, WireError> {
        self.recv_reply_with(|_| {})
    }

    /// Blocks until the next terminal reply arrives, handing every
    /// interleaved [`ProgressUpdate`] to `on_progress` first.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails or a frame is
    /// corrupt.
    pub fn recv_reply_with(
        &mut self,
        mut on_progress: impl FnMut(&ProgressUpdate),
    ) -> Result<Reply, WireError> {
        loop {
            let frame = match read_frame(&mut self.stream, self.max_frame_len)? {
                Some(frame) => frame,
                None => {
                    return Err(WireError::Truncated {
                        context: "reply frame (connection closed)",
                    })
                }
            };
            if frame.kind == FrameKind::Progress {
                on_progress(&decode_progress(&frame.payload)?);
                continue;
            }
            let mut reply = Reply::from_frame(&frame)?;
            self.harvest(&mut reply);
            return Ok(reply);
        }
    }

    /// Sends one request and blocks until the terminal reply arrives.
    /// Progress frames the server streams in between are skipped — set
    /// `progress_stride: 0` on the request to suppress them entirely, or
    /// use [`request_streaming`](Self::request_streaming) to observe
    /// them.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails or either frame
    /// is corrupt. Server-side rejections are *not* errors here — they
    /// arrive as [`Reply::Rejected`].
    pub fn request(
        &mut self,
        req: &JobRequest,
        encoding: PayloadEncoding,
    ) -> Result<Reply, WireError> {
        self.send_request(req, encoding)?;
        self.recv_reply()
    }

    /// Sends one request and streams its progress: `on_progress` runs
    /// for every in-flight [`ProgressUpdate`] frame, then the terminal
    /// reply is returned.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails or a frame is
    /// corrupt.
    pub fn request_streaming(
        &mut self,
        req: &JobRequest,
        encoding: PayloadEncoding,
        on_progress: impl FnMut(&ProgressUpdate),
    ) -> Result<Reply, WireError> {
        self.send_request(req, encoding)?;
        self.recv_reply_with(on_progress)
    }

    /// Uploads a baseline design to the server's content-hash cache
    /// (wire v3, control-plane servers only) and returns the ack. The
    /// returned [`DesignAck::hash`] is the key later
    /// [`DeltaJobRequest::baseline`] fields must carry; it always
    /// equals [`design_hash`](crate::wire::design_hash) of the design.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails, a frame is
    /// corrupt, or the server answers with something other than a
    /// design ack (a plain `dpm-serve` [`Server`](crate::Server) does
    /// not speak v3 — use the `dpm-ctl` control plane).
    pub fn put_design(
        &mut self,
        id: u64,
        tenant: &str,
        netlist: &Netlist,
        die: &Die,
        placement: &Placement,
    ) -> Result<DesignAck, WireError> {
        let bytes = encode_design_bytes(netlist, die, placement);
        let expected = fnv1a64(&bytes);
        let put = PutDesign {
            id,
            tenant: tenant.to_string(),
            bytes,
        };
        write_frame(
            &mut self.stream,
            FrameKind::PutDesign,
            &encode_put_design(&put),
        )?;
        loop {
            let frame = match read_frame(&mut self.stream, self.max_frame_len)? {
                Some(frame) => frame,
                None => {
                    return Err(WireError::Truncated {
                        context: "design ack (connection closed)",
                    })
                }
            };
            match frame.kind {
                FrameKind::DesignAck => {
                    let ack = decode_design_ack(&frame.payload)?;
                    if ack.hash != expected {
                        return Err(WireError::Malformed {
                            context: "design ack",
                            message: format!(
                                "server hashed the design to {:016x}, client to {expected:016x}",
                                ack.hash
                            ),
                        });
                    }
                    return Ok(ack);
                }
                FrameKind::Progress => continue,
                FrameKind::Error => {
                    // Surface the server's typed rejection as a wire
                    // error — uploads have no partial-success state.
                    let e = crate::wire::decode_error(&frame.payload)?;
                    return Err(WireError::Malformed {
                        context: "design upload",
                        message: format!("{}: {}", e.code.as_str(), e.message),
                    });
                }
                other => {
                    return Err(WireError::Malformed {
                        context: "design ack",
                        message: format!("expected a design ack, got {other:?}"),
                    })
                }
            }
        }
    }

    /// Sends one delta request without waiting for its reply. Pair with
    /// [`recv_delta_reply`](Self::recv_delta_reply).
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails.
    pub fn send_delta_request(&mut self, req: &DeltaJobRequest) -> Result<(), WireError> {
        write_frame(
            &mut self.stream,
            FrameKind::DeltaRequest,
            &encode_delta_request(req),
        )
    }

    /// Blocks until the next delta-request outcome arrives: a terminal
    /// [`Reply`] or a [`NeedDesign`] cache miss. Interleaved progress
    /// frames go to `on_progress`.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails or a frame is
    /// corrupt.
    pub fn recv_delta_reply(
        &mut self,
        mut on_progress: impl FnMut(&ProgressUpdate),
    ) -> Result<DeltaReply, WireError> {
        loop {
            let frame = match read_frame(&mut self.stream, self.max_frame_len)? {
                Some(frame) => frame,
                None => {
                    return Err(WireError::Truncated {
                        context: "delta reply (connection closed)",
                    })
                }
            };
            match frame.kind {
                FrameKind::Progress => on_progress(&decode_progress(&frame.payload)?),
                FrameKind::NeedDesign => {
                    return Ok(DeltaReply::NeedDesign(decode_need_design(&frame.payload)?))
                }
                _ => {
                    let mut reply = Reply::from_frame(&frame)?;
                    self.harvest(&mut reply);
                    return Ok(DeltaReply::Done(reply));
                }
            }
        }
    }

    /// Sends a delta request and resolves the cache-miss handshake: on
    /// [`NeedDesign`] the provided baseline is uploaded and the delta
    /// resent, so the caller always gets a terminal [`Reply`].
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails, a frame is
    /// corrupt, or the server still misses the baseline after the
    /// upload.
    pub fn request_delta(
        &mut self,
        req: &DeltaJobRequest,
        baseline: (&Netlist, &Die, &Placement),
        mut on_progress: impl FnMut(&ProgressUpdate),
    ) -> Result<Reply, WireError> {
        self.send_delta_request(req)?;
        match self.recv_delta_reply(&mut on_progress)? {
            DeltaReply::Done(reply) => Ok(reply),
            DeltaReply::NeedDesign(need) => {
                let (nl, die, pl) = baseline;
                self.put_design(req.id, &req.tenant, nl, die, pl)?;
                self.send_delta_request(req)?;
                match self.recv_delta_reply(&mut on_progress)? {
                    DeltaReply::Done(reply) => Ok(reply),
                    DeltaReply::NeedDesign(_) => Err(WireError::Malformed {
                        context: "delta reply",
                        message: format!(
                            "server still misses baseline {:016x} after upload",
                            need.hash
                        ),
                    }),
                }
            }
        }
    }

    /// Fetches the server's metrics snapshot: counters, queue depth,
    /// latency histograms, merged kernel timings.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails, the snapshot is
    /// corrupt, or the server answers with something other than a stats
    /// frame.
    pub fn stats(&mut self) -> Result<StatsSnapshot, WireError> {
        write_frame(&mut self.stream, FrameKind::StatsRequest, &[])?;
        loop {
            let frame = match read_frame(&mut self.stream, self.max_frame_len)? {
                Some(frame) => frame,
                None => {
                    return Err(WireError::Truncated {
                        context: "stats frame (connection closed)",
                    })
                }
            };
            match frame.kind {
                FrameKind::Stats => return decode_stats(&frame.payload),
                // Stray progress from an earlier streaming request on
                // this connection; skip it.
                FrameKind::Progress => continue,
                other => {
                    return Err(WireError::Malformed {
                        context: "stats reply",
                        message: format!("expected a stats frame, got {other:?}"),
                    })
                }
            }
        }
    }
}
