//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! density-map manipulation (Eq. 8), velocity interpolation (Eq. 6),
//! boundary rule (paper's mirror vs conservative ghost), and the dynamic
//! density-update period N_U.
//!
//! Besides wall-clock time, each variant's *quality* (total movement) is
//! printed once at startup so the speed/quality trade-off is visible in
//! one place.

use criterion::{criterion_group, criterion_main, Criterion};
use dpm_diffusion::{DiffusionConfig, GlobalDiffusion, LocalDiffusion};
use dpm_gen::{Benchmark, CircuitSpec, InflationSpec};
use dpm_place::MovementStats;
use std::hint::black_box;

fn workload() -> Benchmark {
    let mut bench = CircuitSpec::with_size("ablate1k", 1_000, 99).generate();
    bench.inflate(&InflationSpec::centered(0.15, 0.3, 100));
    bench
}

fn cfg(bench: &Benchmark) -> DiffusionConfig {
    DiffusionConfig::default()
        .with_bin_size(2.5 * bench.die.row_height())
        .with_windows(1, 2)
}

fn report_quality(bench: &Benchmark) {
    let variants: Vec<(&str, DiffusionConfig)> = vec![
        ("baseline(global)", cfg(bench)),
        ("no-manipulation", cfg(bench).with_manipulation(false)),
        ("no-interpolation", cfg(bench).with_interpolation(false)),
        ("paper-boundaries", cfg(bench).with_paper_boundaries(true)),
    ];
    eprintln!("--- ablation quality (total movement after global diffusion) ---");
    for (name, c) in variants {
        let mut p = bench.placement.clone();
        let r = GlobalDiffusion::new(c).run(&bench.netlist, &bench.die, &mut p);
        let m = MovementStats::between(&bench.netlist, &bench.placement, &p);
        eprintln!(
            "{name:>20}: movement {:.1}, steps {}, converged {}",
            m.total, r.steps, r.converged
        );
    }
}

fn bench_manipulation(c: &mut Criterion) {
    let bench = workload();
    report_quality(&bench);
    let mut group = c.benchmark_group("ablate_manipulation");
    group.sample_size(10);
    for (name, on) in [("with_eq8", true), ("without_eq8", false)] {
        let config = cfg(&bench).with_manipulation(on);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = bench.placement.clone();
                black_box(GlobalDiffusion::new(config.clone()).run(&bench.netlist, &bench.die, &mut p))
            });
        });
    }
    group.finish();
}

fn bench_interpolation(c: &mut Criterion) {
    let bench = workload();
    let mut group = c.benchmark_group("ablate_interpolation");
    group.sample_size(10);
    for (name, on) in [("bilinear", true), ("per_bin", false)] {
        let config = cfg(&bench).with_interpolation(on);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = bench.placement.clone();
                black_box(GlobalDiffusion::new(config.clone()).run(&bench.netlist, &bench.die, &mut p))
            });
        });
    }
    group.finish();
}

fn bench_boundary_rule(c: &mut Criterion) {
    let bench = workload();
    let mut group = c.benchmark_group("ablate_boundary_rule");
    group.sample_size(10);
    for (name, paper) in [("conservative", false), ("paper_mirror", true)] {
        let config = cfg(&bench).with_paper_boundaries(paper);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut p = bench.placement.clone();
                black_box(GlobalDiffusion::new(config.clone()).run(&bench.netlist, &bench.die, &mut p))
            });
        });
    }
    group.finish();
}

fn bench_update_period(c: &mut Criterion) {
    let bench = workload();
    let mut group = c.benchmark_group("ablate_update_period");
    group.sample_size(10);
    for n_u in [5usize, 15, 30] {
        let config = cfg(&bench).with_update_period(n_u);
        group.bench_function(format!("n_u_{n_u}"), |b| {
            b.iter(|| {
                let mut p = bench.placement.clone();
                black_box(LocalDiffusion::new(config.clone()).run(&bench.netlist, &bench.die, &mut p))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_manipulation,
    bench_interpolation,
    bench_boundary_rule,
    bench_update_period
);
criterion_main!(benches);
