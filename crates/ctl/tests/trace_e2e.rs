//! Acceptance test for fleet-wide distributed tracing: one volumetric
//! job enters the control plane's front door, fans out over a 2-backend
//! TCP `VolRouter`, and comes back with a single-trace span tree that
//! covers admission, queue wait, both slab dispatches, the halo rounds,
//! and the per-kernel work inside the remote engines — while the traced
//! placement stays bit-identical to the untraced one.

use std::collections::{HashMap, HashSet};

use dpm_diffusion::{DiffusionConfig, SolverKind, VolumetricDiffusion};
use dpm_gen::{VolBenchmark, VolCircuitSpec};
use dpm_obs::{SpanRecord, TraceExporter};
use dpm_serve::wire::{JobKind, JobRequest, PayloadEncoding, VolRequestExt};
use dpm_serve::{Reply, ServeClient, ServeConfig, Server, ShardBackend};

use dpm_ctl::{BackendRegistry, CtlConfig, CtlServer, ExecMode, TenantSpec};

fn hot_stack(seed: u64) -> VolBenchmark {
    VolCircuitSpec::with_size("trace_e2e", 3, 150, seed)
        .with_hotspot(1)
        .generate()
}

/// The z-slab contract is FTCS-only.
fn ftcs() -> DiffusionConfig {
    DiffusionConfig::default().with_solver(SolverKind::Ftcs)
}

fn vol_request(bench: &VolBenchmark, id: u64) -> JobRequest {
    JobRequest {
        id,
        deadline_ms: 0,
        progress_stride: 0,
        kind: JobKind::Global,
        design: "trace_e2e".into(),
        config: ftcs(),
        netlist: bench.netlist.clone(),
        die: bench.die.clone(),
        placement: bench.placement.xy.clone(),
        vol: Some(VolRequestExt {
            nz: bench.layers() as u32,
            z0: 0,
            global_nz: bench.layers() as u32,
            exact_steps: None,
            z: bench.placement.z.clone(),
            field: None,
        }),
        trace: None,
    }
}

/// Count of spans whose name matches `pred`.
fn count(spans: &[SpanRecord], pred: impl Fn(&str) -> bool) -> usize {
    spans.iter().filter(|s| pred(&s.name)).count()
}

#[test]
fn traced_volumetric_job_builds_one_cross_process_span_tree() {
    let bench = hot_stack(7);

    // Ground truth: the direct 3D engine run in this process.
    let mut direct = bench.placement.clone();
    let result = VolumetricDiffusion::new(ftcs(), bench.layers()).run(
        &bench.netlist,
        &bench.die,
        &mut direct,
    );
    assert!(result.steps > 0, "workload must do real work");

    // Fleet: a control plane fronting two real TCP backends, one z-slab
    // each.
    let backend_a = Server::start("127.0.0.1:0", ServeConfig::default()).expect("backend a");
    let backend_b = Server::start("127.0.0.1:0", ServeConfig::default()).expect("backend b");
    let registry = BackendRegistry::new(
        vec![
            ShardBackend::Tcp(backend_a.local_addr()),
            ShardBackend::Tcp(backend_b.local_addr()),
        ],
        vec![],
    );
    let ctl = CtlServer::start(CtlConfig {
        workers: 1,
        tenants: vec![TenantSpec::new("acme", 1, 64)],
        exec: ExecMode::Volumetric {
            slabs: 2,
            halo_layers: 2,
            registry,
        },
        ..CtlConfig::default()
    })
    .expect("ctl starts");

    // Untraced reference through the same fleet.
    let mut plain_client = ServeClient::connect(ctl.local_addr()).expect("connect");
    let plain = plain_client
        .request(&vol_request(&bench, 1), PayloadEncoding::Binary)
        .expect("untraced request");
    let Reply::Ok(plain) = plain else {
        panic!("untraced volumetric job rejected: {plain:?}");
    };
    assert!(plain.spans.is_empty(), "untraced reply must carry no spans");
    assert_eq!(plain.positions, direct.xy.as_slice().to_vec());
    assert_eq!(plain.vol.as_ref().expect("vol reply").z, direct.z);

    // Traced run: same job, tracing armed with a tenant label.
    let mut client = ServeClient::connect(ctl.local_addr())
        .expect("connect")
        .with_tracing(0xACE5_7ACE)
        .with_tenant("acme");
    let mut req = vol_request(&bench, 2);
    let root_ctx = client.begin_trace(&mut req).expect("tracing armed");
    let traced = client
        .request(&req, PayloadEncoding::Binary)
        .expect("traced request");
    let Reply::Ok(traced) = traced else {
        panic!("traced volumetric job rejected: {traced:?}");
    };

    // Tracing is observation-only: bit-identical to the untraced run.
    assert_eq!(
        traced.positions, plain.positions,
        "tracing must not perturb the placement"
    );
    assert_eq!(
        traced.vol.as_ref().expect("vol reply").z,
        plain.vol.as_ref().expect("vol reply").z,
        "tracing must not perturb the depths"
    );

    let spans = client.take_trace_spans();
    assert!(!spans.is_empty(), "traced reply must yield spans");
    ctl.shutdown();
    backend_a.shutdown();
    backend_b.shutdown();

    // One trace id across every hop: client, ctl, router, backends.
    let trace_ids: HashSet<u64> = spans.iter().map(|s| s.trace_id).collect();
    assert_eq!(
        trace_ids,
        HashSet::from([root_ctx.trace_id]),
        "all spans must share the root's trace id"
    );

    // Span ids are unique and nonzero; every parent link lands on a
    // real span, so the records form one tree.
    let mut ids = HashSet::new();
    for s in &spans {
        assert_ne!(s.span_id, 0, "span id must be nonzero: {s:?}");
        assert!(ids.insert(s.span_id), "duplicate span id: {s:?}");
        assert!(s.end_ns >= s.start_ns, "inverted interval: {s:?}");
    }
    let roots: Vec<&SpanRecord> = spans.iter().filter(|s| s.parent_id == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root span: {roots:?}");
    let root = roots[0];
    assert_eq!(root.name, "client.request");
    assert_eq!(root.span_id, root_ctx.span_id);
    for s in &spans {
        if s.parent_id != 0 {
            assert!(ids.contains(&s.parent_id), "dangling parent link: {s:?}");
        }
        assert!(
            s.start_ns >= root.start_ns,
            "span starts before the root: {s:?}"
        );
    }

    // The tree covers every stage of the fleet.
    assert_eq!(
        count(&spans, |n| n == "ctl.admit{tenant=\"acme\"}"),
        1,
        "front-end admission span with the tenant label"
    );
    assert!(
        count(&spans, |n| n == "queue.wait") >= 1,
        "queue-wait span missing"
    );
    assert_eq!(count(&spans, |n| n == "ctl.execute"), 1);
    assert!(
        count(&spans, |n| n == "shard.dispatch") >= 2,
        "both slab dispatches must appear"
    );
    assert!(
        count(&spans, |n| n == "halo.round") >= 1,
        "at least one halo-exchange round"
    );
    assert!(
        count(&spans, |n| n == "job.volumetric") >= 2,
        "both remote backends must contribute job spans"
    );
    assert!(
        count(&spans, |n| n.starts_with("kernel.")) >= 1,
        "per-kernel child spans from the engines"
    );

    // Chrome-trace export: every span becomes one JSONL event, all
    // correlated by the same trace id, with the tenant on the root.
    let mut exporter = TraceExporter::new();
    for s in &spans {
        if s.parent_id == 0 {
            exporter.add_with_args(s, 1, 1, &[("tenant", client.tenant().unwrap())]);
        } else {
            exporter.add(s, 1, 1);
        }
    }
    let jsonl = exporter.to_jsonl();
    assert_eq!(jsonl.lines().count(), spans.len());
    let exported_ids: HashSet<&str> = jsonl
        .match_indices("\"trace_id\":\"")
        .map(|(i, pat)| &jsonl[i + pat.len()..i + pat.len() + 16])
        .collect();
    assert_eq!(
        exported_ids,
        HashSet::from([format!("{:016x}", root_ctx.trace_id).as_str()]),
        "the export must carry exactly one trace id"
    );
    assert!(jsonl.contains("\"tenant\":\"acme\""));
    assert!(jsonl.contains("\"ph\":\"X\""));
}

#[test]
fn traced_planar_job_falls_back_in_process_with_kernel_spans() {
    // A planar job in volumetric exec mode runs on the front-end's own
    // engine; the trace still gets admission, queue, execution, and
    // kernel spans, and the placement matches the untraced run.
    let bench = dpm_gen::CircuitSpec::with_size("trace_e2e_planar", 180, 11).generate();
    let request = |id: u64| JobRequest {
        id,
        deadline_ms: 0,
        progress_stride: 0,
        kind: JobKind::Local,
        design: "trace_e2e_planar".into(),
        config: DiffusionConfig::default(),
        netlist: bench.netlist.clone(),
        die: bench.die.clone(),
        placement: bench.placement.clone(),
        vol: None,
        trace: None,
    };
    let registry = BackendRegistry::new(vec![ShardBackend::InProcess], vec![]);
    let ctl = CtlServer::start(CtlConfig {
        workers: 1,
        tenants: vec![TenantSpec::new("acme", 1, 64)],
        exec: ExecMode::Volumetric {
            slabs: 2,
            halo_layers: 2,
            registry,
        },
        ..CtlConfig::default()
    })
    .expect("ctl starts");

    let mut plain_client = ServeClient::connect(ctl.local_addr()).expect("connect");
    let Reply::Ok(plain) = plain_client
        .request(&request(1), PayloadEncoding::Binary)
        .expect("untraced")
    else {
        panic!("untraced planar job rejected");
    };

    let mut client = ServeClient::connect(ctl.local_addr())
        .expect("connect")
        .with_tracing(42)
        .with_tenant("acme");
    let mut req = request(2);
    client.begin_trace(&mut req).expect("armed");
    let Reply::Ok(traced) = client
        .request(&req, PayloadEncoding::Binary)
        .expect("traced")
    else {
        panic!("traced planar job rejected");
    };
    assert_eq!(traced.positions, plain.positions);

    let spans = client.take_trace_spans();
    ctl.shutdown();
    let by_name: HashMap<&str, usize> = spans.iter().fold(HashMap::new(), |mut m, s| {
        *m.entry(s.name.as_str()).or_default() += 1;
        m
    });
    assert_eq!(by_name.get("client.request"), Some(&1));
    assert_eq!(by_name.get("ctl.admit{tenant=\"acme\"}"), Some(&1));
    assert_eq!(by_name.get("queue.wait"), Some(&1));
    assert_eq!(by_name.get("ctl.execute"), Some(&1));
    assert!(
        spans.iter().any(|s| s.name.starts_with("kernel.")),
        "in-process fallback must still bridge kernel spans: {by_name:?}"
    );
    // No router ran, so no dispatch or halo spans.
    assert_eq!(by_name.get("shard.dispatch"), None);
    assert_eq!(by_name.get("halo.round"), None);
}
