//! Global diffusion-based legalization (paper Algorithm 1).

use crate::advect::advect_cells;
use crate::observe::{DiffusionObserver, KernelEvent, KernelKind, NoopObserver, StepEvent};
use crate::spectral::SpectralSolver;
use crate::{
    manipulate_density, DiffusionConfig, DiffusionEngine, FieldPrecision, SolverKind, StepRecord,
    Telemetry,
};
use dpm_netlist::Netlist;
use dpm_par::ThreadPool;
use dpm_place::{BinGrid, DensityMap, Die, Placement};
use std::time::Instant;

/// Outcome of a diffusion run ([`GlobalDiffusion`] or
/// [`LocalDiffusion`](crate::LocalDiffusion)).
#[derive(Debug, Clone)]
pub struct DiffusionResult {
    /// Total number of diffusion steps executed. Under
    /// [`SolverKind::Spectral`] this counts advect/re-jump iterations:
    /// each one covers a geometrically growing stride of FTCS-step
    /// budget, so the count is roughly logarithmic in the diffusion
    /// time an FTCS run would have stepped through.
    pub steps: usize,
    /// Number of local-diffusion rounds (1 for global diffusion).
    pub rounds: usize,
    /// `true` if the stopping criterion was met before the step/round cap.
    pub converged: bool,
    /// `true` if the run was cut short by a cancellation hook (see
    /// [`GlobalDiffusion::run_with_cancel`]). The placement holds the
    /// partial progress made up to the cancellation point.
    pub cancelled: bool,
    /// Per-step telemetry (movement, overflow — the paper's Figs. 9–10).
    pub telemetry: Telemetry,
}

/// Algorithm 1: global diffusion.
///
/// The whole chip diffuses: the initial density map is (optionally)
/// manipulated so the equilibrium equals the target density (Eq. 8), then
/// the engine alternates velocity computation, cell advection, and FTCS
/// density steps until the maximum *computed* density drops to
/// `d_max + Δ`.
///
/// # Examples
///
/// ```
/// use dpm_geom::Point;
/// use dpm_netlist::{NetlistBuilder, CellKind};
/// use dpm_place::{Die, Placement, DensityMap, BinGrid};
/// use dpm_diffusion::{DiffusionConfig, GlobalDiffusion};
///
/// let mut b = NetlistBuilder::new();
/// for i in 0..24 {
///     b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
/// }
/// let nl = b.build()?;
/// let die = Die::new(96.0, 96.0, 12.0);
/// let mut p = Placement::new(nl.num_cells());
/// for (i, c) in nl.cell_ids().enumerate() {
///     // A dense, slightly staggered pile around (36, 36).
///     p.set(c, Point::new(36.0 + (i % 4) as f64 * 2.5, 36.0 + (i / 4) as f64 * 2.0));
/// }
/// let result = GlobalDiffusion::new(DiffusionConfig::default().with_bin_size(24.0))
///     .run(&nl, &die, &mut p);
/// assert!(result.converged);
/// assert!(result.steps > 0);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GlobalDiffusion {
    cfg: DiffusionConfig,
}

impl GlobalDiffusion {
    /// Creates a global-diffusion runner with the given parameters.
    pub fn new(cfg: DiffusionConfig) -> Self {
        Self { cfg }
    }

    /// The configuration this runner uses.
    pub fn config(&self) -> &DiffusionConfig {
        &self.cfg
    }

    /// Runs global diffusion, mutating `placement` in place.
    ///
    /// Returns telemetry and whether the density target was reached within
    /// [`DiffusionConfig::max_steps`].
    pub fn run(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) -> DiffusionResult {
        self.run_with_cancel(netlist, die, placement, &|| false)
    }

    /// Runs global diffusion with a cancellation hook.
    ///
    /// `should_stop` is polled between diffusion steps; once it returns
    /// `true` the loop exits before the next step, leaving the placement
    /// in its current (partially migrated, still consistent) state and
    /// setting [`DiffusionResult::cancelled`]. This is how `dpm-serve`
    /// enforces per-request deadlines: the hook compares `Instant::now()`
    /// against the request deadline, costing one branch per step.
    ///
    /// A hook that always returns `false` makes this identical to
    /// [`run`](Self::run) — the hook never influences the arithmetic, only
    /// whether the next step happens, so cancellation cannot perturb
    /// determinism.
    pub fn run_with_cancel(
        &self,
        netlist: &Netlist,
        die: &Die,
        placement: &mut Placement,
        should_stop: &dyn Fn() -> bool,
    ) -> DiffusionResult {
        self.run_observed(netlist, die, placement, should_stop, &mut NoopObserver)
    }

    /// Runs global diffusion with a cancellation hook and an attached
    /// [`DiffusionObserver`].
    ///
    /// The observer is notified after every completed step
    /// ([`DiffusionObserver::on_step`]) and every timed kernel
    /// invocation ([`DiffusionObserver::on_kernel`]); it sees only
    /// shared references to post-step state, so attaching one cannot
    /// change the run's arithmetic — `run`, `run_with_cancel` and
    /// `run_observed` produce bit-identical placements for the same
    /// input (see `observed_run_is_bit_identical_to_plain_run`).
    pub fn run_observed(
        &self,
        netlist: &Netlist,
        die: &Die,
        placement: &mut Placement,
        should_stop: &dyn Fn() -> bool,
        observer: &mut dyn DiffusionObserver,
    ) -> DiffusionResult {
        let grid = BinGrid::new(die.outline(), self.cfg.bin_size);
        let pool = ThreadPool::new(self.cfg.threads);
        let splat_start = Instant::now();
        let map = DensityMap::from_placement_with_pool(netlist, placement, grid.clone(), &pool);
        let splat_elapsed = splat_start.elapsed();
        let mut engine = DiffusionEngine::from_density_map(&map);
        engine.set_conservative_boundaries(!self.cfg.paper_boundaries);
        engine.set_threads(self.cfg.threads);
        engine.set_lanes(self.cfg.lanes);
        engine.set_precision(self.cfg.precision);
        engine
            .kernel_timers_mut()
            .splat
            .record(splat_elapsed, pool.threads());
        observer.on_kernel(&KernelEvent {
            kernel: KernelKind::Splat,
            elapsed: splat_elapsed,
            threads: pool.threads(),
        });

        if self.cfg.manipulate {
            let mut d = engine.densities().to_vec();
            let wall = engine.wall_mask().to_vec();
            manipulate_density(&mut d, Some(&wall), self.cfg.d_max);
            engine.load_densities(&d);
        }

        let mut telemetry = Telemetry::new();
        let mut steps = 0;
        let mut converged = engine.max_live_density() <= self.cfg.d_max + self.cfg.delta;
        let mut cancelled = false;

        // The spectral jump models the pure heat equation with
        // zero-flux boundaries: walls/frozen bins break the DCT
        // diagonalization, and the paper's mirror boundary rule is a
        // different operator, so those runs keep the FTCS stepper.
        let use_spectral = self.cfg.solver == SolverKind::Spectral
            && self.cfg.precision == FieldPrecision::F64
            && !self.cfg.paper_boundaries
            && !engine.wall_mask().iter().any(|&w| w)
            && !engine.frozen_mask().iter().any(|&f| f);

        if use_spectral {
            // Closed-form evolution: the field no longer needs
            // stepping — iterations exist only so cells can follow the
            // changing velocity field. Strides double geometrically
            // (in units of the FTCS step budget): early iterations
            // resolve the fast transient finely, later ones jump whole
            // swaths of diffusion time in one inverse transform.
            let tau = self.cfg.dt * self.cfg.diffusivity;
            let mut solver = SpectralSolver::new(engine.nx(), engine.ny(), engine.densities());
            let mut field = vec![0.0; engine.nx() * engine.ny()];
            let mut elapsed_budget = 0usize;
            while !converged && elapsed_budget < self.cfg.max_steps {
                if should_stop() {
                    cancelled = true;
                    break;
                }
                let stride = (1usize << steps.min(20)).min(self.cfg.max_steps - elapsed_budget);
                let velocity_start = Instant::now();
                engine.compute_velocities();
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Velocity,
                    elapsed: velocity_start.elapsed(),
                    threads: pool.threads(),
                });
                let advect_start = Instant::now();
                // One advect call covers the whole stride: velocities
                // act for stride·Δt, still clamped per call by
                // max_step_displacement.
                let mut strided = self.cfg.clone();
                strided.dt = self.cfg.dt * stride as f64;
                let advect = advect_cells(&engine, &grid, netlist, placement, &strided, false);
                let advect_elapsed = advect_start.elapsed();
                engine
                    .kernel_timers_mut()
                    .advect
                    .record(advect_elapsed, pool.threads());
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Advect,
                    elapsed: advect_elapsed,
                    threads: pool.threads(),
                });
                // The jump replaces the FTCS sweep, so its time lands
                // in the ftcs timer slot (recorded with the pool width
                // the run was configured for, though transforms are
                // serial by construction).
                let jump_start = Instant::now();
                elapsed_budget += stride;
                solver.density_at(elapsed_budget as f64 * tau * 0.5, &mut field);
                engine.load_densities(&field);
                let jump_elapsed = jump_start.elapsed();
                engine
                    .kernel_timers_mut()
                    .ftcs
                    .record(jump_elapsed, pool.threads());
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Ftcs,
                    elapsed: jump_elapsed,
                    threads: pool.threads(),
                });
                steps += 1;
                let max_density = engine.max_live_density();
                let record = StepRecord {
                    step: steps - 1,
                    movement: advect.total_movement,
                    computed_overflow: engine.total_overflow(self.cfg.d_max),
                    max_density,
                    measured_overflow: None,
                };
                telemetry.push(record);
                observer.on_step(&StepEvent {
                    record,
                    round: 1,
                    placement,
                    netlist,
                });
                converged = max_density <= self.cfg.d_max + self.cfg.delta;
            }
        } else {
            while !converged && steps < self.cfg.max_steps {
                if should_stop() {
                    cancelled = true;
                    break;
                }
                let velocity_start = Instant::now();
                engine.compute_velocities();
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Velocity,
                    elapsed: velocity_start.elapsed(),
                    threads: pool.threads(),
                });
                let advect_start = Instant::now();
                let advect = advect_cells(&engine, &grid, netlist, placement, &self.cfg, false);
                let advect_elapsed = advect_start.elapsed();
                engine
                    .kernel_timers_mut()
                    .advect
                    .record(advect_elapsed, pool.threads());
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Advect,
                    elapsed: advect_elapsed,
                    threads: pool.threads(),
                });
                let ftcs_start = Instant::now();
                engine.step_density(self.cfg.dt * self.cfg.diffusivity);
                observer.on_kernel(&KernelEvent {
                    kernel: KernelKind::Ftcs,
                    elapsed: ftcs_start.elapsed(),
                    threads: pool.threads(),
                });
                steps += 1;
                let max_density = engine.max_live_density();
                let record = StepRecord {
                    step: steps - 1,
                    movement: advect.total_movement,
                    computed_overflow: engine.total_overflow(self.cfg.d_max),
                    max_density,
                    measured_overflow: None,
                };
                telemetry.push(record);
                observer.on_step(&StepEvent {
                    record,
                    round: 1,
                    placement,
                    netlist,
                });
                converged = max_density <= self.cfg.d_max + self.cfg.delta;
            }
        }

        telemetry.set_kernels(*engine.kernel_timers());
        DiffusionResult {
            steps,
            rounds: 1,
            converged,
            cancelled,
            telemetry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Point;
    use dpm_netlist::{CellKind, NetlistBuilder};
    use dpm_place::MovementStats;

    /// `n` cells clustered in a tight grid of points around `at` (cells
    /// slightly staggered so the velocity field can separate them).
    fn pile(n: usize, at: Point) -> (Netlist, Die, Placement) {
        let mut b = NetlistBuilder::new();
        for i in 0..n {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(96.0, 96.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().enumerate() {
            let dx = (i % 4) as f64 * 2.5;
            let dy = (i / 4) as f64 * 2.0;
            p.set(c, Point::new(at.x + dx, at.y + dy));
        }
        (nl, die, p)
    }

    fn cfg() -> DiffusionConfig {
        DiffusionConfig::default().with_bin_size(24.0)
    }

    #[test]
    fn converges_on_overfull_pile() {
        let (nl, die, mut p) = pile(24, Point::new(36.0, 36.0));
        let r = GlobalDiffusion::new(cfg()).run(&nl, &die, &mut p);
        assert!(r.converged, "did not converge in {} steps", r.steps);
        assert!(r.steps > 0);
        assert_eq!(r.rounds, 1);
        // Real measured density must also be (close to) legal.
        let grid = BinGrid::new(die.outline(), 24.0);
        let dm = DensityMap::from_placement(&nl, &p, grid);
        assert!(
            dm.max_density() < 1.5,
            "measured density {}",
            dm.max_density()
        );
    }

    #[test]
    fn already_legal_placement_is_untouched() {
        // Cells spread out, every bin under target.
        let mut b = NetlistBuilder::new();
        for i in 0..4 {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(96.0, 96.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().enumerate() {
            p.set(c, Point::new(i as f64 * 24.0, i as f64 * 24.0));
        }
        let before = p.clone();
        let r = GlobalDiffusion::new(cfg()).run(&nl, &die, &mut p);
        assert!(r.converged);
        assert_eq!(r.steps, 0);
        assert_eq!(p, before);
    }

    #[test]
    fn overflow_trends_downward() {
        // The computed overflow decreases overall; the paper's boundary
        // rule permits tiny per-step wobble (it is not conservative), so
        // allow 1% per-step noise but require a strict overall decrease.
        let (nl, die, mut p) = pile(24, Point::new(36.0, 36.0));
        let r = GlobalDiffusion::new(cfg()).run(&nl, &die, &mut p);
        let series = r.telemetry.overflow_series();
        assert!(series.len() >= 2);
        for w in series.windows(2) {
            assert!(
                w[1] <= w[0] * 1.01 + 1e-9,
                "overflow jumped: {} -> {}",
                w[0],
                w[1]
            );
        }
        assert!(
            *series.last().expect("non-empty") < series[0],
            "no overall improvement: {series:?}"
        );
    }

    #[test]
    fn manipulation_limits_over_spreading() {
        // Eq. 8 exists to stop diffusion from spreading further than
        // legalization needs: with empty bins lifted to the target
        // density, the run converges once the overflow is absorbed,
        // instead of continuing to flatten the whole die. The observable
        // claim: cells move strictly less with manipulation on, while the
        // measured placement still improves versus the initial pile.
        let (nl, die, mut p1) = pile(24, Point::new(36.0, 36.0));
        let p0 = p1.clone();
        let grid = BinGrid::new(die.outline(), 24.0);
        let initial = DensityMap::from_placement(&nl, &p0, grid.clone()).max_density();

        let r1 = GlobalDiffusion::new(cfg().with_manipulation(true)).run(&nl, &die, &mut p1);
        assert!(r1.converged);
        let m_with = MovementStats::between(&nl, &p0, &p1);
        let final_with = DensityMap::from_placement(&nl, &p1, grid.clone()).max_density();

        let mut p2 = p0.clone();
        let r2 = GlobalDiffusion::new(cfg().with_manipulation(false)).run(&nl, &die, &mut p2);
        assert!(r2.converged);
        let m_without = MovementStats::between(&nl, &p0, &p2);

        assert!(m_with.total > 0.0, "manipulation run must move cells");
        assert!(
            m_with.total < m_without.total,
            "manipulation should limit spreading: {} vs {}",
            m_with.total,
            m_without.total
        );
        assert!(
            final_with < initial,
            "measured density must improve: {final_with} vs {initial}"
        );
    }

    #[test]
    fn cells_diffuse_around_macros() {
        let mut b = NetlistBuilder::new();
        let m = b.add_cell("m", 24.0, 48.0, CellKind::FixedMacro);
        for i in 0..30 {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(96.0, 96.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        p.set(m, Point::new(48.0, 24.0));
        for (i, c) in nl.movable_cell_ids().enumerate() {
            let dx = (i % 3) as f64 * 4.0;
            let dy = (i / 3) as f64 * 1.5;
            p.set(c, Point::new(28.0 + dx, 30.0 + dy));
        }
        let r = GlobalDiffusion::new(cfg()).run(&nl, &die, &mut p);
        assert!(r.steps > 0);
        // No movable cell's center may end inside the macro.
        let macro_rect = p.cell_rect(&nl, m);
        for c in nl.movable_cell_ids() {
            let center = p.cell_center(&nl, c);
            assert!(
                !macro_rect.contains(center)
                    || (center.x - macro_rect.llx).abs() < 1e-9
                    || (macro_rect.urx - center.x).abs() < 1e-9,
                "cell {c} center {center} inside macro {macro_rect}"
            );
        }
    }

    #[test]
    fn cancellation_stops_mid_run_and_preserves_partial_progress() {
        use std::cell::Cell;

        // Reference run to know the uncancelled step count. Pinned to
        // FTCS: the spectral jump converges this tiny workload in a
        // couple of iterations, leaving nothing to cancel mid-run (the
        // spectral cancellation contract is covered on a finer grid by
        // `spectral_cancellation_stops_mid_run`).
        let cfg = || cfg().with_solver(SolverKind::Ftcs);
        let (nl, die, mut p_ref) = pile(24, Point::new(36.0, 36.0));
        let full = GlobalDiffusion::new(cfg()).run(&nl, &die, &mut p_ref);
        assert!(!full.cancelled);
        assert!(full.steps > 2, "workload too small to cancel mid-run");

        // Cancel after two steps.
        let (nl, die, mut p) = pile(24, Point::new(36.0, 36.0));
        let p0 = p.clone();
        let budget = Cell::new(2usize);
        let r = GlobalDiffusion::new(cfg()).run_with_cancel(&nl, &die, &mut p, &|| {
            if budget.get() == 0 {
                true
            } else {
                budget.set(budget.get() - 1);
                false
            }
        });
        assert!(r.cancelled);
        assert!(!r.converged);
        assert_eq!(r.steps, 2);
        assert_eq!(r.telemetry.len(), 2);
        // Partial progress: cells moved, placement not reverted.
        assert!(MovementStats::between(&nl, &p0, &p).total > 0.0);
    }

    #[test]
    fn never_firing_hook_is_identical_to_run() {
        let (nl, die, mut p1) = pile(24, Point::new(36.0, 36.0));
        let (_, _, mut p2) = pile(24, Point::new(36.0, 36.0));
        let r1 = GlobalDiffusion::new(cfg()).run(&nl, &die, &mut p1);
        let r2 = GlobalDiffusion::new(cfg()).run_with_cancel(&nl, &die, &mut p2, &|| false);
        assert_eq!(r1.steps, r2.steps);
        assert!(!r2.cancelled);
        assert_eq!(p1, p2);
    }

    /// Counts every callback and sanity-checks the event payloads.
    #[derive(Default)]
    struct CountingObserver {
        steps: usize,
        rounds: usize,
        kernels: usize,
        last_max_density: f64,
    }

    impl crate::DiffusionObserver for CountingObserver {
        fn on_step(&mut self, event: &crate::StepEvent<'_>) {
            assert_eq!(event.record.step, self.steps, "steps arrive in order");
            self.steps += 1;
            self.last_max_density = event.record.max_density;
        }
        fn on_round(&mut self, _event: &crate::RoundEvent) {
            self.rounds += 1;
        }
        fn on_kernel(&mut self, _event: &crate::KernelEvent) {
            self.kernels += 1;
        }
    }

    #[test]
    fn observed_run_is_bit_identical_to_plain_run() {
        let (nl, die, mut p1) = pile(24, Point::new(36.0, 36.0));
        let (_, _, mut p2) = pile(24, Point::new(36.0, 36.0));
        let r1 = GlobalDiffusion::new(cfg()).run(&nl, &die, &mut p1);
        let mut obs = CountingObserver::default();
        let r2 = GlobalDiffusion::new(cfg()).run_observed(&nl, &die, &mut p2, &|| false, &mut obs);
        assert_eq!(p1, p2, "observer must not perturb the dynamics");
        assert_eq!(r1.steps, r2.steps);
        assert_eq!(obs.steps, r2.steps, "one on_step per step");
        assert_eq!(obs.rounds, 0, "global diffusion emits no round events");
        // One splat plus velocity/advect/ftcs per step.
        assert_eq!(obs.kernels, 1 + 3 * r2.steps);
        assert!(
            obs.last_max_density <= cfg().d_max + cfg().delta,
            "final observed max density is the converged one"
        );
    }

    #[test]
    fn step_cap_is_respected() {
        let (nl, die, mut p) = pile(24, Point::new(36.0, 36.0));
        let r = GlobalDiffusion::new(cfg().with_max_steps(3)).run(&nl, &die, &mut p);
        assert!(r.steps <= 3);
    }

    #[test]
    fn telemetry_length_matches_steps() {
        let (nl, die, mut p) = pile(24, Point::new(36.0, 36.0));
        let r = GlobalDiffusion::new(cfg()).run(&nl, &die, &mut p);
        assert_eq!(r.telemetry.len(), r.steps);
        assert!(r.telemetry.total_movement() > 0.0);
    }

    #[test]
    fn spectral_mode_converges_in_fewer_iterations() {
        let (nl, die, mut p_ftcs) = pile(24, Point::new(36.0, 36.0));
        let ftcs =
            GlobalDiffusion::new(cfg().with_solver(SolverKind::Ftcs)).run(&nl, &die, &mut p_ftcs);
        let (_, _, mut p_spec) = pile(24, Point::new(36.0, 36.0));
        let spec = GlobalDiffusion::new(cfg().with_solver(SolverKind::Spectral)).run(
            &nl,
            &die,
            &mut p_spec,
        );
        assert!(
            spec.converged,
            "spectral did not converge in {} iters",
            spec.steps
        );
        assert!(
            spec.steps < ftcs.steps,
            "spectral iterations ({}) should undercut FTCS steps ({})",
            spec.steps,
            ftcs.steps
        );
        // Both end legal-ish on the real measured density.
        let grid = BinGrid::new(die.outline(), 24.0);
        let dm = DensityMap::from_placement(&nl, &p_spec, grid);
        assert!(dm.max_density() < 1.5, "measured {}", dm.max_density());
    }

    #[test]
    fn spectral_mode_emits_ftcs_shaped_telemetry() {
        let (nl, die, mut p) = pile(24, Point::new(36.0, 36.0));
        let mut obs = CountingObserver::default();
        let r = GlobalDiffusion::new(cfg().with_solver(SolverKind::Spectral).with_threads(2))
            .run_observed(&nl, &die, &mut p, &|| false, &mut obs);
        assert!(r.converged);
        assert_eq!(r.telemetry.len(), r.steps);
        assert_eq!(obs.steps, r.steps);
        assert_eq!(obs.kernels, 1 + 3 * r.steps, "splat + 3 kernels per iter");
        let k = r.telemetry.kernels();
        assert_eq!(k.ftcs.calls as usize, r.steps, "one jump per iteration");
        assert_eq!(k.velocity.calls as usize, r.steps);
        assert_eq!(k.advect.calls as usize, r.steps);
        assert_eq!(k.splat.calls, 1);
        // Overflow trends downward under the jump too (heat semigroup
        // maximum principle).
        let series = r.telemetry.overflow_series();
        assert!(series.len() >= 2);
        assert!(*series.last().expect("non-empty") < series[0]);
    }

    #[test]
    fn spectral_with_macros_falls_back_to_ftcs_bit_identically() {
        let build = || {
            let mut b = NetlistBuilder::new();
            let m = b.add_cell("m", 24.0, 48.0, CellKind::FixedMacro);
            for i in 0..30 {
                b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
            }
            let nl = b.build().expect("valid");
            let die = Die::new(96.0, 96.0, 12.0);
            let mut p = Placement::new(nl.num_cells());
            p.set(m, Point::new(48.0, 24.0));
            for (i, c) in nl.movable_cell_ids().enumerate() {
                let dx = (i % 3) as f64 * 4.0;
                let dy = (i / 3) as f64 * 1.5;
                p.set(c, Point::new(28.0 + dx, 30.0 + dy));
            }
            (nl, die, p)
        };
        let (nl, die, mut p1) = build();
        let r1 = GlobalDiffusion::new(cfg().with_solver(SolverKind::Ftcs)).run(&nl, &die, &mut p1);
        let (_, _, mut p2) = build();
        let r2 =
            GlobalDiffusion::new(cfg().with_solver(SolverKind::Spectral)).run(&nl, &die, &mut p2);
        // The macro raises a wall, so the spectral run must take the
        // masked FTCS path and match the FTCS run exactly.
        assert_eq!(r1.steps, r2.steps);
        assert_eq!(p1, p2, "masked fallback must be bit-identical to FTCS");
    }

    #[test]
    fn spectral_cancellation_stops_mid_run() {
        use std::cell::Cell;
        // A finer grid (8×8 bins) keeps the slowest modes alive long
        // enough that the geometric stride ramp needs several
        // iterations — there is a mid-run to cancel.
        let spectral_cfg = || {
            DiffusionConfig::default()
                .with_bin_size(12.0)
                .with_delta(0.05)
                .with_solver(SolverKind::Spectral)
        };
        let (nl, die, mut p_ref) = pile(24, Point::new(36.0, 36.0));
        let full = GlobalDiffusion::new(spectral_cfg()).run(&nl, &die, &mut p_ref);
        assert!(full.steps > 2, "workload too small to cancel mid-run");
        let (nl, die, mut p) = pile(24, Point::new(36.0, 36.0));
        let budget = Cell::new(2usize);
        let r = GlobalDiffusion::new(spectral_cfg()).run_with_cancel(&nl, &die, &mut p, &|| {
            if budget.get() == 0 {
                true
            } else {
                budget.set(budget.get() - 1);
                false
            }
        });
        assert!(r.cancelled);
        assert_eq!(r.steps, 2);
        assert_eq!(r.telemetry.len(), 2);
    }

    #[test]
    fn kernel_timers_cover_every_step() {
        let (nl, die, mut p) = pile(24, Point::new(36.0, 36.0));
        let r = GlobalDiffusion::new(cfg().with_threads(2)).run(&nl, &die, &mut p);
        let k = r.telemetry.kernels();
        assert_eq!(k.ftcs.calls as usize, r.steps);
        assert_eq!(k.velocity.calls as usize, r.steps);
        assert_eq!(k.advect.calls as usize, r.steps);
        assert_eq!(k.splat.calls, 1, "one initial density splat");
        assert_eq!(k.ftcs.max_threads, 2);
    }
}
