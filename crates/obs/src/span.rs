//! Explicit start/stop spans with a bounded ring-buffer recorder.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct RecorderInner {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

/// A completed span: a named wall-clock interval relative to the
/// recorder's creation instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, as passed to [`SpanRecorder::start`].
    pub name: String,
    /// Nanoseconds from recorder creation to span start.
    pub start_ns: u64,
    /// Nanoseconds from recorder creation to span end; `>= start_ns`.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// Collects completed [`Span`]s into a bounded ring buffer.
///
/// The newest `capacity` spans are retained; when a new span would
/// exceed the capacity, the oldest is discarded and counted in
/// [`SpanRecorder::dropped`]. Memory use is therefore bounded no matter
/// how long a server runs. Clones share the same buffer.
#[derive(Clone)]
pub struct SpanRecorder {
    inner: Arc<RecorderInner>,
}

impl SpanRecorder {
    /// Creates a recorder retaining at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span recorder capacity must be nonzero");
        Self {
            inner: Arc::new(RecorderInner {
                epoch: Instant::now(),
                capacity,
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Starts a span; it is recorded when finished or dropped.
    pub fn start(&self, name: &str) -> Span {
        Span {
            recorder: self.clone(),
            name: name.to_string(),
            start_ns: self.now_ns(),
            finished: false,
        }
    }

    /// Nanoseconds elapsed since the recorder was created.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Number of spans discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Copies out the retained spans, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.ring.lock().unwrap().iter().cloned().collect()
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.inner.ring.lock().unwrap();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.inner.ring.lock().unwrap().len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// An in-flight span. Call [`Span::finish`] to record it explicitly;
/// dropping an unfinished span records it at the drop instant, so early
/// returns and panics still produce a timing.
pub struct Span {
    recorder: SpanRecorder,
    name: String,
    start_ns: u64,
    finished: bool,
}

impl Span {
    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let end_ns = self.recorder.now_ns();
        self.recorder.push(SpanRecord {
            name: std::mem::take(&mut self.name),
            start_ns: self.start_ns,
            end_ns: end_ns.max(self.start_ns),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finished_span_is_recorded_with_ordered_timestamps() {
        let rec = SpanRecorder::new(8);
        let span = rec.start("work");
        std::thread::sleep(std::time::Duration::from_millis(2));
        span.finish();
        let records = rec.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "work");
        assert!(records[0].end_ns >= records[0].start_ns);
        assert!(records[0].duration_ns() >= 1_000_000, "slept ~2ms");
    }

    #[test]
    fn dropping_a_span_records_it() {
        let rec = SpanRecorder::new(8);
        {
            let _span = rec.start("implicit");
        }
        assert_eq!(rec.records().len(), 1);
        assert_eq!(rec.records()[0].name, "implicit");
    }

    #[test]
    fn ring_keeps_newest_and_counts_dropped() {
        let rec = SpanRecorder::new(2);
        for i in 0..5 {
            rec.start(&format!("s{i}")).finish();
        }
        let names: Vec<_> = rec.records().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["s3", "s4"]);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn spans_overlap_freely_across_threads() {
        let rec = SpanRecorder::new(64);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..8 {
                        rec.start(&format!("t{t}.{i}")).finish();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.records().len(), 32);
        assert_eq!(rec.dropped(), 0);
    }
}
