//! Criterion micro-benchmarks of the computational kernels: FTCS density
//! step, velocity computation, bilinear interpolation, density-map
//! construction, and the min-cost-flow solver.

use criterion::{criterion_group, criterion_main, Criterion};
use dpm_diffusion::DiffusionEngine;
use dpm_gen::CircuitSpec;
use dpm_geom::Point;
use dpm_mcmf::FlowNetwork;
use dpm_place::{BinGrid, DensityMap};
use dpm_qplace::CsrMatrix;
use dpm_route::{GlobalRouter, RouterConfig};
use std::hint::black_box;

fn grid_engine(n: usize) -> DiffusionEngine {
    // A deterministic, bumpy density field.
    let density: Vec<f64> = (0..n * n)
        .map(|i| 0.5 + 0.5 * ((i * 2654435761usize) % 1000) as f64 / 1000.0)
        .collect();
    DiffusionEngine::from_raw(n, n, density, None)
}

fn bench_ftcs_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("ftcs_step");
    for n in [32usize, 64, 128] {
        group.bench_function(format!("{n}x{n}"), |b| {
            let mut e = grid_engine(n);
            b.iter(|| {
                e.step_density(black_box(0.2));
            });
        });
    }
    group.finish();
}

fn bench_velocity_field(c: &mut Criterion) {
    let mut group = c.benchmark_group("velocity_field");
    for n in [32usize, 64, 128] {
        group.bench_function(format!("{n}x{n}"), |b| {
            let mut e = grid_engine(n);
            b.iter(|| {
                e.compute_velocities();
            });
        });
    }
    group.finish();
}

fn bench_velocity_interpolation(c: &mut Criterion) {
    let mut e = grid_engine(64);
    e.compute_velocities();
    c.bench_function("velocity_at_1000_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1000 {
                let x = 1.0 + (i % 60) as f64 + 0.37;
                let y = 1.0 + (i / 60) as f64 + 0.71;
                let v = e.velocity_at(black_box(Point::new(x, y)));
                acc += v.x + v.y;
            }
            black_box(acc)
        });
    });
}

fn bench_density_map(c: &mut Criterion) {
    let bench = CircuitSpec::small(7).generate();
    c.bench_function("density_map_1k_cells", |b| {
        b.iter(|| {
            let grid = BinGrid::new(bench.die.outline(), 2.5 * bench.die.row_height());
            black_box(DensityMap::from_placement(&bench.netlist, &bench.placement, grid))
        });
    });
}

fn bench_mcmf(c: &mut Criterion) {
    c.bench_function("mcmf_grid_24x24", |b| {
        b.iter(|| {
            let n = 24usize;
            let s = n * n;
            let t = n * n + 1;
            let mut net = FlowNetwork::new(n * n + 2);
            for k in 0..n {
                for j in 0..n {
                    let i = k * n + j;
                    if (i * 2654435761usize) % 7 == 0 {
                        net.add_edge(s, i, 50, 0);
                    } else {
                        net.add_edge(i, t, 10, 0);
                    }
                    if j + 1 < n {
                        net.add_edge(i, i + 1, i64::MAX / 8, 1);
                        net.add_edge(i + 1, i, i64::MAX / 8, 1);
                    }
                    if k + 1 < n {
                        net.add_edge(i, i + n, i64::MAX / 8, 1);
                        net.add_edge(i + n, i, i64::MAX / 8, 1);
                    }
                }
            }
            black_box(net.min_cost_max_flow(s, t).expect("solves"))
        });
    });
}

fn bench_global_route(c: &mut Criterion) {
    let bench = CircuitSpec::small(11).generate();
    c.bench_function("route_1k_cells", |b| {
        let router = GlobalRouter::new(RouterConfig::default());
        b.iter(|| black_box(router.route(&bench.netlist, &bench.placement, &bench.die)));
    });
}

fn bench_cg_solver(c: &mut Criterion) {
    // Anchored path-graph Laplacian, 2000 unknowns.
    let n = 2000usize;
    let mut builder = CsrMatrix::builder(n);
    for i in 0..n {
        let mut diag = 1e-4;
        if i > 0 {
            builder.add(i, i - 1, -1.0);
            diag += 1.0;
        }
        if i + 1 < n {
            builder.add(i, i + 1, -1.0);
            diag += 1.0;
        }
        if i == 0 || i == n - 1 {
            diag += 1.0;
        }
        builder.add(i, i, diag);
    }
    let m = builder.build();
    let mut rhs = vec![0.0; n];
    rhs[n - 1] = 100.0;
    c.bench_function("cg_chain_2000", |b| {
        b.iter(|| black_box(m.solve_cg(&rhs, &vec![0.0; n], 1e-8, 5000)));
    });
}

criterion_group!(
    benches,
    bench_ftcs_step,
    bench_velocity_field,
    bench_velocity_interpolation,
    bench_density_map,
    bench_mcmf,
    bench_global_route,
    bench_cg_solver
);
criterion_main!(benches);
