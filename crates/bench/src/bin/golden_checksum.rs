//! Golden placement checksum for the CI determinism matrix.
//!
//! Runs one global and one local diffusion migration on fixed generated
//! circuits with [`DiffusionConfig::default`] — which honors the
//! `DPM_THREADS` environment variable — and prints an FNV-1a hash over
//! the exact IEEE-754 bit patterns of every final cell position plus
//! the step/round counts. Because the `dpm-par` decomposition is
//! independent of the worker count, the printed checksum must be
//! identical at any `DPM_THREADS` value; `scripts/ci.sh` runs this
//! binary at 1, 2 and 4 threads and diffs the outputs.
//!
//! Usage: `cargo run --release --bin golden_checksum`

use dpm_diffusion::{DiffusionConfig, GlobalDiffusion, LocalDiffusion};
use dpm_gen::{CircuitSpec, InflationSpec};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn absorb(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn main() {
    let cfg = DiffusionConfig::default();
    eprintln!("golden_checksum: {} worker thread(s)", cfg.threads);

    let mut hash = FNV_OFFSET;
    for (global, cells, seed) in [(true, 400usize, 11u64), (false, 600, 23)] {
        let mut bench = CircuitSpec::with_size("golden", cells, seed).generate();
        bench.inflate(&InflationSpec::centered(0.25, 0.3, seed ^ 0x901D));
        let result = if global {
            GlobalDiffusion::new(cfg.clone()).run(&bench.netlist, &bench.die, &mut bench.placement)
        } else {
            LocalDiffusion::new(cfg.clone()).run(&bench.netlist, &bench.die, &mut bench.placement)
        };
        absorb(&mut hash, &(result.steps as u64).to_le_bytes());
        absorb(&mut hash, &(result.rounds as u64).to_le_bytes());
        for p in bench.placement.as_slice() {
            absorb(&mut hash, &p.x.to_bits().to_le_bytes());
            absorb(&mut hash, &p.y.to_bits().to_le_bytes());
        }
    }
    println!("{hash:016x}");
}
