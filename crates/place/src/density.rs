//! Per-bin placement density.
//!
//! The paper (Section IV-A) defines the density of bin `(j, k)` as the sum
//! of cell-area overlaps with the bin, normalized by the bin area, so a bin
//! exactly filled by cells has density 1.0. Bins covered by fixed macros
//! are marked *fixed*: their density is pinned at 1.0 and the diffusion
//! equation treats them as walls.

use crate::{BinGrid, BinIdx, Placement};
use dpm_netlist::{CellKind, Netlist};
use dpm_par::{parallel_for_chunks, ThreadPool};

/// Bin rows per parallel splat stripe. Fixed (independent of the thread
/// count): each stripe of the density buffer is written by exactly one
/// worker, and within a stripe cells contribute in netlist order — the
/// same per-bin accumulation order as the serial pass, so results are
/// bit-identical at any thread count.
const STRIPE_ROWS: usize = 8;

/// A snapshot of placement density over a [`BinGrid`].
///
/// # Examples
///
/// ```
/// use dpm_geom::Rect;
/// use dpm_geom::Point;
/// use dpm_netlist::{NetlistBuilder, CellKind};
/// use dpm_place::{BinGrid, BinIdx, DensityMap, Placement};
///
/// let mut b = NetlistBuilder::new();
/// let c = b.add_cell("c", 10.0, 10.0, CellKind::Movable);
/// let nl = b.build()?;
/// let mut p = Placement::new(1);
/// p.set(c, Point::new(0.0, 0.0));
///
/// let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
/// let d = DensityMap::from_placement(&nl, &p, grid);
/// assert_eq!(d.density(BinIdx::new(0, 0)), 1.0);
/// assert_eq!(d.density(BinIdx::new(1, 0)), 0.0);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMap {
    grid: BinGrid,
    density: Vec<f64>,
    fixed: Vec<bool>,
}

impl DensityMap {
    /// Fraction of a bin a fixed macro must cover before the bin is treated
    /// as a wall for diffusion purposes.
    pub const FIXED_COVER_THRESHOLD: f64 = 0.5;

    /// Computes the density of every bin from the current placement.
    ///
    /// Movable cells contribute their overlap area; fixed macros mark bins
    /// whose coverage exceeds [`Self::FIXED_COVER_THRESHOLD`] as fixed with
    /// density 1.0 (the paper assumes macros overlap bins completely; the
    /// threshold generalizes that to partial boundary bins). Pads occupy no
    /// area.
    pub fn from_placement(netlist: &Netlist, placement: &Placement, grid: BinGrid) -> Self {
        Self::from_placement_with_pool(netlist, placement, grid, &ThreadPool::single())
    }

    /// Like [`from_placement`](Self::from_placement) but splats movable
    /// cells in parallel on `pool`. Results are bit-identical to the
    /// serial path at every thread count (see [`recompute_with_pool`]).
    ///
    /// [`recompute_with_pool`]: Self::recompute_with_pool
    pub fn from_placement_with_pool(
        netlist: &Netlist,
        placement: &Placement,
        grid: BinGrid,
        pool: &ThreadPool,
    ) -> Self {
        let mut map = Self {
            density: vec![0.0; grid.len()],
            fixed: vec![false; grid.len()],
            grid,
        };
        map.recompute_with_pool(netlist, placement, pool);
        map
    }

    /// Recomputes densities in place from `placement` (the *dynamic density
    /// update* of paper Section VI-B), reusing the existing grid.
    pub fn recompute(&mut self, netlist: &Netlist, placement: &Placement) {
        self.recompute_with_pool(netlist, placement, &ThreadPool::single());
    }

    /// Like [`recompute`](Self::recompute) but splats movable cells in
    /// parallel on `pool`.
    ///
    /// The density buffer is partitioned into fixed stripes of bin rows;
    /// each worker owns whole stripes and scans the cell list, adding only
    /// the overlaps that land in its rows. Every bin therefore accumulates
    /// its contributions in netlist order regardless of the thread count,
    /// making the result bit-identical to the serial pass.
    pub fn recompute_with_pool(
        &mut self,
        netlist: &Netlist,
        placement: &Placement,
        pool: &ThreadPool,
    ) {
        self.density.iter_mut().for_each(|d| *d = 0.0);
        self.fixed.iter_mut().for_each(|f| *f = false);
        let bin_area = self.grid.bin_area();

        // Macros first: they pin bins at density 1 and mark them fixed.
        // There are few macros; this pass stays serial.
        for cell in netlist.macro_ids() {
            let r = placement.cell_rect(netlist, cell);
            let Some((lo, hi)) = self.grid.bins_overlapping(&r) else {
                continue;
            };
            for k in lo.k..=hi.k {
                for j in lo.j..=hi.j {
                    let idx = BinIdx::new(j, k);
                    let cover = self.grid.bin_rect(idx).overlap_area(&r) / bin_area;
                    if cover >= Self::FIXED_COVER_THRESHOLD {
                        let f = self.grid.flat(idx);
                        self.fixed[f] = true;
                        self.density[f] = 1.0;
                    } else {
                        let f = self.grid.flat(idx);
                        self.density[f] += cover;
                    }
                }
            }
        }

        // Movable cells contribute area overlap. Pre-resolve each cell's
        // rect and bin span once, then bucket the cells by the stripes
        // they touch (a small CSR: counts → prefix-sum starts → fill in
        // cell order) so each stripe owner walks only its own cells
        // instead of scanning the whole list. Bucket entries keep cell
        // order, so every bin still accumulates contributions in netlist
        // order — bit-identical to the serial pass — and each stripe's
        // writes stay confined to the chunk it owns, so no merge pass is
        // needed.
        let cells: Vec<(dpm_geom::Rect, BinIdx, BinIdx)> = netlist
            .cell_ids()
            .filter(|&c| netlist.cell(c).kind == CellKind::Movable)
            .filter_map(|c| {
                let r = placement.cell_rect(netlist, c);
                let (lo, hi) = self.grid.bins_overlapping(&r)?;
                Some((r, lo, hi))
            })
            .collect();
        let grid = &self.grid;
        let nx = grid.nx();
        let stripes = grid.ny().div_ceil(STRIPE_ROWS);
        let mut counts = vec![0u32; stripes];
        for (_, lo, hi) in &cells {
            for c in counts
                .iter_mut()
                .take(hi.k / STRIPE_ROWS + 1)
                .skip(lo.k / STRIPE_ROWS)
            {
                *c += 1;
            }
        }
        let mut starts = Vec::with_capacity(stripes + 1);
        let mut acc = 0u32;
        starts.push(0u32);
        for &c in &counts {
            acc += c;
            starts.push(acc);
        }
        let mut fill = starts.clone();
        let mut bucket = vec![0u32; acc as usize];
        for (c, (_, lo, hi)) in cells.iter().enumerate() {
            for s in lo.k / STRIPE_ROWS..=hi.k / STRIPE_ROWS {
                bucket[fill[s] as usize] = c as u32;
                fill[s] += 1;
            }
        }
        parallel_for_chunks(
            pool,
            &mut self.density,
            STRIPE_ROWS * nx,
            |_, range, out| {
                let k0 = range.start / nx;
                let k1 = range.end / nx; // exclusive
                let s = k0 / STRIPE_ROWS;
                for &c in &bucket[starts[s] as usize..starts[s + 1] as usize] {
                    let (r, lo, hi) = &cells[c as usize];
                    for k in lo.k.max(k0)..=hi.k.min(k1 - 1) {
                        for j in lo.j..=hi.j {
                            let idx = BinIdx::new(j, k);
                            // Area stacked on a macro bin is counted too, so
                            // the overflow metrics see it and legalization
                            // must move it off the blockage.
                            out[(k - k0) * nx + j] += grid.bin_rect(idx).overlap_area(r) / bin_area;
                        }
                    }
                }
            },
        );
    }

    /// Incrementally updates the map for one movable cell that moved from
    /// `old_rect` to `new_rect` (both in world coordinates).
    ///
    /// Equivalent to a full [`recompute`](Self::recompute) but `O(bins
    /// touched by the two rectangles)` — the operation incremental
    /// optimizers (and the dynamic density update on large designs) need.
    /// Contributions landing on fixed (macro) bins are tracked the same
    /// way `recompute` tracks them.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_geom::{Point, Rect};
    /// use dpm_netlist::{NetlistBuilder, CellKind, CellId};
    /// use dpm_place::{BinGrid, DensityMap, Placement};
    ///
    /// let mut b = NetlistBuilder::new();
    /// let c = b.add_cell("c", 10.0, 10.0, CellKind::Movable);
    /// let nl = b.build()?;
    /// let mut p = Placement::new(1);
    /// let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
    /// let mut map = DensityMap::from_placement(&nl, &p, grid);
    ///
    /// let old = p.cell_rect(&nl, c);
    /// p.set(c, Point::new(30.0, 30.0));
    /// map.move_cell(&old, &p.cell_rect(&nl, c));
    ///
    /// let fresh = DensityMap::from_placement(&nl, &p, map.grid().clone());
    /// assert_eq!(map.densities(), fresh.densities());
    /// # Ok::<(), dpm_netlist::BuildNetlistError>(())
    /// ```
    pub fn move_cell(&mut self, old_rect: &dpm_geom::Rect, new_rect: &dpm_geom::Rect) {
        self.add_rect(old_rect, -1.0);
        self.add_rect(new_rect, 1.0);
    }

    fn add_rect(&mut self, r: &dpm_geom::Rect, sign: f64) {
        let bin_area = self.grid.bin_area();
        let Some((lo, hi)) = self.grid.bins_overlapping(r) else {
            return;
        };
        for k in lo.k..=hi.k {
            for j in lo.j..=hi.j {
                let idx = BinIdx::new(j, k);
                let f = self.grid.flat(idx);
                self.density[f] += sign * self.grid.bin_rect(idx).overlap_area(r) / bin_area;
            }
        }
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &BinGrid {
        &self.grid
    }

    /// Density of bin `(j, k)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index is out of range.
    #[inline]
    pub fn density(&self, idx: BinIdx) -> f64 {
        self.density[self.grid.flat(idx)]
    }

    /// `true` if the bin is covered by a fixed macro.
    #[inline]
    pub fn is_fixed(&self, idx: BinIdx) -> bool {
        self.fixed[self.grid.flat(idx)]
    }

    /// Raw density buffer, row-major.
    #[inline]
    pub fn densities(&self) -> &[f64] {
        &self.density
    }

    /// Raw fixed-bin mask, row-major.
    #[inline]
    pub fn fixed_mask(&self) -> &[bool] {
        &self.fixed
    }

    /// Maximum bin density over non-fixed bins.
    pub fn max_density(&self) -> f64 {
        self.density
            .iter()
            .zip(&self.fixed)
            .filter(|(_, &f)| !f)
            .map(|(&d, _)| d)
            .fold(0.0, f64::max)
    }

    /// Mean density over non-fixed bins (0 if every bin is fixed).
    pub fn average_density(&self) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (d, f) in self.density.iter().zip(&self.fixed) {
            if !f {
                sum += d;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Total overflow `Σ max(d − d_max, 0)` over non-fixed bins.
    pub fn total_overflow(&self, d_max: f64) -> f64 {
        self.density
            .iter()
            .zip(&self.fixed)
            .filter(|(_, &f)| !f)
            .map(|(&d, _)| (d - d_max).max(0.0))
            .sum()
    }

    /// Maximum overflow `max(d − d_max, 0)` over non-fixed bins.
    pub fn max_overflow(&self, d_max: f64) -> f64 {
        (self.max_density() - d_max).max(0.0)
    }

    /// Windowed average density `d'` per bin: the mean density of all
    /// non-fixed bins within Chebyshev distance `w` (paper Algorithm 2,
    /// analysis window `W1`).
    ///
    /// Fixed bins get the value 1.0.
    pub fn windowed_average(&self, w: usize) -> Vec<f64> {
        let mut out = Vec::new();
        self.windowed_average_into(w, &mut out);
        out
    }

    /// [`windowed_average`](Self::windowed_average) into a caller-owned
    /// buffer, so a loop that re-analyzes every round (local diffusion's
    /// dynamic density update) allocates once instead of per call. The
    /// buffer is resized to fit.
    pub fn windowed_average_into(&self, w: usize, out: &mut Vec<f64>) {
        let nx = self.grid.nx();
        let ny = self.grid.ny();
        out.clear();
        out.resize(self.density.len(), 0.0);
        for k in 0..ny {
            for j in 0..nx {
                let f = k * nx + j;
                if self.fixed[f] {
                    out[f] = 1.0;
                    continue;
                }
                let j_lo = j.saturating_sub(w);
                let j_hi = (j + w).min(nx - 1);
                let k_lo = k.saturating_sub(w);
                let k_hi = (k + w).min(ny - 1);
                let mut sum = 0.0;
                let mut n = 0usize;
                for kk in k_lo..=k_hi {
                    for jj in j_lo..=j_hi {
                        let g = kk * nx + jj;
                        if !self.fixed[g] {
                            sum += self.density[g];
                            n += 1;
                        }
                    }
                }
                out[f] = if n == 0 { 0.0 } else { sum / n as f64 };
            }
        }
    }

    /// Total and maximum local overflow computed from an already-built
    /// windowed-average buffer (as produced by
    /// [`windowed_average_into`](Self::windowed_average_into)), so callers
    /// needing both metrics run the window scan once.
    ///
    /// # Panics
    ///
    /// Panics if `avg` does not cover the grid.
    pub fn local_overflow_from(&self, avg: &[f64], d_max: f64) -> (f64, f64) {
        assert_eq!(
            avg.len(),
            self.density.len(),
            "windowed-average buffer length mismatch"
        );
        let mut total = 0.0;
        let mut max = 0.0f64;
        for (&d, &f) in avg.iter().zip(&self.fixed) {
            if !f {
                let over = (d - d_max).max(0.0);
                total += over;
                max = max.max(over);
            }
        }
        (total, max)
    }

    /// Total *local* overflow: `Σ max(d' − d_max, 0)` with `d'` the
    /// windowed average — the overflow measure the paper uses for the
    /// DIFF(G)/DIFF(L) comparison (Section VII-B).
    pub fn total_local_overflow(&self, w: usize, d_max: f64) -> f64 {
        self.windowed_average(w)
            .iter()
            .zip(&self.fixed)
            .filter(|(_, &f)| !f)
            .map(|(&d, _)| (d - d_max).max(0.0))
            .sum()
    }

    /// Maximum *local* overflow over bins.
    pub fn max_local_overflow(&self, w: usize, d_max: f64) -> f64 {
        self.windowed_average(w)
            .iter()
            .zip(&self.fixed)
            .filter(|(_, &f)| !f)
            .map(|(&d, _)| (d - d_max).max(0.0))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::{Point, Rect};
    use dpm_netlist::NetlistBuilder;

    fn one_cell_world(w: f64, h: f64, at: Point) -> (Netlist, Placement, BinGrid) {
        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", w, h, CellKind::Movable);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(1);
        p.set(c, at);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
        (nl, p, grid)
    }

    #[test]
    fn cell_spanning_bins_splits_area() {
        // 10x10 cell centered on the corner of four bins.
        let (nl, p, grid) = one_cell_world(10.0, 10.0, Point::new(5.0, 5.0));
        let d = DensityMap::from_placement(&nl, &p, grid);
        assert!((d.density(BinIdx::new(0, 0)) - 0.25).abs() < 1e-12);
        assert!((d.density(BinIdx::new(1, 0)) - 0.25).abs() < 1e-12);
        assert!((d.density(BinIdx::new(0, 1)) - 0.25).abs() < 1e-12);
        assert!((d.density(BinIdx::new(1, 1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn total_density_equals_total_area() {
        let (nl, p, grid) = one_cell_world(17.0, 9.0, Point::new(3.0, 12.0));
        let bin_area = grid.bin_area();
        let d = DensityMap::from_placement(&nl, &p, grid);
        let total: f64 = d.densities().iter().sum::<f64>() * bin_area;
        assert!((total - 17.0 * 9.0).abs() < 1e-9);
    }

    #[test]
    fn macro_marks_fixed_bins() {
        let mut b = NetlistBuilder::new();
        let m = b.add_cell("m", 20.0, 20.0, CellKind::FixedMacro);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(1);
        p.set(m, Point::new(10.0, 10.0));
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
        let d = DensityMap::from_placement(&nl, &p, grid);
        for k in 1..=2 {
            for j in 1..=2 {
                assert!(
                    d.is_fixed(BinIdx::new(j, k)),
                    "bin ({j},{k}) should be fixed"
                );
                assert_eq!(d.density(BinIdx::new(j, k)), 1.0);
            }
        }
        assert!(!d.is_fixed(BinIdx::new(0, 0)));
        assert_eq!(d.density(BinIdx::new(0, 0)), 0.0);
    }

    #[test]
    fn overflow_metrics() {
        let (nl, p, grid) = one_cell_world(20.0, 10.0, Point::new(0.0, 0.0));
        // Two bins at 1.0 density each... inflate: place a second density by
        // overlapping cell entirely in one bin? Use overflow vs d_max=0.5.
        let d = DensityMap::from_placement(&nl, &p, grid);
        assert!((d.max_density() - 1.0).abs() < 1e-12);
        assert!((d.total_overflow(0.5) - 1.0).abs() < 1e-12); // 2 bins x 0.5 over
        assert!((d.max_overflow(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(d.total_overflow(1.0), 0.0);
    }

    #[test]
    fn windowed_average_smooths() {
        let (nl, p, grid) = one_cell_world(10.0, 10.0, Point::new(0.0, 0.0));
        let d = DensityMap::from_placement(&nl, &p, grid);
        let w1 = d.windowed_average(1);
        // Bin (0,0) has density 1; its 2x2 neighborhood average is 0.25.
        assert!((w1[0] - 0.25).abs() < 1e-12);
        // Window 0 reproduces raw density.
        let w0 = d.windowed_average(0);
        assert_eq!(w0, d.densities());
    }

    #[test]
    fn recompute_tracks_movement() {
        let (nl, mut p, grid) = one_cell_world(10.0, 10.0, Point::new(0.0, 0.0));
        let mut d = DensityMap::from_placement(&nl, &p, grid);
        assert_eq!(d.density(BinIdx::new(0, 0)), 1.0);
        p.set(dpm_netlist::CellId::new(0), Point::new(30.0, 30.0));
        d.recompute(&nl, &p);
        assert_eq!(d.density(BinIdx::new(0, 0)), 0.0);
        assert_eq!(d.density(BinIdx::new(3, 3)), 1.0);
    }

    #[test]
    fn incremental_move_matches_recompute() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 7.0, 9.0, CellKind::Movable);
        let c = b.add_cell("c", 13.0, 11.0, CellKind::Movable);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(2);
        p.set(a, Point::new(3.0, 4.0));
        p.set(c, Point::new(21.0, 17.0));
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
        let mut map = DensityMap::from_placement(&nl, &p, grid.clone());

        // Move both cells incrementally, including a partially off-grid
        // overlap case.
        for (cell, to) in [(a, Point::new(28.5, 2.5)), (c, Point::new(0.0, 30.0))] {
            let old = p.cell_rect(&nl, cell);
            p.set(cell, to);
            map.move_cell(&old, &p.cell_rect(&nl, cell));
        }
        let fresh = DensityMap::from_placement(&nl, &p, grid);
        for (m, f) in map.densities().iter().zip(fresh.densities()) {
            assert!((m - f).abs() < 1e-12, "incremental {m} vs fresh {f}");
        }
    }

    #[test]
    fn parallel_splat_is_bit_identical_to_serial() {
        // ~3000 cells at ragged fractional positions on a 64x64-bin grid
        // with two macros; every pool size must reproduce the serial
        // density buffer exactly, bit for bit.
        let mut b = NetlistBuilder::new();
        let m1 = b.add_cell("m1", 85.0, 120.0, CellKind::FixedMacro);
        let m2 = b.add_cell("m2", 60.0, 55.0, CellKind::FixedMacro);
        for i in 0..3000 {
            b.add_cell(
                format!("c{i}"),
                3.0 + (i % 7) as f64,
                4.0 + (i % 5) as f64,
                CellKind::Movable,
            );
        }
        let nl = b.build().expect("valid");
        let mut p = Placement::new(nl.num_cells());
        p.set(m1, Point::new(300.0, 200.0));
        p.set(m2, Point::new(100.0, 450.0));
        for (i, c) in nl.movable_cell_ids().enumerate() {
            let h = (i * 2654435761usize) % 1_000_000;
            p.set(
                c,
                Point::new((h % 1000) as f64 * 0.62, (h / 1000) as f64 * 0.62),
            );
        }
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 640.0, 640.0), 10.0);
        let reference = DensityMap::from_placement(&nl, &p, grid.clone());
        for threads in [2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let par = DensityMap::from_placement_with_pool(&nl, &p, grid.clone(), &pool);
            assert_eq!(
                reference.densities(),
                par.densities(),
                "threads = {threads}"
            );
            assert_eq!(
                reference.fixed_mask(),
                par.fixed_mask(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn windowed_average_into_reuses_buffer() {
        let (nl, p, grid) = one_cell_world(10.0, 10.0, Point::new(0.0, 0.0));
        let d = DensityMap::from_placement(&nl, &p, grid);
        let mut buf = vec![99.0; 3]; // wrong size on purpose
        d.windowed_average_into(1, &mut buf);
        assert_eq!(buf, d.windowed_average(1));
        let (total, max) = d.local_overflow_from(&buf, 0.2);
        assert!((total - d.total_local_overflow(1, 0.2)).abs() < 1e-12);
        assert!((max - d.max_local_overflow(1, 0.2)).abs() < 1e-12);
    }

    #[test]
    fn average_density_ignores_fixed() {
        let mut b = NetlistBuilder::new();
        let m = b.add_cell("m", 20.0, 40.0, CellKind::FixedMacro);
        let c = b.add_cell("c", 10.0, 10.0, CellKind::Movable);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(2);
        p.set(m, Point::new(20.0, 0.0)); // right half fixed
        p.set(c, Point::new(0.0, 0.0));
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
        let d = DensityMap::from_placement(&nl, &p, grid);
        // 8 non-fixed bins, one at density 1.0.
        assert!((d.average_density() - 1.0 / 8.0).abs() < 1e-12);
    }
}
