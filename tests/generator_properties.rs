//! Randomized tests over the workload generator: every spec in a
//! realistic parameter box must yield a legal, DAG-structured, on-target
//! benchmark — the foundation the whole evaluation rests on. Driven by
//! the deterministic [`diffuplace::rng::Rng`].

use diffuplace::bookshelf::{load_design, BookshelfDesign};
use diffuplace::gen::{CircuitSpec, InflationSpec, WorkloadStats};
use diffuplace::netlist::levelize;
use diffuplace::place::{check_legality, hpwl};
use diffuplace::rng::Rng;

fn random_spec(rng: &mut Rng) -> CircuitSpec {
    let cells = rng.random_range(200usize..800);
    let util = rng.random_range(0.4..0.85);
    let macros = rng.random_range(0usize..3);
    let cluster = rng.random_range(10usize..80);
    let gap = rng.random_range(1usize..8);
    let seed = rng.random_range(0..1000u64);
    let mut spec = CircuitSpec::with_size("prop", cells, seed)
        .with_utilization(util)
        .with_local_utilization(util.max(0.88))
        .with_clusters_per_gap(gap)
        .with_macros(macros);
    spec.cluster_size = cluster;
    spec
}

#[test]
fn every_spec_generates_a_legal_dag() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xA1 ^ case);
        let spec = random_spec(&mut rng);
        let bench = spec.generate();
        let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 3);
        assert!(report.is_legal(), "case {case}: {report}");
        assert!(levelize(&bench.netlist).is_acyclic(), "case {case}");
        let stats = WorkloadStats::measure(&bench);
        assert!(stats.utilization <= 0.95, "case {case}");
        assert!(
            stats.peak_density <= 1.1,
            "case {case}: peak {}",
            stats.peak_density
        );
    }
}

#[test]
fn inflation_monotone_in_target() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xA2 ^ case);
        let seed = rng.random_range(0..500u64);
        let mk = || CircuitSpec::with_size("mono", 400, seed).generate();
        let mut light = mk();
        let mut heavy = mk();
        let a = light.inflate(&InflationSpec::distributed(0.1, seed ^ 1));
        let b = heavy.inflate(&InflationSpec::distributed(0.4, seed ^ 1));
        assert!(
            b > a,
            "case {case}: heavier target must add more area: {a} vs {b}"
        );
        let sa = WorkloadStats::measure(&light);
        let sb = WorkloadStats::measure(&heavy);
        assert!(sb.overlap_fraction >= sa.overlap_fraction, "case {case}");
    }
}

#[test]
fn bookshelf_round_trip_for_any_spec() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xA3 ^ case);
        let spec = random_spec(&mut rng);
        let bench = spec.generate();
        let d = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
        let loaded = load_design(
            &d.write_nodes(),
            &d.write_nets(),
            &d.write_pl(),
            &d.write_scl(),
        )
        .expect("round trip parses");
        let a = hpwl(&bench.netlist, &bench.placement);
        let b = hpwl(&loaded.netlist, &loaded.placement);
        assert!(
            (a - b).abs() < 1e-6 * a.max(1.0),
            "case {case}: HPWL drift {a} -> {b}"
        );
        assert_eq!(loaded.netlist.num_pins(), bench.netlist.num_pins());
    }
}
