//! Table 04 is produced by the shared Tables II-V run; this thin wrapper
//! exists so every paper table has a named bench target.

fn main() {
    println!("Table 04 is part of the combined Tables II-V run:");
    println!("    cargo run --release -p dpm-bench --bin table_main");
}
