//! Figs. 14–18 — placement and movement-vector plots on ibm01 with
//! CENTER overlap, one SVG per legalizer, written into `results/`.

use dpm_bench::suite::IspdSet;
use dpm_bench::{scale_from_env, write_result_file, Experiment, IBM_DEFAULT_SCALE};
use dpm_gen::suites::ibm_suite;
use dpm_legalize::{DiffusionLegalizer, GemLegalizer, Legalizer, RowDpLegalizer, TetrisLegalizer};
use dpm_viz::SvgScene;

fn main() {
    let scale = scale_from_env(IBM_DEFAULT_SCALE);
    println!("Reproducing Figs. 14-18 at scale {scale} (ibm01, CENTER overlap).");
    let entry = &ibm_suite(scale)[0];
    let base = entry.spec.generate();
    let mut bench = entry.spec.generate();
    bench.inflate(&IspdSet::Center.inflation(entry.spec.seed ^ 0x15bd));
    let exp = Experiment::new(bench, &base);

    // Fig. 14: the original placement.
    let svg = SvgScene::new(exp.bench.die.outline())
        .with_placement(&exp.bench.netlist, &exp.start)
        .render();
    let p = write_result_file("fig14_ibm01_placement.svg", &svg);
    println!("wrote {}", p.display());

    // Figs. 15-18: movement vectors per legalizer. The paper plots moves
    // over 50 tracks; scale the threshold with the die.
    let threshold = exp.bench.die.outline().width() / 40.0;
    let legalizers: Vec<(&str, Box<dyn Legalizer>)> = vec![
        (
            "fig15_diffusion",
            Box::new(DiffusionLegalizer::local_default()),
        ),
        ("fig16_capo_like", Box::new(TetrisLegalizer::new())),
        ("fig17_fengshui_like", Box::new(RowDpLegalizer::new())),
        ("fig18_gem_like", Box::new(GemLegalizer::new())),
    ];
    for (name, legalizer) in legalizers {
        let (result, after) = exp.run_keeping_placement(legalizer.as_ref());
        let svg = SvgScene::new(exp.bench.die.outline())
            .with_placement(&exp.bench.netlist, &after)
            .with_movements(&exp.bench.netlist, &exp.start, &after, threshold)
            .render();
        let path = write_result_file(&format!("{name}_ibm01_center.svg"), &svg);
        println!(
            "wrote {} (max move {:.1}, moved {} cells, legal: {})",
            path.display(),
            result.movement.max,
            result.movement.moved,
            result.metrics.legal
        );
    }
}
