#!/usr/bin/env bash
# Hermetic CI gate: formatting, lints, build and tests, all offline.
#
# The workspace has zero registry dependencies by design — everything
# resolves from path crates — so `--offline` must always succeed. Any
# registry access here is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --release --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --release --offline --workspace

echo "CI green."
