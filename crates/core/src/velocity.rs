//! Bilinear velocity interpolation (paper Eq. 6).

use dpm_geom::Vector;

/// Bilinearly interpolates a velocity from the four nearest bin-center
/// velocities.
///
/// `v00` is the velocity at center `(p, q)`, `v10` at `(p+1, q)`, `v01`
/// at `(p, q+1)`, `v11` at `(p+1, q+1)`; `alpha`/`beta` are the fractional
/// offsets of the query point past the `(p, q)` center, both in `[0, 1)`.
///
/// This is Eq. 6 of the paper:
///
/// ```text
/// v = v00 + α(v10 − v00) + β(v01 − v00) + αβ(v00 + v11 − v10 − v01)
/// ```
///
/// # Examples
///
/// The paper's worked example at `(x, y) = (1.6, 1.8)` with `α = 0.1`,
/// `β = 0.3`. (Evaluating Eq. 6 with the paper's inputs gives
/// `(0.46375, 0.36425)`; the paper's prose prints `(0.45625, 0.40175)`,
/// which does not satisfy its own equation — we implement the equation.)
///
/// ```
/// use dpm_geom::Vector;
/// use dpm_diffusion::interpolate_velocity;
///
/// let v = interpolate_velocity(
///     Vector::new(0.5, 0.6),      // v(1,1)
///     Vector::new(0.25, -0.25),   // v(2,1)
///     Vector::new(0.5, 0.0),      // v(1,2)
///     Vector::new(-0.125, 0.125), // v(2,2)
///     0.1,
///     0.3,
/// );
/// assert!((v.x - 0.46375).abs() < 1e-12);
/// assert!((v.y - 0.36425).abs() < 1e-12);
/// ```
#[inline]
pub fn interpolate_velocity(
    v00: Vector,
    v10: Vector,
    v01: Vector,
    v11: Vector,
    alpha: f64,
    beta: f64,
) -> Vector {
    debug_assert!((0.0..=1.0).contains(&alpha), "alpha {alpha} outside [0,1]");
    debug_assert!((0.0..=1.0).contains(&beta), "beta {beta} outside [0,1]");
    let ab = alpha * beta;
    Vector::new(
        v00.x
            + alpha * (v10.x - v00.x)
            + beta * (v01.x - v00.x)
            + ab * (v00.x + v11.x - v10.x - v01.x),
        v00.y
            + alpha * (v10.y - v00.y)
            + beta * (v01.y - v00.y)
            + ab * (v00.y + v11.y - v10.y - v01.y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_reproduce_inputs() {
        let v00 = Vector::new(1.0, 2.0);
        let v10 = Vector::new(-1.0, 0.5);
        let v01 = Vector::new(0.0, -2.0);
        let v11 = Vector::new(3.0, 3.0);
        assert_eq!(interpolate_velocity(v00, v10, v01, v11, 0.0, 0.0), v00);
        assert_eq!(interpolate_velocity(v00, v10, v01, v11, 1.0, 0.0), v10);
        assert_eq!(interpolate_velocity(v00, v10, v01, v11, 0.0, 1.0), v01);
        assert_eq!(interpolate_velocity(v00, v10, v01, v11, 1.0, 1.0), v11);
    }

    #[test]
    fn center_is_average() {
        let v00 = Vector::new(1.0, 0.0);
        let v10 = Vector::new(0.0, 1.0);
        let v01 = Vector::new(-1.0, 0.0);
        let v11 = Vector::new(0.0, -1.0);
        let v = interpolate_velocity(v00, v10, v01, v11, 0.5, 0.5);
        assert!((v.x - 0.0).abs() < 1e-12);
        assert!((v.y - 0.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_field_is_invariant() {
        let u = Vector::new(0.7, -0.3);
        for &(a, b) in &[(0.0, 0.0), (0.3, 0.9), (0.99, 0.01), (0.5, 0.5)] {
            let v = interpolate_velocity(u, u, u, u, a, b);
            assert!((v.x - u.x).abs() < 1e-12);
            assert!((v.y - u.y).abs() < 1e-12);
        }
    }

    #[test]
    fn linear_in_alpha_along_bottom_edge() {
        let v00 = Vector::new(0.0, 0.0);
        let v10 = Vector::new(2.0, -4.0);
        let v = interpolate_velocity(v00, v10, Vector::ZERO, Vector::ZERO, 0.25, 0.0);
        assert!((v.x - 0.5).abs() < 1e-12);
        assert!((v.y + 1.0).abs() < 1e-12);
    }

    #[test]
    fn result_is_inside_convex_hull_componentwise() {
        let v00 = Vector::new(1.0, -1.0);
        let v10 = Vector::new(2.0, 0.0);
        let v01 = Vector::new(-1.0, 3.0);
        let v11 = Vector::new(0.5, 1.0);
        let v = interpolate_velocity(v00, v10, v01, v11, 0.4, 0.7);
        assert!(v.x <= 2.0 && v.x >= -1.0);
        assert!(v.y <= 3.0 && v.y >= -1.0);
    }
}
