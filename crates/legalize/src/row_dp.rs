//! `FengShui`-like row legalization: per-row keep/push dynamic
//! programming.
//!
//! Agnihotri et al.'s fractional-cut placement (ICCAD 2003, reference \[5\]
//! of the paper — the algorithm FengShui's legalization uses) processes
//! rows bottom-up: each row keeps its cells in x order, and when the row
//! is over capacity a dynamic program decides which cells stay and which
//! are pushed into the row above. We implement exactly that keep/push
//! knapsack (maximize kept area within the row capacity, discretized to a
//! fixed number of buckets), followed by the order-preserving detailed
//! placement shared with the other legalizers.

use crate::detailed::detailed_legalize;
use crate::occupancy::row_segments;
use crate::Legalizer;
use dpm_geom::{Point, Rect};
use dpm_netlist::{CellId, Netlist};
use dpm_place::{Die, Placement};

/// The row-DP legalizer (`FengShui`-like in the ISPD comparison tables).
///
/// # Examples
///
/// ```
/// use dpm_gen::{CircuitSpec, InflationSpec};
/// use dpm_legalize::{RowDpLegalizer, Legalizer};
///
/// let mut bench = CircuitSpec::small(23).generate();
/// bench.inflate(&InflationSpec::random_width(0.1, 1.6, 6));
/// let outcome = RowDpLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
/// assert!(outcome.is_legal);
/// ```
#[derive(Debug, Clone)]
pub struct RowDpLegalizer {
    /// Capacity discretization for the keep/push knapsack.
    buckets: usize,
    /// Fraction of each row's capacity the DP may fill (headroom for the
    /// final in-row placement).
    fill_target: f64,
}

impl Default for RowDpLegalizer {
    fn default() -> Self {
        Self {
            buckets: 1024,
            fill_target: 0.98,
        }
    }
}

impl RowDpLegalizer {
    /// Creates the legalizer with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Knapsack: choose the subset of `(cell, width)` to keep within
    /// `capacity`, maximizing kept width. Returns the *kept* flags.
    fn keep_set(&self, widths: &[f64], capacity: f64) -> Vec<bool> {
        let n = widths.len();
        let total: f64 = widths.iter().sum();
        if total <= capacity {
            return vec![true; n];
        }
        let bucket = (capacity / self.buckets as f64).max(1e-9);
        let cap = self.buckets;
        // dp[c] = best kept width using a prefix of cells at capacity c.
        let mut dp = vec![f64::NEG_INFINITY; cap + 1];
        dp[0] = 0.0;
        let mut choice = vec![false; n * (cap + 1)];
        for (i, &w) in widths.iter().enumerate() {
            let need = (w / bucket).ceil() as usize;
            if need > cap {
                continue;
            }
            for c in (need..=cap).rev() {
                let cand = dp[c - need] + w;
                if cand > dp[c] {
                    dp[c] = cand;
                    choice[i * (cap + 1) + c] = true;
                }
            }
        }
        // Backtrack from the best capacity.
        let mut best_c = 0;
        for c in 0..=cap {
            if dp[c] > dp[best_c] {
                best_c = c;
            }
        }
        let mut kept = vec![false; n];
        let mut c = best_c;
        for i in (0..n).rev() {
            if choice[i * (cap + 1) + c] {
                kept[i] = true;
                c -= (widths[i] / bucket).ceil() as usize;
            }
        }
        kept
    }
}

impl Legalizer for RowDpLegalizer {
    fn name(&self) -> &str {
        "ROWDP"
    }

    fn legalize_in_place(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) {
        let macros: Vec<Rect> = netlist
            .macro_ids()
            .map(|m| placement.cell_rect(netlist, m))
            .collect();
        let segments = row_segments(die, &macros);
        let capacities: Vec<f64> = segments
            .iter()
            .map(|segs| segs.iter().map(|&(s, e)| e - s).sum::<f64>() * self.fill_target)
            .collect();

        // Initial row assignment by nearest row.
        let n_rows = die.num_rows();
        let mut rows: Vec<Vec<(CellId, f64)>> = vec![Vec::new(); n_rows];
        for cell in netlist.movable_cell_ids() {
            let pos = placement.get(cell);
            let row = die.row_of_y(die.snap_y(pos.y) + 1e-9);
            rows[row].push((cell, pos.x));
        }

        // Bottom-up: keep what fits, push the rest one row up.
        for r in 0..n_rows {
            rows[r].sort_by(|a, b| a.1.total_cmp(&b.1));
            let widths: Vec<f64> = rows[r]
                .iter()
                .map(|&(c, _)| netlist.cell(c).width)
                .collect();
            let kept = self.keep_set(&widths, capacities[r]);
            if r + 1 < n_rows {
                let mut stay = Vec::with_capacity(rows[r].len());
                let mut push = Vec::new();
                for (i, entry) in rows[r].drain(..).enumerate() {
                    if kept[i] {
                        stay.push(entry);
                    } else {
                        push.push(entry);
                    }
                }
                rows[r] = stay;
                rows[r + 1].extend(push);
            }
        }
        // Whatever spilled past the top row cascades back down into any
        // remaining space (second pass, top-down).
        let mut loads: Vec<f64> = rows
            .iter()
            .map(|cells| cells.iter().map(|&(c, _)| netlist.cell(c).width).sum())
            .collect();
        for r in (0..n_rows).rev() {
            while loads[r] > capacities[r] && !rows[r].is_empty() {
                // Push the widest cell to the nearest row with room.
                let (idx, _) = rows[r]
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        netlist
                            .cell(a.1 .0)
                            .width
                            .total_cmp(&netlist.cell(b.1 .0).width)
                    })
                    .expect("non-empty");
                let (cell, x) = rows[r].swap_remove(idx);
                let w = netlist.cell(cell).width;
                loads[r] -= w;
                let target = (0..n_rows)
                    .filter(|&t| t != r && loads[t] + w <= capacities[t])
                    .min_by_key(|&t| t.abs_diff(r));
                match target {
                    Some(t) => {
                        rows[t].push((cell, x));
                        loads[t] += w;
                    }
                    None => {
                        // Truly full die: put it back and give up; the
                        // final detailed pass reports the residue.
                        rows[r].push((cell, x));
                        loads[r] += w;
                        break;
                    }
                }
            }
        }

        // Commit row choices, then let the shared detailed placer do the
        // order-preserving in-row placement.
        for (r, cells) in rows.iter().enumerate() {
            let y = die.row(r).y;
            for &(cell, x) in cells {
                placement.set(cell, Point::new(x, y));
            }
        }
        detailed_legalize(netlist, die, placement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util;

    #[test]
    fn keep_set_keeps_everything_when_it_fits() {
        let dp = RowDpLegalizer::new();
        let kept = dp.keep_set(&[5.0, 5.0, 5.0], 20.0);
        assert_eq!(kept, vec![true, true, true]);
    }

    #[test]
    fn keep_set_respects_capacity() {
        let dp = RowDpLegalizer::new();
        let widths = vec![6.0, 6.0, 6.0, 6.0];
        let kept = dp.keep_set(&widths, 13.0);
        let kept_width: f64 = widths
            .iter()
            .zip(&kept)
            .filter(|(_, &k)| k)
            .map(|(&w, _)| w)
            .sum();
        assert!(kept_width <= 13.0 + 1e-9);
        assert!(kept_width >= 12.0 - 1e-9, "knapsack left too much behind");
    }

    #[test]
    fn keep_set_maximizes_area() {
        let dp = RowDpLegalizer::new();
        // Capacity 10: the single 10-wide cell beats two 4-wide ones.
        let kept = dp.keep_set(&[4.0, 10.0, 4.0], 10.5);
        let kept_width: f64 = [4.0, 10.0, 4.0]
            .iter()
            .zip(&kept)
            .filter(|(_, &k)| k)
            .map(|(&w, _)| w)
            .sum();
        assert!(kept_width >= 10.0 - 1e-9, "kept {kept_width}");
    }

    #[test]
    fn legalizes_inflated_benchmark() {
        let mut bench = test_util::inflated_small(71);
        let outcome =
            RowDpLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn legalizes_hotspot_benchmark() {
        let mut bench = test_util::hotspot_small(72);
        let outcome =
            RowDpLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn respects_macros() {
        let mut bench = test_util::with_macros(73);
        let outcome =
            RowDpLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }
}
