//! Tables II–V in one run: TWL, worst slack, FOM, and CPU time of the
//! four legalizers (GREED, FLOW, DIFF(G), DIFF(L)) over the ckt suite.

use dpm_bench::suite::{print_ckt_metric, run_ckt_comparison, CktRow};
use dpm_bench::{fnum, print_table, scale_from_env, RunResult, TextTable, CKT_DEFAULT_SCALE};

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Tables II-V at scale {scale}.");
    let rows = run_ckt_comparison(scale);

    print_ckt_metric(
        "Table II: TWL",
        &rows,
        |r| r.metrics.twl,
        |row| row.base.twl,
    );
    print_ckt_metric(
        "Table III: worst slack",
        &rows,
        |r| r.metrics.wns,
        |row| row.base.wns,
    );
    print_ckt_metric(
        "Table IV: FOM",
        &rows,
        |r| r.metrics.fom,
        |row| row.base.fom,
    );

    // Table V: CPU, normalized to GREED's average like the paper's
    // bottom row.
    let mut t = TextTable::new(["testcase", "GREED", "FLOW", "DIFF(G)", "DIFF(L)"]);
    let mut sums = [0.0f64; 4];
    for row in &rows {
        let mut cells = vec![row.name.clone()];
        for (i, r) in row.results.iter().enumerate() {
            sums[i] += r.runtime.as_secs_f64();
            cells.push(format!("{:.3}", r.runtime.as_secs_f64()));
        }
        t.row(cells);
    }
    let mut avg = vec!["Avg (vs GREED)".to_string()];
    for s in sums {
        avg.push(fnum(s / sums[0].max(1e-12)));
    }
    t.row(avg);
    print_table(
        "Table V: CPU time (s) — paper averages: 1 / 0.86 / 1.68 / 0.77",
        &t,
    );

    print_ckt_metric(
        "Congestion (peak routed usage/capacity; paper reports aggregate improvement only)",
        &rows,
        |r| r.metrics.congestion,
        |row| row.base.congestion,
    );

    summary(&rows);
}

/// The paper's "relative Δ" rows: how much of the best baseline's metric
/// degradation each diffusion variant recovers, averaged over circuits.
fn summary(rows: &[CktRow]) {
    type Get = fn(&RunResult) -> f64;
    type Base = fn(&CktRow) -> f64;
    let metrics: [(&str, Get, Base, &str); 3] = [
        (
            "TWL",
            |r| r.metrics.twl,
            |row| row.base.twl,
            "paper: 16.8% / 35.0%",
        ),
        (
            "WNS",
            |r| -r.metrics.wns,
            |row| -row.base.wns,
            "paper: 48.0% / 62.9%",
        ),
        (
            "FOM",
            |r| -r.metrics.fom,
            |row| -row.base.fom,
            "paper: 36.3% / 62.2%",
        ),
    ];
    let mut t = TextTable::new([
        "metric",
        "DIFF(G) rel-delta(%)",
        "DIFF(L) rel-delta(%)",
        "G wins",
        "L wins",
        "paper",
    ]);
    for (label, get, base, paper) in metrics {
        let mut dg = 0.0;
        let mut dl = 0.0;
        let mut n = 0.0;
        let mut wins_g = 0;
        let mut wins_l = 0;
        for row in rows {
            let best_baseline = row.results[0..2]
                .iter()
                .map(get)
                .fold(f64::INFINITY, f64::min);
            let degr = best_baseline - base(row);
            // The paper's relative Δ is only defined when the best
            // baseline actually degraded the metric; a baseline that
            // *improved* on Base flips the denominator's sign and turns
            // the average into noise.
            if degr <= 1e-9 {
                continue;
            }
            dg += (degr - (get(&row.results[2]) - base(row))) / degr;
            dl += (degr - (get(&row.results[3]) - base(row))) / degr;
            if get(&row.results[2]) < best_baseline {
                wins_g += 1;
            }
            if get(&row.results[3]) < best_baseline {
                wins_l += 1;
            }
            n += 1.0;
        }
        if n == 0.0 {
            continue;
        }
        t.row([
            label.to_string(),
            fnum(dg / n * 100.0),
            fnum(dl / n * 100.0),
            format!("{wins_g}/{}", n as usize),
            format!("{wins_l}/{}", n as usize),
            paper.to_string(),
        ]);
    }
    print_table("Relative improvement vs best of GREED/FLOW", &t);
}
