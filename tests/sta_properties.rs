//! Randomized tests of the timing substrate, driven by the deterministic
//! [`diffuplace::rng::Rng`].

use diffuplace::geom::Point;
use diffuplace::netlist::{CellId, CellKind, Netlist, NetlistBuilder, PinDir};
use diffuplace::place::Placement;
use diffuplace::rng::Rng;
use diffuplace::sta::{DelayModel, TimingAnalyzer};

/// Random layered DAG: `layers` layers of `width` cells, edges only
/// between consecutive layers, plus a pad start.
fn layered(
    layers: usize,
    width: usize,
    edges: &[(usize, usize)],
    positions: &[(f64, f64)],
) -> (Netlist, Placement) {
    let mut b = NetlistBuilder::new();
    let pad = b.add_cell("pad", 1.0, 1.0, CellKind::Pad);
    let mut ids = vec![Vec::new(); layers];
    for (l, layer_ids) in ids.iter_mut().enumerate() {
        for i in 0..width {
            layer_ids.push(b.add_cell(format!("g{l}_{i}"), 4.0, 12.0, CellKind::Movable));
        }
    }
    // Pad feeds the whole first layer.
    let n = b.add_net("pn");
    b.connect(pad, n, PinDir::Output, 0.0, 0.0);
    for &c in &ids[0] {
        b.connect(c, n, PinDir::Input, 0.0, 6.0);
    }
    // Inter-layer edges, one net each.
    for (e, &(from, to)) in edges.iter().enumerate() {
        let l = e % (layers - 1);
        let a = ids[l][from % width];
        let c = ids[l + 1][to % width];
        let net = b.add_net(format!("e{e}"));
        b.connect(a, net, PinDir::Output, 4.0, 6.0);
        b.connect(c, net, PinDir::Input, 0.0, 6.0);
    }
    let nl = b.build().expect("valid");
    let mut p = Placement::new(nl.num_cells());
    for (i, &(x, y)) in positions.iter().enumerate() {
        if i + 1 < nl.num_cells() {
            p.set(CellId::new((i + 1) as u32), Point::new(x, y));
        }
    }
    (nl, p)
}

fn random_edges(rng: &mut Rng, lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let n = rng.random_range(lo..hi);
    (0..n)
        .map(|_| (rng.random_range(0usize..4), rng.random_range(0usize..4)))
        .collect()
}

fn random_positions(rng: &mut Rng, n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|_| (rng.random_range(0.0..300.0), rng.random_range(0.0..300.0)))
        .collect()
}

/// WNS is non-decreasing in the clock period, and FOM is never better
/// than what WNS alone implies.
#[test]
fn wns_monotone_in_clock() {
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0xC1 ^ case);
        let edges = random_edges(&mut rng, 4, 20);
        let positions = random_positions(&mut rng, 12);
        let clock = rng.random_range(1.0..50.0);
        let (nl, p) = layered(3, 4, &edges, &positions);
        let sta = TimingAnalyzer::new(&nl, DelayModel::default());
        let a = sta.analyze(&nl, &p, clock);
        let b = sta.analyze(&nl, &p, clock + 5.0);
        assert!(
            (b.wns - (a.wns + 5.0)).abs() < 1e-9,
            "case {case}: slack must shift exactly with the clock"
        );
        assert!(a.fom <= 0.0, "case {case}");
        assert!(
            a.fom <= a.wns.min(0.0) + 1e-12,
            "case {case}: fom {} vs wns {}",
            a.fom,
            a.wns
        );
        assert!(
            a.fom >= a.wns.min(0.0) * a.endpoints as f64 - 1e-9,
            "case {case}: fom bounded by min(wns,0)×endpoints"
        );
    }
}

/// At the critical-path clock, WNS is exactly zero (and nothing fails).
#[test]
fn critical_clock_closes_timing() {
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0xC2 ^ case);
        let edges = random_edges(&mut rng, 4, 20);
        let positions = random_positions(&mut rng, 12);
        let (nl, p) = layered(3, 4, &edges, &positions);
        let sta = TimingAnalyzer::new(&nl, DelayModel::default());
        let cp = sta.critical_path_delay(&nl, &p);
        let r = sta.analyze(&nl, &p, cp);
        assert!(
            r.wns.abs() < 1e-9,
            "case {case}: wns {} at critical clock",
            r.wns
        );
        assert_eq!(r.failing_endpoints, 0, "case {case}");
        let tight = sta.analyze(&nl, &p, cp - 0.1);
        assert!(tight.failing_endpoints >= 1, "case {case}");
    }
}

/// Moving any single cell cannot improve the critical path below the
/// zero-wirelength bound (sum of cell delays along some path), and the
/// analyzer never panics on arbitrary positions.
#[test]
fn critical_path_bounded_below() {
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0xC3 ^ case);
        let edges = random_edges(&mut rng, 4, 16);
        let positions = random_positions(&mut rng, 12);
        let (nl, p) = layered(3, 4, &edges, &positions);
        let sta = TimingAnalyzer::new(&nl, DelayModel::default());
        let cp = sta.critical_path_delay(&nl, &p);
        // Zero-wire lower bound: the pad's delay alone.
        assert!(
            cp >= 1.0 - 1e-9,
            "case {case}: cp {cp} below intrinsic delay"
        );
        // And the reported critical path is consistent: its cells exist.
        for c in sta.critical_path(&nl, &p) {
            assert!(c.index() < nl.num_cells(), "case {case}");
        }
    }
}
