//! Typed identifiers for netlist objects.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index, for use with parallel arrays.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// The raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            #[inline]
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a [`Cell`](crate::Cell) within its [`Netlist`](crate::Netlist).
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_netlist::CellId;
    /// let id = CellId::new(3);
    /// assert_eq!(id.index(), 3);
    /// assert_eq!(format!("{id}"), "c3");
    /// ```
    CellId,
    "c"
);

id_type!(
    /// Identifier of a [`Net`](crate::Net) within its [`Netlist`](crate::Netlist).
    NetId,
    "n"
);

id_type!(
    /// Identifier of a [`Pin`](crate::Pin) within its [`Netlist`](crate::Netlist).
    PinId,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(CellId::new(1));
        s.insert(CellId::new(1));
        s.insert(CellId::new(2));
        assert_eq!(s.len(), 2);
        assert!(CellId::new(1) < CellId::new(2));
    }

    #[test]
    fn display_is_tagged() {
        assert_eq!(NetId::new(7).to_string(), "n7");
        assert_eq!(PinId::new(0).to_string(), "p0");
        assert_eq!(format!("{:?}", CellId::new(5)), "c5");
    }

    #[test]
    fn usize_conversion() {
        let id = NetId::new(9);
        let i: usize = id.into();
        assert_eq!(i, 9);
        assert_eq!(id.raw(), 9);
    }
}
