//! The migration server: admission control, worker pool, deadlines,
//! graceful shutdown.
//!
//! ## Life of a request
//!
//! 1. A connection thread reads one frame, decodes the [`JobRequest`]
//!    and validates its [`DiffusionConfig`] — malformed or invalid
//!    requests are answered immediately with an error frame.
//! 2. The request is offered to the **bounded** admission queue. A full
//!    queue answers [`ErrorCode::Overloaded`] at once (explicit
//!    backpressure; the server never buffers without bound).
//! 3. A worker pops the job, checks the deadline (queue wait counts
//!    against it), and runs global or local diffusion with a
//!    cancellation hook that compares `Instant::now()` against the
//!    deadline between diffusion steps.
//! 4. The reply — legalized placement, or a partial-progress
//!    [`ErrorCode::DeadlineExpired`] — travels back to the connection
//!    thread, which writes it to the socket. Every outcome is appended
//!    to the JSONL request log.
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops accepting connections, closes the queue
//! (no new admissions), lets the workers drain every admitted job, joins
//! all threads and flushes the log. In-flight requests complete; clients
//! that race the shutdown get [`ErrorCode::ShuttingDown`].

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dpm_diffusion::{DiffusionConfig, GlobalDiffusion, LocalDiffusion};
use dpm_place::MovementStats;

use crate::log::{RequestLog, RequestRecord};
use crate::queue::{BoundedQueue, PushError};
use crate::wire::{
    read_frame, write_frame, ErrorCode, ErrorReply, FrameKind, JobKind, JobRequest, JobResponse,
    Reply, WireError, DEFAULT_MAX_FRAME_LEN,
};

/// How often blocked connection reads wake up to check for shutdown.
const READ_POLL: Duration = Duration::from_millis(25);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Capacity of the admission queue; beyond it requests are rejected
    /// with [`ErrorCode::Overloaded`].
    pub queue_capacity: usize,
    /// Number of worker threads running diffusion jobs.
    pub workers: usize,
    /// Cap on `DiffusionConfig::threads` per job (requests asking for
    /// more are clamped; results are bit-identical either way).
    pub job_threads: usize,
    /// Deadline applied to requests that carry `deadline_ms == 0`.
    /// `0` here means such requests run without a deadline.
    pub default_deadline_ms: u32,
    /// Largest accepted frame payload, bytes.
    pub max_frame_len: usize,
    /// Where to append the JSONL request log (`None` disables logging).
    pub log_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            workers: 2,
            job_threads: 1,
            default_deadline_ms: 0,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            log_path: None,
        }
    }
}

/// Monotonic outcome counters, readable at any time via
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests that decoded successfully.
    pub received: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Jobs a worker started running.
    pub started: u64,
    /// Jobs that finished with a successful response.
    pub served: u64,
    /// Requests rejected because the queue was full.
    pub overloaded: u64,
    /// Requests rejected by config validation.
    pub invalid_config: u64,
    /// Frames or payloads that failed to decode.
    pub malformed: u64,
    /// Jobs whose deadline expired (in queue or mid-diffusion).
    pub deadline_expired: u64,
    /// Requests refused because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Jobs that failed unexpectedly (engine panic).
    pub internal_errors: u64,
}

#[derive(Default)]
struct Counters {
    received: AtomicU64,
    admitted: AtomicU64,
    started: AtomicU64,
    served: AtomicU64,
    overloaded: AtomicU64,
    invalid_config: AtomicU64,
    malformed: AtomicU64,
    deadline_expired: AtomicU64,
    rejected_shutdown: AtomicU64,
    internal_errors: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeStats {
            received: get(&self.received),
            admitted: get(&self.admitted),
            started: get(&self.started),
            served: get(&self.served),
            overloaded: get(&self.overloaded),
            invalid_config: get(&self.invalid_config),
            malformed: get(&self.malformed),
            deadline_expired: get(&self.deadline_expired),
            rejected_shutdown: get(&self.rejected_shutdown),
            internal_errors: get(&self.internal_errors),
        }
    }
}

/// One admitted job traveling from a connection thread to a worker.
struct Job {
    req: JobRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply_tx: mpsc::Sender<Reply>,
}

struct Shared {
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    counters: Counters,
    log: RequestLog,
    job_threads: usize,
    max_frame_len: usize,
    default_deadline_ms: u32,
}

/// A running migration server. Dropping it performs a graceful shutdown.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error, or the error opening the log file.
    pub fn start(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let log = match &cfg.log_path {
            Some(path) => RequestLog::to_file(path)?,
            None => RequestLog::disabled(),
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity.max(1)),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            log,
            job_threads: cfg.job_threads.max(1),
            max_frame_len: cfg.max_frame_len,
            default_deadline_ms: cfg.default_deadline_ms,
        });

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || acceptor_loop(listener, shared, conns))
        };
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();

        Ok(Self {
            addr: local,
            shared,
            acceptor: Some(acceptor),
            workers,
            conns,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current outcome counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot()
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Gracefully shuts down: stop accepting, drain every admitted job,
    /// join all threads, flush the log. Returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // No new admissions; workers drain what was admitted, then exit.
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Connection threads notice the flag at their next read poll.
        let handles: Vec<_> = {
            let mut guard = self.conns.lock().expect("conn registry poisoned");
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.shared.log.flush();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_impl();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The shutdown wake-up (or a client racing it).
                    break;
                }
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || connection_loop(stream, shared));
                conns.lock().expect("conn registry poisoned").push(handle);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure; keep serving.
            }
        }
    }
}

fn write_reply(stream: &mut TcpStream, reply: &Reply) -> Result<(), WireError> {
    let (kind, payload) = reply.to_frame_bytes();
    write_frame(stream, kind, &payload)
}

fn rejection(id: u64, code: ErrorCode, message: impl Into<String>) -> Reply {
    Reply::Rejected(ErrorReply {
        id,
        code,
        steps: 0,
        rounds: 0,
        message: message.into(),
    })
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn connection_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));

    loop {
        let frame = match read_frame(&mut stream, shared.max_frame_len) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // client closed cleanly
            Err(WireError::Io(ref e)) if is_timeout(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(WireError::Io(_)) => break, // connection torn down
            Err(e) => {
                // Framing is corrupt; the stream position is unknown, so
                // answer once and drop the connection.
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                shared.log.write(&RequestRecord {
                    id: 0,
                    outcome: ErrorCode::Malformed.as_str(),
                    kind: "-",
                    ..Default::default()
                });
                let _ = write_reply(
                    &mut stream,
                    &rejection(0, ErrorCode::Malformed, e.to_string()),
                );
                break;
            }
        };

        if frame.kind != FrameKind::Request {
            shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            let reply = rejection(0, ErrorCode::Malformed, "expected a request frame");
            if write_reply(&mut stream, &reply).is_err() {
                break;
            }
            continue;
        }

        let req = match crate::wire::decode_request(&frame.payload) {
            Ok(req) => req,
            Err(e) => {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                shared.log.write(&RequestRecord {
                    id: 0,
                    outcome: ErrorCode::Malformed.as_str(),
                    kind: "-",
                    ..Default::default()
                });
                let reply = rejection(0, ErrorCode::Malformed, e.to_string());
                if write_reply(&mut stream, &reply).is_err() {
                    break;
                }
                continue;
            }
        };
        shared.counters.received.fetch_add(1, Ordering::Relaxed);
        let id = req.id;
        let kind_str = kind_name(req.kind);
        let cells = req.netlist.num_cells();

        if let Err(e) = req.config.validate() {
            shared
                .counters
                .invalid_config
                .fetch_add(1, Ordering::Relaxed);
            shared.log.write(&RequestRecord {
                id,
                outcome: ErrorCode::InvalidConfig.as_str(),
                kind: kind_str,
                cells,
                ..Default::default()
            });
            let reply = rejection(id, ErrorCode::InvalidConfig, e.to_string());
            if write_reply(&mut stream, &reply).is_err() {
                break;
            }
            continue;
        }

        let deadline_ms = if req.deadline_ms == 0 {
            shared.default_deadline_ms
        } else {
            req.deadline_ms
        };
        let enqueued = Instant::now();
        let deadline =
            (deadline_ms > 0).then(|| enqueued + Duration::from_millis(u64::from(deadline_ms)));
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            req,
            enqueued,
            deadline,
            reply_tx,
        };

        let reply = match shared.queue.try_push(job) {
            Ok(()) => {
                shared.counters.admitted.fetch_add(1, Ordering::Relaxed);
                // The worker (or the drain during shutdown) always
                // answers; a dropped sender means the worker died.
                reply_rx.recv().unwrap_or_else(|_| {
                    rejection(id, ErrorCode::Internal, "worker terminated without a reply")
                })
            }
            Err(PushError::Full(_)) => {
                shared.counters.overloaded.fetch_add(1, Ordering::Relaxed);
                shared.log.write(&RequestRecord {
                    id,
                    outcome: ErrorCode::Overloaded.as_str(),
                    kind: kind_str,
                    cells,
                    ..Default::default()
                });
                rejection(
                    id,
                    ErrorCode::Overloaded,
                    "admission queue full; retry later",
                )
            }
            Err(PushError::Closed(_)) => {
                shared
                    .counters
                    .rejected_shutdown
                    .fetch_add(1, Ordering::Relaxed);
                shared.log.write(&RequestRecord {
                    id,
                    outcome: ErrorCode::ShuttingDown.as_str(),
                    kind: kind_str,
                    cells,
                    ..Default::default()
                });
                rejection(id, ErrorCode::ShuttingDown, "server is shutting down")
            }
        };
        if write_reply(&mut stream, &reply).is_err() {
            break;
        }
    }
}

fn kind_name(kind: JobKind) -> &'static str {
    match kind {
        JobKind::Global => "global",
        JobKind::Local => "local",
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(job) = shared.queue.pop_wait() {
        let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
        shared.counters.started.fetch_add(1, Ordering::Relaxed);
        let Job {
            req,
            deadline,
            reply_tx,
            ..
        } = job;
        let JobRequest {
            id,
            kind,
            mut config,
            netlist,
            die,
            placement,
            ..
        } = req;
        let kind_str = kind_name(kind);
        let cells = netlist.num_cells();
        config.threads = config.threads.clamp(1, shared.job_threads);

        // Queue wait counts against the deadline.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            shared
                .counters
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            shared.log.write(&RequestRecord {
                id,
                outcome: ErrorCode::DeadlineExpired.as_str(),
                kind: kind_str,
                cells,
                queue_ns,
                ..Default::default()
            });
            let _ = reply_tx.send(rejection(
                id,
                ErrorCode::DeadlineExpired,
                "deadline expired while queued",
            ));
            continue;
        }

        let before = placement.clone();
        let mut after = placement;
        let t0 = Instant::now();
        let should_stop = move || deadline.is_some_and(|d| Instant::now() >= d);
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_job(kind, &config, &netlist, &die, &mut after, &should_stop)
        }));
        let service_ns = t0.elapsed().as_nanos() as u64;

        let reply = match run {
            Err(_) => {
                shared
                    .counters
                    .internal_errors
                    .fetch_add(1, Ordering::Relaxed);
                shared.log.write(&RequestRecord {
                    id,
                    outcome: ErrorCode::Internal.as_str(),
                    kind: kind_str,
                    cells,
                    queue_ns,
                    service_ns,
                    ..Default::default()
                });
                rejection(id, ErrorCode::Internal, "diffusion engine panicked")
            }
            Ok(result) => {
                let movement = MovementStats::between(&netlist, &before, &after);
                let record = RequestRecord {
                    id,
                    outcome: if result.cancelled {
                        ErrorCode::DeadlineExpired.as_str()
                    } else {
                        "ok"
                    },
                    kind: kind_str,
                    cells,
                    queue_ns,
                    service_ns,
                    steps: result.steps as u64,
                    rounds: result.rounds as u64,
                    converged: result.converged,
                    movement_total: movement.total,
                    movement_max: movement.max,
                };
                shared.log.write(&record);
                if result.cancelled {
                    shared
                        .counters
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    Reply::Rejected(ErrorReply {
                        id,
                        code: ErrorCode::DeadlineExpired,
                        steps: result.steps as u64,
                        rounds: result.rounds as u64,
                        message: "deadline expired mid-diffusion; placement progress discarded"
                            .into(),
                    })
                } else {
                    shared.counters.served.fetch_add(1, Ordering::Relaxed);
                    Reply::Ok(JobResponse {
                        id,
                        converged: result.converged,
                        steps: result.steps as u64,
                        rounds: result.rounds as u64,
                        total_movement: movement.total,
                        max_movement: movement.max,
                        queue_ns,
                        service_ns,
                        positions: after.as_slice().to_vec(),
                    })
                }
            }
        };
        let _ = reply_tx.send(reply);
    }
}

fn run_job(
    kind: JobKind,
    config: &DiffusionConfig,
    netlist: &dpm_netlist::Netlist,
    die: &dpm_place::Die,
    placement: &mut dpm_place::Placement,
    should_stop: &dyn Fn() -> bool,
) -> dpm_diffusion::DiffusionResult {
    match kind {
        JobKind::Global => GlobalDiffusion::new(config.clone()).run_with_cancel(
            netlist,
            die,
            placement,
            should_stop,
        ),
        JobKind::Local => LocalDiffusion::new(config.clone()).run_with_cancel(
            netlist,
            die,
            placement,
            should_stop,
        ),
    }
}
