//! The migration server: admission control, worker pool, deadlines,
//! streaming progress, graceful shutdown.
//!
//! ## Life of a request
//!
//! 1. A connection thread reads one frame, decodes the [`JobRequest`]
//!    and validates its [`DiffusionConfig`] — malformed or invalid
//!    requests are answered immediately with an error frame.
//! 2. The request is offered to the **bounded** admission queue. A full
//!    queue answers [`ErrorCode::Overloaded`] at once (explicit
//!    backpressure; the server never buffers without bound).
//! 3. A worker pops the job, checks the deadline (queue wait counts
//!    against it), and runs global or local diffusion with a
//!    cancellation hook that compares `Instant::now()` against the
//!    deadline between diffusion steps. When the request asked for a
//!    progress stride, a [`DiffusionObserver`] on the run streams
//!    [`ProgressUpdate`] frames back through the connection thread
//!    every `progress_stride` steps — the observer only reads post-step
//!    state, so streaming never changes the result.
//! 4. The reply — legalized placement, or a partial-progress
//!    [`ErrorCode::DeadlineExpired`] — travels back to the connection
//!    thread, which writes it to the socket. Every outcome is appended
//!    to the JSONL request log.
//!
//! ## Observability
//!
//! All server metrics live in one `dpm-obs` [`Registry`]: outcome
//! counters, a queue-depth gauge, and queue/service/end-to-end latency
//! histograms. Kernel timings of completed runs are merged into one
//! [`KernelTimers`]. Clients fetch everything as a [`StatsSnapshot`]
//! over the wire (a `StatsRequest` frame); in-process callers use
//! [`Server::stats`], [`Server::stats_snapshot`] or the text exposition
//! from [`Server::metrics_text`]. Recent jobs are also recorded as
//! spans in a bounded [`SpanRecorder`] ([`Server::spans`]).
//!
//! ## Shutdown
//!
//! [`Server::shutdown`] stops accepting connections, closes the queue
//! (no new admissions), lets the workers drain every admitted job, joins
//! all threads and flushes the log. In-flight requests complete; clients
//! that race the shutdown get [`ErrorCode::ShuttingDown`].

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dpm_diffusion::{
    DiffusionConfig, DiffusionObserver, DiffusionResult, GlobalDiffusion, KernelTimers,
    LocalDiffusion, NoopObserver, SolverKind, SpanObserver, StepEvent, VolJobSpec, VolPlacement,
    VolumetricDiffusion,
};
use dpm_obs::{
    normalize_spans, Counter, Gauge, Histogram, Registry, SpanRecord, SpanRecorder, TraceIdGen,
};
use dpm_place::{BinGrid, MovementStats};

use crate::log::{RequestLog, RequestRecord};
use crate::queue::{BoundedQueue, PushError};
use crate::wire::{
    encode_progress, encode_stats, read_frame, write_frame_versioned, ErrorCode, ErrorReply,
    FrameKind, JobKind, JobRequest, JobResponse, ProgressUpdate, Reply, StatsSnapshot,
    VolRequestExt, VolResponseExt, WireError, DEFAULT_MAX_FRAME_LEN, VERSION,
};

/// How often blocked connection reads wake up to check for shutdown.
const READ_POLL: Duration = Duration::from_millis(25);

/// How many recent job spans the server retains for inspection.
const SPAN_CAPACITY: usize = 256;

/// Salt mixed into the inherited span id when seeding a job's span-id
/// generator, so sibling jobs under one client connection mint distinct
/// id streams even though each inherits ids from the same root context.
const TRACE_SEED_SALT: u64 = 0x5E7E_D0C5_B10B_5EED;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Capacity of the admission queue; beyond it requests are rejected
    /// with [`ErrorCode::Overloaded`].
    pub queue_capacity: usize,
    /// Number of worker threads running diffusion jobs.
    pub workers: usize,
    /// Cap on `DiffusionConfig::threads` per job (requests asking for
    /// more are clamped; results are bit-identical either way).
    pub job_threads: usize,
    /// Deadline applied to requests that carry `deadline_ms == 0`.
    /// `0` here means such requests run without a deadline.
    pub default_deadline_ms: u32,
    /// Largest accepted frame payload, bytes.
    pub max_frame_len: usize,
    /// Where to append the JSONL request log (`None` disables logging).
    pub log_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            workers: 2,
            job_threads: 1,
            default_deadline_ms: 0,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            log_path: None,
        }
    }
}

/// Monotonic outcome counters, readable at any time via
/// [`Server::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests that decoded successfully.
    pub received: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Jobs a worker started running.
    pub started: u64,
    /// Jobs that finished with a successful response.
    pub served: u64,
    /// Requests rejected because the queue was full.
    pub overloaded: u64,
    /// Requests rejected by config validation.
    pub invalid_config: u64,
    /// Frames or payloads that failed to decode.
    pub malformed: u64,
    /// Jobs whose deadline expired (in queue or mid-diffusion).
    pub deadline_expired: u64,
    /// Requests refused because the server was shutting down.
    pub rejected_shutdown: u64,
    /// Jobs that failed unexpectedly (engine panic).
    pub internal_errors: u64,
    /// Progress frames streamed to clients.
    pub progress_frames: u64,
}

/// Every server metric, registered once in a shared [`Registry`] so the
/// counters the wire-level [`StatsSnapshot`] reports and the text
/// exposition of [`Server::metrics_text`] are the same instruments.
struct Metrics {
    registry: Registry,
    queue_depth: Gauge,
    received: Counter,
    admitted: Counter,
    started: Counter,
    served: Counter,
    overloaded: Counter,
    invalid_config: Counter,
    malformed: Counter,
    deadline_expired: Counter,
    rejected_shutdown: Counter,
    internal_errors: Counter,
    progress_frames: Counter,
    queue_hist: Histogram,
    service_hist: Histogram,
    e2e_hist: Histogram,
    kernels: Mutex<KernelTimers>,
}

impl Metrics {
    fn new() -> Self {
        let registry = Registry::new();
        let bounds = Histogram::latency_bounds();
        Self {
            queue_depth: registry.gauge("queue_depth"),
            received: registry.counter("requests_received_total"),
            admitted: registry.counter("requests_admitted_total"),
            started: registry.counter("jobs_started_total"),
            served: registry.counter("jobs_served_total"),
            overloaded: registry.counter("rejected_overloaded_total"),
            invalid_config: registry.counter("rejected_invalid_config_total"),
            malformed: registry.counter("rejected_malformed_total"),
            deadline_expired: registry.counter("deadline_expired_total"),
            rejected_shutdown: registry.counter("rejected_shutdown_total"),
            internal_errors: registry.counter("internal_errors_total"),
            progress_frames: registry.counter("progress_frames_total"),
            queue_hist: registry.histogram("queue_wait_ns", &bounds),
            service_hist: registry.histogram("service_ns", &bounds),
            e2e_hist: registry.histogram("e2e_ns", &bounds),
            kernels: Mutex::new(KernelTimers::default()),
            registry,
        }
    }

    fn snapshot(&self) -> ServeStats {
        ServeStats {
            received: self.received.get(),
            admitted: self.admitted.get(),
            started: self.started.get(),
            served: self.served.get(),
            overloaded: self.overloaded.get(),
            invalid_config: self.invalid_config.get(),
            malformed: self.malformed.get(),
            deadline_expired: self.deadline_expired.get(),
            rejected_shutdown: self.rejected_shutdown.get(),
            internal_errors: self.internal_errors.get(),
            progress_frames: self.progress_frames.get(),
        }
    }
}

/// What a worker sends back to the connection thread: zero or more
/// progress updates, then exactly one terminal reply.
enum WorkerMsg {
    Progress(ProgressUpdate),
    Done(Reply),
}

/// One admitted job traveling from a connection thread to a worker.
struct Job {
    req: JobRequest,
    enqueued: Instant,
    deadline: Option<Instant>,
    reply_tx: mpsc::Sender<WorkerMsg>,
}

struct Shared {
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    metrics: Metrics,
    spans: SpanRecorder,
    log: RequestLog,
    job_threads: usize,
    max_frame_len: usize,
    default_deadline_ms: u32,
}

impl Shared {
    fn stats_snapshot(&self) -> StatsSnapshot {
        let m = &self.metrics;
        let depth = self.queue.len() as u64;
        m.queue_depth.set(depth as i64);
        StatsSnapshot {
            queue_depth: depth,
            received: m.received.get(),
            admitted: m.admitted.get(),
            served: m.served.get(),
            overloaded: m.overloaded.get(),
            invalid_config: m.invalid_config.get(),
            malformed: m.malformed.get(),
            deadline_expired: m.deadline_expired.get(),
            rejected_shutdown: m.rejected_shutdown.get(),
            internal_errors: m.internal_errors.get(),
            progress_frames: m.progress_frames.get(),
            queue_hist: m.queue_hist.snapshot(),
            service_hist: m.service_hist.snapshot(),
            e2e_hist: m.e2e_hist.snapshot(),
            kernels: *m.kernels.lock().expect("kernel timers poisoned"),
        }
    }
}

/// A running migration server. Dropping it performs a graceful shutdown.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and worker threads.
    ///
    /// # Errors
    ///
    /// Returns the bind error, or the error opening the log file.
    pub fn start(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let log = match &cfg.log_path {
            Some(path) => RequestLog::to_file(path)?,
            None => RequestLog::disabled(),
        };
        let metrics = Metrics::new();
        // Registry-backed so the ring's drop count scrapes as the
        // `spans_dropped` counter in the text exposition.
        let spans = SpanRecorder::with_registry(SPAN_CAPACITY, &metrics.registry);
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity.max(1)),
            shutdown: AtomicBool::new(false),
            metrics,
            spans,
            log,
            job_threads: cfg.job_threads.max(1),
            max_frame_len: cfg.max_frame_len,
            default_deadline_ms: cfg.default_deadline_ms,
        });

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || acceptor_loop(listener, shared, conns))
        };
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shared))
            })
            .collect();

        Ok(Self {
            addr: local,
            shared,
            acceptor: Some(acceptor),
            workers,
            conns,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current outcome counters.
    pub fn stats(&self) -> ServeStats {
        self.shared.metrics.snapshot()
    }

    /// The full metrics snapshot a `StatsRequest` frame would return:
    /// counters, queue depth, latency histograms and merged kernel
    /// timings.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Renders every registered metric in the stable `dpm-obs` text
    /// exposition format.
    pub fn metrics_text(&self) -> String {
        self.shared
            .metrics
            .queue_depth
            .set(self.shared.queue.len() as i64);
        self.shared.metrics.registry.snapshot().to_text()
    }

    /// The most recent job spans (bounded ring; newest last).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.shared.spans.records()
    }

    /// Requests currently waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Gracefully shuts down: stop accepting, drain every admitted job,
    /// join all threads, flush the log. Returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_impl();
        self.stats()
    }

    fn shutdown_impl(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // No new admissions; workers drain what was admitted, then exit.
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Connection threads notice the flag at their next read poll.
        let handles: Vec<_> = {
            let mut guard = self.conns.lock().expect("conn registry poisoned");
            guard.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        self.shared.log.flush();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_impl();
        }
    }
}

fn acceptor_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The shutdown wake-up (or a client racing it).
                    break;
                }
                let shared = Arc::clone(&shared);
                let handle = std::thread::spawn(move || connection_loop(stream, shared));
                conns.lock().expect("conn registry poisoned").push(handle);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failure; keep serving.
            }
        }
    }
}

fn write_reply(stream: &mut TcpStream, version: u16, reply: &Reply) -> Result<(), WireError> {
    let (kind, payload) = reply.to_frame_bytes();
    write_frame_versioned(stream, version, kind, &payload)
}

fn rejection(id: u64, code: ErrorCode, message: impl Into<String>) -> Reply {
    Reply::Rejected(ErrorReply {
        id,
        code,
        steps: 0,
        rounds: 0,
        message: message.into(),
    })
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn connection_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_POLL));

    // Every reply carries the wire version the request arrived with, so
    // a v2 client pinned to `version == 2` header checks keeps working
    // against this (v3) server. Until a frame arrives, errors go out at
    // the current version.
    let mut conn_version: u16 = VERSION;
    loop {
        let frame = match read_frame(&mut stream, shared.max_frame_len) {
            Ok(Some(frame)) => frame,
            Ok(None) => break, // client closed cleanly
            Err(WireError::Io(ref e)) if is_timeout(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(WireError::Io(_)) => break, // connection torn down
            Err(e) => {
                // Framing is corrupt; the stream position is unknown, so
                // answer once and drop the connection.
                shared.metrics.malformed.inc();
                shared.log.write(&RequestRecord {
                    id: 0,
                    outcome: ErrorCode::Malformed.as_str(),
                    kind: "-",
                    ..Default::default()
                });
                let _ = write_reply(
                    &mut stream,
                    conn_version,
                    &rejection(0, ErrorCode::Malformed, e.to_string()),
                );
                break;
            }
        };
        conn_version = frame.version;

        if frame.kind == FrameKind::StatsRequest {
            let payload = encode_stats(&shared.stats_snapshot());
            if write_frame_versioned(&mut stream, conn_version, FrameKind::Stats, &payload).is_err()
            {
                break;
            }
            continue;
        }

        if frame.kind != FrameKind::Request {
            shared.metrics.malformed.inc();
            let reply = rejection(0, ErrorCode::Malformed, "expected a request frame");
            if write_reply(&mut stream, conn_version, &reply).is_err() {
                break;
            }
            continue;
        }

        let req = match crate::wire::decode_request(&frame.payload) {
            Ok(req) => req,
            Err(e) => {
                shared.metrics.malformed.inc();
                shared.log.write(&RequestRecord {
                    id: 0,
                    outcome: ErrorCode::Malformed.as_str(),
                    kind: "-",
                    ..Default::default()
                });
                let reply = rejection(0, ErrorCode::Malformed, e.to_string());
                if write_reply(&mut stream, conn_version, &reply).is_err() {
                    break;
                }
                continue;
            }
        };
        shared.metrics.received.inc();
        let id = req.id;
        let kind_str = kind_name(req.kind);
        let design = req.design.clone();
        let cells = req.netlist.num_cells();

        if let Err(e) = req.config.validate() {
            shared.metrics.invalid_config.inc();
            shared.log.write(&RequestRecord {
                id,
                outcome: ErrorCode::InvalidConfig.as_str(),
                kind: kind_str,
                design,
                cells,
                ..Default::default()
            });
            let reply = rejection(id, ErrorCode::InvalidConfig, e.to_string());
            if write_reply(&mut stream, conn_version, &reply).is_err() {
                break;
            }
            continue;
        }

        let deadline_ms = if req.deadline_ms == 0 {
            shared.default_deadline_ms
        } else {
            req.deadline_ms
        };
        let enqueued = Instant::now();
        let deadline =
            (deadline_ms > 0).then(|| enqueued + Duration::from_millis(u64::from(deadline_ms)));
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job {
            req,
            enqueued,
            deadline,
            reply_tx,
        };

        let mut admitted_at = None;
        let reply = match shared.queue.try_push(job) {
            Ok(()) => {
                shared.metrics.admitted.inc();
                admitted_at = Some(enqueued);
                // The worker streams progress updates (if the request
                // asked for them) and always finishes with Done; a
                // dropped sender means the worker died. Once the socket
                // fails we stop writing but keep draining so the
                // terminal reply is still consumed.
                let mut sink_ok = true;
                let mut terminal = None;
                loop {
                    match reply_rx.recv() {
                        Ok(WorkerMsg::Progress(p)) => {
                            if sink_ok {
                                shared.metrics.progress_frames.inc();
                                sink_ok = write_frame_versioned(
                                    &mut stream,
                                    conn_version,
                                    FrameKind::Progress,
                                    &encode_progress(&p),
                                )
                                .is_ok();
                            }
                        }
                        Ok(WorkerMsg::Done(reply)) => {
                            terminal = Some(reply);
                            break;
                        }
                        Err(_) => break,
                    }
                }
                terminal.unwrap_or_else(|| {
                    rejection(id, ErrorCode::Internal, "worker terminated without a reply")
                })
            }
            Err(PushError::Full(_)) => {
                shared.metrics.overloaded.inc();
                shared.log.write(&RequestRecord {
                    id,
                    outcome: ErrorCode::Overloaded.as_str(),
                    kind: kind_str,
                    design,
                    cells,
                    ..Default::default()
                });
                rejection(
                    id,
                    ErrorCode::Overloaded,
                    "admission queue full; retry later",
                )
            }
            Err(PushError::Closed(_)) => {
                shared.metrics.rejected_shutdown.inc();
                shared.log.write(&RequestRecord {
                    id,
                    outcome: ErrorCode::ShuttingDown.as_str(),
                    kind: kind_str,
                    design,
                    cells,
                    ..Default::default()
                });
                rejection(id, ErrorCode::ShuttingDown, "server is shutting down")
            }
        };
        if write_reply(&mut stream, conn_version, &reply).is_err() {
            break;
        }
        if let Some(t0) = admitted_at {
            shared.metrics.e2e_hist.record_duration(t0.elapsed());
        }
    }
}

fn kind_name(kind: JobKind) -> &'static str {
    match kind {
        JobKind::Global => "global",
        JobKind::Local => "local",
    }
}

/// Why a volumetric extension cannot run, or `None` if it can. Checked
/// before the engine because the core runner asserts on these instead of
/// erroring.
fn vol_rejection(
    v: &VolRequestExt,
    kind: JobKind,
    config: &DiffusionConfig,
    netlist: &dpm_netlist::Netlist,
    die: &dpm_place::Die,
) -> Option<&'static str> {
    if !matches!(kind, JobKind::Global) {
        return Some("volumetric jobs run global diffusion only");
    }
    if v.z.len() != netlist.num_cells() {
        return Some("vol.z does not cover the netlist");
    }
    if matches!(config.solver, SolverKind::Spectral)
        && (v.exact_steps.is_some() || v.field.is_some())
    {
        return Some("halo-exchange volumetric sub-jobs are FTCS-only");
    }
    if let Some(field) = &v.field {
        let bins = BinGrid::new(die.outline(), config.bin_size).len();
        if field.len() != bins * v.nz as usize {
            return Some("vol.field does not match the job region");
        }
    }
    None
}

/// The observer that turns diffusion steps into [`WorkerMsg::Progress`]
/// messages every `stride` steps. It accumulates cumulative movement
/// from the per-step records and never touches the run's state.
struct ProgressEmitter<'a> {
    id: u64,
    stride: u64,
    movement: f64,
    tx: &'a mpsc::Sender<WorkerMsg>,
}

impl DiffusionObserver for ProgressEmitter<'_> {
    fn on_step(&mut self, event: &StepEvent<'_>) {
        self.movement += event.record.movement;
        let completed = event.record.step as u64 + 1;
        if completed.is_multiple_of(self.stride) {
            let _ = self.tx.send(WorkerMsg::Progress(ProgressUpdate {
                id: self.id,
                step: completed,
                round: event.round as u64,
                overflow: event.record.computed_overflow,
                movement: self.movement,
                max_density: event.record.max_density,
            }));
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(job) = shared.queue.pop_wait() {
        let queue_elapsed = job.enqueued.elapsed();
        let queue_ns = queue_elapsed.as_nanos() as u64;
        shared.metrics.queue_hist.record_duration(queue_elapsed);
        shared.metrics.started.inc();
        let Job {
            req,
            deadline,
            reply_tx,
            ..
        } = job;
        let JobRequest {
            id,
            progress_stride,
            kind,
            design,
            mut config,
            netlist,
            die,
            placement,
            vol,
            trace,
            ..
        } = req;
        let trace_id = trace.map_or(0, |t| t.trace_id);
        let kind_str = kind_name(kind);
        let cells = netlist.num_cells();
        config.threads = config.threads.clamp(1, shared.job_threads);

        // Queue wait counts against the deadline.
        if deadline.is_some_and(|d| Instant::now() >= d) {
            shared.metrics.deadline_expired.inc();
            shared.log.write(&RequestRecord {
                id,
                outcome: ErrorCode::DeadlineExpired.as_str(),
                kind: kind_str,
                design,
                cells,
                queue_ns,
                trace_id,
                ..Default::default()
            });
            let _ = reply_tx.send(WorkerMsg::Done(rejection(
                id,
                ErrorCode::DeadlineExpired,
                "deadline expired while queued",
            )));
            continue;
        }

        // The volumetric extension is validated here rather than deep in
        // the engine: the core runner asserts on mismatched sizes, and a
        // malformed-but-well-framed request must reject, not panic.
        if let Some(msg) = vol
            .as_ref()
            .and_then(|v| vol_rejection(v, kind, &config, &netlist, &die))
        {
            shared.metrics.invalid_config.inc();
            shared.log.write(&RequestRecord {
                id,
                outcome: ErrorCode::InvalidConfig.as_str(),
                kind: kind_str,
                design,
                cells,
                queue_ns,
                trace_id,
                ..Default::default()
            });
            let _ = reply_tx.send(WorkerMsg::Done(rejection(
                id,
                ErrorCode::InvalidConfig,
                msg,
            )));
            continue;
        }

        // Distributed tracing: mint deterministic child contexts under
        // the inherited span — the queue wait (recorded retroactively,
        // its interval already elapsed) and the job span the kernel
        // bridge hangs off. Untraced requests skip all of it.
        let job_ctx = trace.map(|ctx| {
            let mut ids = TraceIdGen::seeded(ctx.span_id ^ TRACE_SEED_SALT);
            let queue_ctx = ids.child_of(&ctx);
            let now = shared.spans.now_ns();
            shared
                .spans
                .record_traced("queue.wait", now.saturating_sub(queue_ns), now, queue_ctx);
            ids.child_of(&ctx)
        });

        let before = placement.clone();
        let mut after = placement;
        let t0 = Instant::now();
        let should_stop = move || deadline.is_some_and(|d| Instant::now() >= d);
        let span_name = match (kind, &vol) {
            (_, Some(_)) => "job.volumetric",
            (JobKind::Global, None) => "job.global",
            (JobKind::Local, None) => "job.local",
        };
        let span = match job_ctx {
            Some(ctx) => shared.spans.start_traced(span_name, ctx),
            None => shared.spans.start(span_name),
        };
        let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if let Some(v) = &vol {
                let spec = VolJobSpec {
                    nz: v.nz as usize,
                    z0: v.z0 as usize,
                    global_nz: v.global_nz as usize,
                    field: v.field.clone(),
                    exact_steps: v.exact_steps.map(|s| s as usize),
                };
                let mut vp = VolPlacement {
                    xy: after.clone(),
                    z: v.z.clone(),
                };
                let runner = VolumetricDiffusion::new(config.clone(), v.global_nz as usize);
                let r = match job_ctx {
                    Some(ctx) => {
                        let mut bridge = SpanObserver::new(&shared.spans, ctx, ctx.span_id);
                        runner.run_job_observed(
                            &spec,
                            &netlist,
                            &die,
                            &mut vp,
                            &should_stop,
                            &mut bridge,
                        )
                    }
                    None => runner.run_job(&spec, &netlist, &die, &mut vp, &should_stop),
                };
                after = vp.xy;
                // The evolved field travels back only on field-shipping
                // (router sub-job) requests — direct volumetric clients
                // don't pay for a region they never look at.
                let field = v.field.is_some().then_some(r.field);
                let ext = VolResponseExt { z: vp.z, field };
                (
                    DiffusionResult {
                        steps: r.steps,
                        rounds: 1,
                        converged: r.converged,
                        cancelled: r.cancelled,
                        telemetry: r.telemetry,
                    },
                    Some(ext),
                )
            } else {
                // Progress streaming and tracing compose: the span
                // bridge forwards every event to the chained emitter.
                let mut emitter = (progress_stride > 0).then(|| ProgressEmitter {
                    id,
                    stride: u64::from(progress_stride),
                    movement: 0.0,
                    tx: &reply_tx,
                });
                let result = match (job_ctx, emitter.as_mut()) {
                    (Some(ctx), Some(emitter)) => {
                        let mut bridge =
                            SpanObserver::new(&shared.spans, ctx, ctx.span_id).with_inner(emitter);
                        execute_job(
                            kind,
                            &config,
                            &netlist,
                            &die,
                            &mut after,
                            &should_stop,
                            &mut bridge,
                        )
                    }
                    (Some(ctx), None) => {
                        let mut bridge = SpanObserver::new(&shared.spans, ctx, ctx.span_id);
                        execute_job(
                            kind,
                            &config,
                            &netlist,
                            &die,
                            &mut after,
                            &should_stop,
                            &mut bridge,
                        )
                    }
                    (None, Some(emitter)) => execute_job(
                        kind,
                        &config,
                        &netlist,
                        &die,
                        &mut after,
                        &should_stop,
                        emitter,
                    ),
                    (None, None) => execute_job(
                        kind,
                        &config,
                        &netlist,
                        &die,
                        &mut after,
                        &should_stop,
                        &mut NoopObserver,
                    ),
                };
                (result, None)
            }
        }));
        span.finish();
        let service_elapsed = t0.elapsed();
        let service_ns = service_elapsed.as_nanos() as u64;
        shared.metrics.service_hist.record_duration(service_elapsed);

        let reply = match run {
            Err(_) => {
                shared.metrics.internal_errors.inc();
                shared.log.write(&RequestRecord {
                    id,
                    outcome: ErrorCode::Internal.as_str(),
                    kind: kind_str,
                    design,
                    cells,
                    queue_ns,
                    service_ns,
                    trace_id,
                    ..Default::default()
                });
                rejection(id, ErrorCode::Internal, "diffusion engine panicked")
            }
            Ok((result, vol_ext)) => {
                shared
                    .metrics
                    .kernels
                    .lock()
                    .expect("kernel timers poisoned")
                    .merge(result.telemetry.kernels());
                let movement = MovementStats::between(&netlist, &before, &after);
                let record = RequestRecord {
                    id,
                    outcome: if result.cancelled {
                        ErrorCode::DeadlineExpired.as_str()
                    } else {
                        "ok"
                    },
                    kind: kind_str,
                    design,
                    cells,
                    queue_ns,
                    service_ns,
                    steps: result.steps as u64,
                    rounds: result.rounds as u64,
                    converged: result.converged,
                    movement_total: movement.total,
                    movement_max: movement.max,
                    trace_id,
                };
                shared.log.write(&record);
                if result.cancelled {
                    shared.metrics.deadline_expired.inc();
                    Reply::Rejected(ErrorReply {
                        id,
                        code: ErrorCode::DeadlineExpired,
                        steps: result.steps as u64,
                        rounds: result.rounds as u64,
                        message: "deadline expired mid-diffusion; placement progress discarded"
                            .into(),
                    })
                } else {
                    shared.metrics.served.inc();
                    // Export this job's spans back to the caller: drain
                    // them from the ring (they now live in the reply,
                    // not the local diagnostics view) and normalize so
                    // the receiver can re-base under its dispatch span.
                    let spans = if trace_id != 0 {
                        let mut s = shared.spans.drain_trace(trace_id);
                        normalize_spans(&mut s);
                        s
                    } else {
                        Vec::new()
                    };
                    Reply::Ok(JobResponse {
                        id,
                        converged: result.converged,
                        steps: result.steps as u64,
                        rounds: result.rounds as u64,
                        total_movement: movement.total,
                        max_movement: movement.max,
                        queue_ns,
                        service_ns,
                        positions: after.as_slice().to_vec(),
                        vol: vol_ext,
                        spans,
                    })
                }
            }
        };
        let _ = reply_tx.send(WorkerMsg::Done(reply));
    }
}

/// Runs one migration job on the calling thread: the exact execution
/// path a [`Server`] worker uses, exported so other front-ends (the
/// `dpm-ctl` control plane) share it. Dispatches on [`JobKind`],
/// threads the cancellation hook and observer through the engine, and
/// leaves the legalized positions in `placement`.
#[allow(clippy::too_many_arguments)]
pub fn execute_job(
    kind: JobKind,
    config: &DiffusionConfig,
    netlist: &dpm_netlist::Netlist,
    die: &dpm_place::Die,
    placement: &mut dpm_place::Placement,
    should_stop: &dyn Fn() -> bool,
    observer: &mut dyn DiffusionObserver,
) -> dpm_diffusion::DiffusionResult {
    match kind {
        JobKind::Global => GlobalDiffusion::new(config.clone()).run_observed(
            netlist,
            die,
            placement,
            should_stop,
            observer,
        ),
        JobKind::Local => LocalDiffusion::new(config.clone()).run_observed(
            netlist,
            die,
            placement,
            should_stop,
            observer,
        ),
    }
}
