//! Z-slab routing: fan one volumetric job out over K backends, one
//! tier-stack slab each.
//!
//! A [`VolRouter`] takes a [`JobRequest`] carrying a full-stack
//! [`VolRequestExt`], splats and manipulates the volumetric density
//! **once** globally, and then advances the job as a pure field
//! computation: every halo-exchange round ships each slab its density
//! region (owned tiers plus `halo_layers` ghost tiers on each side,
//! [`ZSlabPartition`]), runs **exactly one FTCS step** per slab, and
//! stitches the owned tiers and owned cells back into the global state.
//! Cell ownership is re-derived from the freshest depths before every
//! round, so a cell that migrates across a slab boundary is handed to
//! its new owner in the next round.
//!
//! Correctness anchors:
//!
//! - **Bit-exactness at any K.** One FTCS step of an owned tier reads
//!   densities at most one tier away, and the velocity interpolation
//!   one more; a halo of two tiers therefore closes every read an owned
//!   cell or bin performs, making each round's owned results identical
//!   to one step of a direct full-stack run — K slabs, in-process or
//!   over TCP (`f64`s travel as bit patterns), reproduce the K = 1
//!   placement bit-for-bit.
//! - **The maximum principle survives stitching.** With `Δt·3 ≤ 1` an
//!   FTCS step is a convex combination, so no slab can raise its region
//!   above the global maximum; the stitched max-density trace is
//!   monotone non-increasing by construction and is reported in
//!   [`VolReply::max_density_trace`].
//! - **FTCS only.** The spectral solver jumps through time analytically
//!   and cannot honor a one-step halo contract; volumetric spectral
//!   runs go directly through [`VolumetricDiffusion`] instead, and the
//!   router rejects them with
//!   [`VolRouteError::SpectralUnsupported`].

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use dpm_diffusion::{
    manipulate_density, splat_volume, KernelTimers, SolverKind, VolJobSpec, VolPlacement,
    VolumetricDiffusion, ZSlabPartition,
};
use dpm_geom::Point;
use dpm_netlist::{CellId, CellKind, Netlist, NetlistBuilder};
use dpm_obs::{normalize_spans, rebase_spans, SpanRecord, SpanRecorder, TraceContext, TraceIdGen};
use dpm_place::{BinGrid, MovementStats, Placement};

use crate::shard::ShardBackend;
use crate::wire::{
    JobKind, JobRequest, JobResponse, PayloadEncoding, Reply, VolRequestExt, VolResponseExt,
};
use crate::ServeClient;

/// Salt mixed into the inherited span id when seeding the router's
/// span-id generator; distinct from the planar router's and the
/// server's salts so stacked hops never collide id streams.
const SLAB_SEED_SALT: u64 = 0x51AB_CAFE_D00D_F00D;

/// Spans a traced route keeps locally (round + dispatch spans).
const SLAB_SPAN_CAPACITY: usize = 256;

/// Upper bound on remote spans stitched into one routed reply. A long
/// volumetric run exchanges hundreds of halo rounds; the earliest
/// rounds carry the structure a trace needs, the rest would only bloat
/// the wire export.
const SLAB_SPAN_COLLECT_CAP: usize = 2048;

/// Routing parameters for a [`VolRouter`].
#[derive(Debug, Clone)]
pub struct VolRouterConfig {
    /// Requested slab count K. Clamped to the stack height — a 3-tier
    /// stack never runs more than 3 slabs; [`VolReply::slabs`] reports
    /// what actually ran.
    pub slabs: usize,
    /// Ghost tiers shipped on each side of a slab's owned range. Two is
    /// exact for one FTCS step (one tier of density reach plus one of
    /// velocity reach); fewer trades exactness away and is rejected.
    pub halo_layers: usize,
    /// Payload encoding for TCP backends. Volumetric sub-jobs require
    /// [`PayloadEncoding::Binary`] — Bookshelf text has no tier axis.
    pub encoding: PayloadEncoding,
}

impl Default for VolRouterConfig {
    fn default() -> Self {
        Self {
            slabs: 2,
            halo_layers: 2,
            encoding: PayloadEncoding::Binary,
        }
    }
}

/// Why a [`VolRouter`] refused or abandoned a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VolRouteError {
    /// The request carries no volumetric extension; use a
    /// [`ShardRouter`](crate::ShardRouter) for planar jobs.
    NotVolumetric,
    /// Volumetric routing runs global diffusion only.
    NotGlobal,
    /// The one-step halo-exchange contract is FTCS-only; run spectral
    /// stacks directly through [`VolumetricDiffusion`].
    SpectralUnsupported,
    /// The extension is not a self-contained full-stack job, or its
    /// arrays do not match the design.
    BadExtension(String),
    /// A slab backend failed. Exact stitching is impossible without its
    /// region, so the whole job fails rather than degrade.
    Backend {
        /// Slab whose backend failed.
        slab: usize,
        /// Transport or engine error.
        message: String,
    },
}

impl fmt::Display for VolRouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotVolumetric => write!(f, "request carries no volumetric extension"),
            Self::NotGlobal => write!(f, "volumetric routing runs global diffusion only"),
            Self::SpectralUnsupported => {
                write!(
                    f,
                    "z-slab halo exchange is FTCS-only; spectral stacks run directly"
                )
            }
            Self::BadExtension(msg) => write!(f, "bad volumetric extension: {msg}"),
            Self::Backend { slab, message } => write!(f, "slab {slab} backend failed: {message}"),
        }
    }
}

impl std::error::Error for VolRouteError {}

/// Everything the router learned from one routed volumetric job.
#[derive(Debug, Clone)]
pub struct VolReply {
    /// Aggregated response in the same shape a direct volumetric run
    /// would produce: planar positions, a [`VolResponseExt`] with the
    /// final depths and the evolved global field.
    pub response: JobResponse,
    /// Number of slabs that actually ran (after stack clamping).
    pub slabs: usize,
    /// Halo-exchange rounds executed; each round is one global FTCS
    /// step, so this equals the reported step count.
    pub rounds: usize,
    /// Global max live density before round 1 and after every round;
    /// monotone non-increasing (the FTCS maximum principle survives the
    /// stitch).
    pub max_density_trace: Vec<f64>,
    /// Kernel timers merged across every in-process slab run.
    pub kernels: KernelTimers,
}

/// One slab's extracted sub-problem for one round.
struct SlabProblem {
    index: usize,
    /// Owned tier range `[z0, z1)` and shipped range `[h0, h1)`.
    z0: usize,
    z1: usize,
    h0: usize,
    h1: usize,
    /// All fixed macros plus the movable cells this slab owns.
    netlist: Netlist,
    placement: Placement,
    /// Region-local depths, sub-netlist order.
    z_local: Vec<f64>,
    /// Shipped density region, plane-major over `[h0, h1)`.
    field: Vec<f64>,
    /// Sub-netlist index -> global cell id.
    map: Vec<CellId>,
}

/// What one slab's backend returned for one round.
struct SlabRun {
    positions: Vec<Point>,
    z_local: Vec<f64>,
    field: Vec<f64>,
    kernels: Option<KernelTimers>,
    /// Remote spans exported by a TCP backend, already re-based into
    /// the router's clock by the dispatch span's start.
    spans: Vec<SpanRecord>,
}

/// Fans one volumetric [`JobRequest`] out over K z-slab backends with
/// per-step halo exchange. See the [module docs](self) for the
/// contract.
pub struct VolRouter {
    cfg: VolRouterConfig,
    backends: Vec<ShardBackend>,
}

impl VolRouter {
    /// Creates a router. Slab `i` runs on backend `i % backends.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.slabs` is zero or `backends` is empty.
    pub fn new(cfg: VolRouterConfig, backends: Vec<ShardBackend>) -> Self {
        assert!(cfg.slabs >= 1, "slab count must be positive");
        assert!(!backends.is_empty(), "at least one backend required");
        Self { cfg, backends }
    }

    /// Creates a router that runs every slab in-process.
    pub fn in_process(cfg: VolRouterConfig) -> Self {
        Self::new(cfg, vec![ShardBackend::InProcess])
    }

    /// The routing configuration.
    pub fn config(&self) -> &VolRouterConfig {
        &self.cfg
    }

    /// The configured backends.
    pub fn backends(&self) -> &[ShardBackend] {
        &self.backends
    }

    /// Routes one full-stack volumetric job across the slabs and
    /// stitches the result.
    ///
    /// # Errors
    ///
    /// [`VolRouteError`] on a non-volumetric/non-global/spectral
    /// request, a malformed extension, or any backend failure — the
    /// router never returns a partially-migrated stack.
    pub fn route(&self, req: &JobRequest) -> Result<VolReply, VolRouteError> {
        let t0 = Instant::now();
        let ext = req.vol.as_ref().ok_or(VolRouteError::NotVolumetric)?;
        if !matches!(req.kind, JobKind::Global) {
            return Err(VolRouteError::NotGlobal);
        }
        if req.config.solver == SolverKind::Spectral {
            return Err(VolRouteError::SpectralUnsupported);
        }
        if ext.z.len() != req.netlist.num_cells() {
            return Err(VolRouteError::BadExtension(format!(
                "{} depths for {} cells",
                ext.z.len(),
                req.netlist.num_cells()
            )));
        }
        if ext.field.is_some()
            || ext.exact_steps.is_some()
            || ext.z0 != 0
            || ext.nz != ext.global_nz
        {
            return Err(VolRouteError::BadExtension(
                "routing expects a self-contained full-stack job".into(),
            ));
        }
        let nz = ext.global_nz as usize;
        let cfg = &req.config;
        let grid = BinGrid::new(req.die.outline(), cfg.bin_size);
        let nxy = grid.len();

        // Splat and manipulate once, globally — exactly the field a
        // direct full-stack run starts from. From here on the density
        // is a pure field: sub-jobs receive regions of it and never
        // re-splat, which is what makes the routed run bit-identical to
        // the direct one.
        let mut vp = VolPlacement {
            xy: req.placement.clone(),
            z: ext.z.clone(),
        };
        let (mut field, wall) = splat_volume(&req.netlist, &vp, &grid, nz);
        if cfg.manipulate {
            manipulate_density(&mut field, Some(&wall), cfg.d_max);
        }

        // The engine's live-density measure: max over non-wall bins (no
        // bins are frozen in a volumetric run).
        let max_live = |f: &[f64]| {
            let mut m = 0.0f64;
            for (i, &d) in f.iter().enumerate() {
                if !wall[i] {
                    m = m.max(d);
                }
            }
            m
        };
        let target = cfg.d_max + cfg.delta;
        let mut trace = vec![max_live(&field)];
        // Replicates the direct runner's pre-loop convergence check.
        let mut converged = trace[0] <= target;

        let partition = ZSlabPartition::new(nz, self.cfg.slabs, self.cfg.halo_layers);
        let k = partition.len();
        let mut kernels = KernelTimers::default();
        let mut rounds = 0usize;

        // Tracing state: a local recorder for round/dispatch spans and a
        // deterministic id generator seeded from the inherited context.
        let trace_ctx = req.trace;
        let recorder = trace_ctx.map(|_| SpanRecorder::new(SLAB_SPAN_CAPACITY));
        let recorder_ref = recorder.as_ref();
        let mut ids = trace_ctx.map(|ctx| TraceIdGen::seeded(ctx.span_id ^ SLAB_SEED_SALT));
        let mut collected_spans: Vec<SpanRecord> = Vec::new();

        while !converged && rounds < cfg.max_steps {
            // One `halo.round` span per exchange; dispatch contexts are
            // minted serially up front so span ids stay a pure function
            // of the inherited context, independent of thread timing.
            let round_trace = trace_ctx.map(|ctx| {
                let ids = ids.as_mut().expect("id generator exists when traced");
                let round_ctx = ids.child_of(&ctx);
                let dispatch: Vec<TraceContext> =
                    (0..k).map(|_| ids.child_of(&round_ctx)).collect();
                let start = recorder_ref.expect("recorder exists when traced").now_ns();
                (start, round_ctx, dispatch)
            });
            // Ownership and shipped regions derive from the freshest
            // depths and field.
            let problems: Vec<SlabProblem> = (0..k)
                .map(|s| extract_slab(req, &vp, &partition, s, &field, nxy))
                .collect();

            let runs: Vec<Result<SlabRun, String>> = std::thread::scope(|scope| {
                let handles: Vec<_> = problems
                    .iter()
                    .map(|problem| {
                        let backend = self.backends[problem.index % self.backends.len()];
                        let encoding = self.cfg.encoding;
                        let slab_trace = round_trace.as_ref().map(|(_, _, dispatch)| {
                            (recorder_ref.unwrap(), dispatch[problem.index])
                        });
                        scope.spawn(move || {
                            run_slab(backend, req, problem, nz, encoding, slab_trace)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("slab thread never panics"))
                    .collect()
            });

            for (problem, run) in problems.iter().zip(runs) {
                let mut run = run.map_err(|message| VolRouteError::Backend {
                    slab: problem.index,
                    message,
                })?;
                let room = SLAB_SPAN_COLLECT_CAP.saturating_sub(collected_spans.len());
                run.spans.truncate(room);
                collected_spans.append(&mut run.spans);
                // Stitch the owned tiers of the evolved region…
                for z in problem.z0..problem.z1 {
                    let src = (z - problem.h0) * nxy;
                    field[z * nxy..(z + 1) * nxy].copy_from_slice(&run.field[src..src + nxy]);
                }
                // …and the owned cells. Macros ride along for the wall
                // mask only; their positions never change.
                for (i, &gid) in problem.map.iter().enumerate() {
                    if req.netlist.cell(gid).kind == CellKind::Movable {
                        vp.xy.set(gid, run.positions[i]);
                        vp.z[gid.index()] = run.z_local[i] + problem.h0 as f64;
                    }
                }
                if let Some(kt) = run.kernels {
                    kernels.merge(&kt);
                }
            }

            rounds += 1;
            let m = max_live(&field);
            trace.push(m);
            converged = m <= target;
            if let Some((start, round_ctx, _)) = &round_trace {
                let recorder = recorder_ref.expect("recorder exists when traced");
                recorder.record_traced("halo.round", *start, recorder.now_ns(), *round_ctx);
            }
        }

        // Assemble the stitched span tree: router round/dispatch spans
        // plus every backend's re-based remote spans, normalized so the
        // earliest span starts at 0 (a receiver one hop up re-bases
        // again onto its own dispatch span).
        let spans = match (recorder_ref, trace_ctx) {
            (Some(recorder), Some(ctx)) => {
                let mut spans = recorder.drain_trace(ctx.trace_id);
                spans.append(&mut collected_spans);
                normalize_spans(&mut spans);
                spans
            }
            _ => Vec::new(),
        };

        let movement = MovementStats::between(&req.netlist, &req.placement, &vp.xy);
        let response = JobResponse {
            id: req.id,
            converged,
            steps: rounds as u64,
            rounds: rounds as u64,
            total_movement: movement.total,
            max_movement: movement.max,
            queue_ns: 0,
            service_ns: t0.elapsed().as_nanos() as u64,
            positions: vp.xy.as_slice().to_vec(),
            vol: Some(VolResponseExt {
                z: vp.z,
                field: Some(field),
            }),
            spans,
        };
        Ok(VolReply {
            response,
            slabs: k,
            rounds,
            max_density_trace: trace,
            kernels,
        })
    }
}

/// Builds one slab's sub-problem: every fixed macro (for the
/// through-stack wall mask) plus the movable cells whose depth the slab
/// owns, with region-local depths and the slab's density region.
fn extract_slab(
    req: &JobRequest,
    vp: &VolPlacement,
    partition: &ZSlabPartition,
    slab_idx: usize,
    field: &[f64],
    nxy: usize,
) -> SlabProblem {
    let slab = partition.slabs()[slab_idx];
    let mut b = NetlistBuilder::with_capacity(req.netlist.num_cells(), 0, 0);
    let mut map = Vec::new();
    for c in req.netlist.cell_ids() {
        let cell = req.netlist.cell(c);
        let keep = match cell.kind {
            CellKind::FixedMacro => true,
            CellKind::Movable => partition.owner_of_depth(vp.z[c.index()]) == slab_idx,
            CellKind::Pad => false,
        };
        if keep {
            b.add_cell_with_delay(
                cell.name.clone(),
                cell.width,
                cell.height,
                cell.kind,
                cell.delay,
            );
            map.push(c);
        }
    }
    let netlist = b.build().expect("sub-netlist of existing cells is valid");
    let mut placement = Placement::new(netlist.num_cells());
    let mut z_local = Vec::with_capacity(map.len());
    for (sub, &gid) in netlist.cell_ids().zip(map.iter()) {
        placement.set(sub, vp.xy.get(gid));
        z_local.push(vp.z[gid.index()] - slab.h0 as f64);
    }
    SlabProblem {
        index: slab_idx,
        z0: slab.z0,
        z1: slab.z1,
        h0: slab.h0,
        h1: slab.h1,
        netlist,
        placement,
        z_local,
        field: field[slab.h0 * nxy..slab.h1 * nxy].to_vec(),
        map,
    }
}

/// Runs one slab's one-step sub-job on its backend. Transport failures
/// and engine panics degrade to `Err` — the router fails the whole job.
///
/// When traced, the backend interaction becomes one `shard.dispatch`
/// span under `trace`'s context; a TCP sub-request inherits that
/// context over the wire and its exported spans are re-based onto the
/// dispatch span's local start, while an in-process run records its
/// kernel spans straight into the router's recorder.
fn run_slab(
    backend: ShardBackend,
    req: &JobRequest,
    problem: &SlabProblem,
    global_nz: usize,
    encoding: PayloadEncoding,
    trace: Option<(&SpanRecorder, TraceContext)>,
) -> Result<SlabRun, String> {
    let dispatch_start = trace.map(|(recorder, _)| recorder.now_ns());
    let mut result = run_slab_inner(backend, req, problem, global_nz, encoding, trace);
    if let (Some((recorder, ctx)), Some(start)) = (trace, dispatch_start) {
        recorder.record_traced("shard.dispatch", start, recorder.now_ns(), ctx);
        if let Ok(run) = result.as_mut() {
            rebase_spans(&mut run.spans, start);
        }
    }
    result
}

fn run_slab_inner(
    backend: ShardBackend,
    req: &JobRequest,
    problem: &SlabProblem,
    global_nz: usize,
    encoding: PayloadEncoding,
    trace: Option<(&SpanRecorder, TraceContext)>,
) -> Result<SlabRun, String> {
    let region_nz = problem.h1 - problem.h0;
    match backend {
        ShardBackend::InProcess => {
            let spec = VolJobSpec {
                nz: region_nz,
                z0: problem.h0,
                global_nz,
                field: Some(problem.field.clone()),
                exact_steps: Some(1),
            };
            catch_unwind(AssertUnwindSafe(|| {
                let mut svp = VolPlacement {
                    xy: problem.placement.clone(),
                    z: problem.z_local.clone(),
                };
                let runner = VolumetricDiffusion::new(req.config.clone(), global_nz);
                let r = match trace {
                    Some((recorder, ctx)) => {
                        let mut obs = dpm_diffusion::SpanObserver::new(recorder, ctx, ctx.span_id);
                        runner.run_job_observed(
                            &spec,
                            &problem.netlist,
                            &req.die,
                            &mut svp,
                            &|| false,
                            &mut obs,
                        )
                    }
                    None => runner.run_job(&spec, &problem.netlist, &req.die, &mut svp, &|| false),
                };
                SlabRun {
                    positions: svp.xy.as_slice().to_vec(),
                    z_local: svp.z,
                    field: r.field,
                    kernels: Some(*r.telemetry.kernels()),
                    spans: Vec::new(),
                }
            }))
            .map_err(|_| "slab engine panicked".into())
        }
        ShardBackend::Tcp(addr) => {
            let sub = JobRequest {
                id: req.id,
                deadline_ms: req.deadline_ms,
                progress_stride: 0,
                kind: JobKind::Global,
                design: format!("{}/slab{}", req.design, problem.index),
                config: req.config.clone(),
                netlist: problem.netlist.clone(),
                die: req.die.clone(),
                placement: problem.placement.clone(),
                vol: Some(VolRequestExt {
                    nz: region_nz as u32,
                    z0: problem.h0 as u32,
                    global_nz: global_nz as u32,
                    exact_steps: Some(1),
                    z: problem.z_local.clone(),
                    field: Some(problem.field.clone()),
                }),
                trace: trace.map(|(_, ctx)| ctx),
            };
            let reply = ServeClient::connect(addr)
                .map_err(|e| format!("connect {addr}: {e}"))
                .and_then(|mut client| {
                    client
                        .request(&sub, encoding)
                        .map_err(|e| format!("transport: {e}"))
                })?;
            match reply {
                Reply::Ok(resp) => {
                    let ext = resp.vol.ok_or_else(|| {
                        "backend reply lacks the volumetric extension".to_string()
                    })?;
                    let field = ext
                        .field
                        .ok_or_else(|| "backend reply lacks the evolved field".to_string())?;
                    if resp.positions.len() != problem.map.len()
                        || ext.z.len() != problem.map.len()
                        || field.len() != problem.field.len()
                    {
                        return Err(format!(
                            "backend returned {} positions / {} depths / {} field bins for {} cells / {} bins",
                            resp.positions.len(),
                            ext.z.len(),
                            field.len(),
                            problem.map.len(),
                            problem.field.len()
                        ));
                    }
                    Ok(SlabRun {
                        positions: resp.positions,
                        z_local: ext.z,
                        field,
                        kernels: None,
                        spans: resp.spans,
                    })
                }
                Reply::Rejected(e) => Err(format!("{}: {}", e.code.as_str(), e.message)),
            }
        }
    }
}
