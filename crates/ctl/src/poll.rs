//! OS readiness notification behind a trait, so the front-end's event
//! loop is testable without a kernel.
//!
//! The control plane multiplexes thousands of mostly-idle connections
//! onto a handful of threads; a thread-per-connection design at that
//! scale is all stacks and no work. What it needs from the OS is tiny —
//! "which of these fds might be readable?" — so that's the whole
//! [`Readiness`] trait. Two implementations:
//!
//! - [`EpollReadiness`] (Linux): level-triggered `epoll` via direct
//!   `extern "C"` bindings. The workspace is dependency-free by policy,
//!   and std links libc anyway, so the three syscall wrappers are
//!   declared here rather than pulled from a crate.
//! - [`ScanReadiness`] (portable, deterministic): reports *every*
//!   registered token as ready each wait. Callers must treat readiness
//!   as a hint and handle `WouldBlock` — which they must do with epoll
//!   too (spurious wakeups are allowed), so tests driving the loop with
//!   `ScanReadiness` exercise the same code paths the kernel does.

use std::io;

/// A raw file descriptor, as handed out by
/// [`AsRawFd`](std::os::fd::AsRawFd).
pub type RawFd = i32;

/// Readiness notification: register interest in fds, wait for hints.
///
/// Contract: readiness is a *hint*. Implementations may report a token
/// whose fd is not actually readable (level-triggered epoll after a
/// short read, or [`ScanReadiness`] always); callers retry on
/// `WouldBlock`. Implementations must never *drop* a readable fd
/// forever: every registered fd with pending bytes is eventually
/// reported.
pub trait Readiness: Send {
    /// Starts watching `fd` for readability, tagging events with
    /// `token`.
    ///
    /// # Errors
    ///
    /// Returns the underlying OS error.
    fn register(&mut self, token: u64, fd: RawFd) -> io::Result<()>;

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Returns the underlying OS error.
    fn deregister(&mut self, token: u64, fd: RawFd) -> io::Result<()>;

    /// Waits up to `timeout_ms` and appends ready tokens to `out`
    /// (which is cleared first). A zero timeout polls; the call may
    /// return early and empty.
    ///
    /// # Errors
    ///
    /// Returns the underlying OS error.
    fn wait(&mut self, timeout_ms: i32, out: &mut Vec<u64>) -> io::Result<()>;
}

/// Portable fallback and test double: every registered token is
/// reported ready on every wait. O(n) per wait, but honest about it —
/// the front-end's nonblocking reads turn false positives into cheap
/// `WouldBlock`s.
#[derive(Default)]
pub struct ScanReadiness {
    tokens: Vec<u64>,
}

impl ScanReadiness {
    /// Creates an empty scanner.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Readiness for ScanReadiness {
    fn register(&mut self, token: u64, _fd: RawFd) -> io::Result<()> {
        if !self.tokens.contains(&token) {
            self.tokens.push(token);
        }
        Ok(())
    }

    fn deregister(&mut self, token: u64, _fd: RawFd) -> io::Result<()> {
        self.tokens.retain(|&t| t != token);
        Ok(())
    }

    fn wait(&mut self, timeout_ms: i32, out: &mut Vec<u64>) -> io::Result<()> {
        out.clear();
        out.extend_from_slice(&self.tokens);
        if out.is_empty() && timeout_ms > 0 {
            // Nothing registered: sleep briefly instead of spinning.
            std::thread::sleep(std::time::Duration::from_millis(timeout_ms.min(10) as u64));
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
pub use linux::EpollReadiness;

#[cfg(target_os = "linux")]
mod linux {
    use super::{RawFd, Readiness};
    use std::io;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLLIN: u32 = 0x001;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// The kernel's `struct epoll_event`. Packed on x86-64 (the kernel
    /// ABI predates alignment-aware layouts); fields are only ever read
    /// by value, never by reference.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// Level-triggered `epoll(7)` readiness. One instance owns one
    /// epoll fd for its whole life.
    pub struct EpollReadiness {
        epfd: i32,
        buf: Vec<EpollEvent>,
    }

    impl EpollReadiness {
        /// Creates a fresh epoll instance.
        ///
        /// # Errors
        ///
        /// Returns the `epoll_create1` error.
        pub fn new() -> io::Result<Self> {
            let epfd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Self {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }
    }

    impl Readiness for EpollReadiness {
        fn register(&mut self, token: u64, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: token,
            };
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) })?;
            Ok(())
        }

        fn deregister(&mut self, _token: u64, fd: RawFd) -> io::Result<()> {
            // The event argument is ignored for DEL on any kernel
            // this code can run on (>= 2.6.9), but must be non-null
            // for portability with older headers.
            let mut ev = EpollEvent { events: 0, data: 0 };
            check(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) })?;
            Ok(())
        }

        fn wait(&mut self, timeout_ms: i32, out: &mut Vec<u64>) -> io::Result<()> {
            out.clear();
            let n = loop {
                let ret = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as i32,
                        timeout_ms,
                    )
                };
                match check(ret) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in &self.buf[..n] {
                // Copy out of the packed struct by value.
                let token = { ev.data };
                out.push(token);
            }
            Ok(())
        }
    }

    impl Drop for EpollReadiness {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

/// The best available [`Readiness`] for this platform: epoll on Linux,
/// the portable scanner elsewhere.
pub fn default_readiness() -> io::Result<Box<dyn Readiness>> {
    #[cfg(target_os = "linux")]
    {
        Ok(Box::new(EpollReadiness::new()?))
    }
    #[cfg(not(target_os = "linux"))]
    {
        Ok(Box::new(ScanReadiness::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_reports_registered_tokens_until_deregistered() {
        let mut r = ScanReadiness::new();
        r.register(7, 100).unwrap();
        r.register(9, 101).unwrap();
        r.register(7, 100).unwrap(); // idempotent
        let mut out = Vec::new();
        r.wait(0, &mut out).unwrap();
        assert_eq!(out, vec![7, 9]);
        r.deregister(7, 100).unwrap();
        r.wait(0, &mut out).unwrap();
        assert_eq!(out, vec![9]);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_sees_bytes_on_a_socketpair() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let mut ep = EpollReadiness::new().unwrap();
        ep.register(42, rx.as_raw_fd()).unwrap();
        let mut out = Vec::new();
        ep.wait(0, &mut out).unwrap();
        assert!(out.is_empty(), "no bytes yet");

        tx.write_all(b"ping").unwrap();
        tx.flush().unwrap();
        ep.wait(1000, &mut out).unwrap();
        assert_eq!(out, vec![42]);

        ep.deregister(42, rx.as_raw_fd()).unwrap();
        ep.wait(0, &mut out).unwrap();
        assert!(out.is_empty());
    }
}
