//! Levelization of a netlist into a combinational DAG.
//!
//! The timing substrate needs a topological order over cells: signals flow
//! from each net's driver to its sinks. Generated circuits are acyclic by
//! construction, but arbitrary netlists may contain combinational loops;
//! [`levelize`] detects and reports the cells left on cycles so the caller
//! can break or ignore them.

use crate::{CellId, Netlist, PinDir};

/// Result of [`levelize`]: a topological order plus any cells caught in
/// combinational cycles.
#[derive(Debug, Clone)]
pub struct LevelizeResult {
    /// Cells in topological order (drivers before sinks). Cells on cycles
    /// are excluded.
    pub order: Vec<CellId>,
    /// Logic level per cell (`level[c] = 1 + max(level of fanin)`), `0` for
    /// primary inputs. Cells on cycles get `usize::MAX`.
    pub level: Vec<usize>,
    /// Cells that could not be ordered because they sit on a cycle.
    pub cyclic: Vec<CellId>,
}

impl LevelizeResult {
    /// `true` if every cell was ordered (the netlist is a DAG).
    pub fn is_acyclic(&self) -> bool {
        self.cyclic.is_empty()
    }

    /// The maximum logic level, or `None` for an empty netlist.
    pub fn depth(&self) -> Option<usize> {
        self.order.iter().map(|c| self.level[c.index()]).max()
    }
}

/// Computes a topological order of cells by Kahn's algorithm over the
/// driver→sink relation.
///
/// Fanin of a cell = the set of cells driving nets that feed the cell's
/// input pins. Pads and macros participate like any other cell.
///
/// # Examples
///
/// ```
/// use dpm_netlist::{levelize, NetlistBuilder, CellKind, PinDir};
///
/// let mut b = NetlistBuilder::new();
/// let src = b.add_cell("src", 1.0, 1.0, CellKind::Pad);
/// let g1 = b.add_cell("g1", 2.0, 1.0, CellKind::Movable);
/// let g2 = b.add_cell("g2", 2.0, 1.0, CellKind::Movable);
/// let n0 = b.add_net("n0");
/// let n1 = b.add_net("n1");
/// b.connect(src, n0, PinDir::Output, 0.0, 0.0);
/// b.connect(g1, n0, PinDir::Input, 0.0, 0.0);
/// b.connect(g1, n1, PinDir::Output, 2.0, 0.0);
/// b.connect(g2, n1, PinDir::Input, 0.0, 0.0);
/// let nl = b.build()?;
/// let lv = levelize(&nl);
/// assert!(lv.is_acyclic());
/// assert_eq!(lv.level[src.index()], 0);
/// assert_eq!(lv.level[g2.index()], 2);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
pub fn levelize(netlist: &Netlist) -> LevelizeResult {
    let n = netlist.num_cells();
    // Fanin degree per cell: number of input pins on driven nets.
    let mut indeg = vec![0usize; n];
    for net in netlist.net_ids() {
        if netlist.driver_of(net).is_none() {
            continue;
        }
        for &p in &netlist.net(net).pins {
            let pin = netlist.pin(p);
            if pin.dir == PinDir::Input {
                indeg[pin.cell.index()] += 1;
            }
        }
    }

    let mut order = Vec::with_capacity(n);
    let mut level = vec![0usize; n];
    let mut queue: Vec<CellId> = (0..n)
        .filter(|&i| indeg[i] == 0)
        .map(|i| CellId::new(i as u32))
        .collect();

    let mut head = 0;
    while head < queue.len() {
        let c = queue[head];
        head += 1;
        order.push(c);
        // Propagate through every net this cell drives.
        for &p in &netlist.cell(c).pins {
            let pin = netlist.pin(p);
            if pin.dir != PinDir::Output {
                continue;
            }
            for &q in &netlist.net(pin.net).pins {
                let sink = netlist.pin(q);
                if sink.dir != PinDir::Input {
                    continue;
                }
                let s = sink.cell.index();
                level[s] = level[s].max(level[c.index()] + 1);
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(sink.cell);
                }
            }
        }
    }

    let mut cyclic = Vec::new();
    if order.len() < n {
        let mut seen = vec![false; n];
        for &c in &order {
            seen[c.index()] = true;
        }
        for i in 0..n {
            if !seen[i] {
                cyclic.push(CellId::new(i as u32));
                level[i] = usize::MAX;
            }
        }
    }

    LevelizeResult {
        order,
        level,
        cyclic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellKind, NetlistBuilder};

    fn chain(len: usize) -> (Netlist, Vec<CellId>) {
        let mut b = NetlistBuilder::new();
        let cells: Vec<CellId> = (0..len)
            .map(|i| b.add_cell(format!("g{i}"), 2.0, 1.0, CellKind::Movable))
            .collect();
        for w in cells.windows(2) {
            let n = b.add_net(format!("n_{}", w[0]));
            b.connect(w[0], n, PinDir::Output, 0.0, 0.0);
            b.connect(w[1], n, PinDir::Input, 0.0, 0.0);
        }
        (b.build().expect("chain is valid"), cells)
    }

    #[test]
    fn chain_levels_increase() {
        let (nl, cells) = chain(5);
        let lv = levelize(&nl);
        assert!(lv.is_acyclic());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(lv.level[c.index()], i);
        }
        assert_eq!(lv.depth(), Some(4));
        assert_eq!(lv.order.len(), 5);
    }

    #[test]
    fn order_respects_dependencies() {
        let (nl, _) = chain(10);
        let lv = levelize(&nl);
        let pos: Vec<usize> = {
            let mut p = vec![0; nl.num_cells()];
            for (i, c) in lv.order.iter().enumerate() {
                p[c.index()] = i;
            }
            p
        };
        for net in nl.net_ids() {
            let Some(d) = nl.driver_of(net) else { continue };
            let dc = nl.pin(d).cell;
            for &p in &nl.net(net).pins {
                let pin = nl.pin(p);
                if pin.dir == PinDir::Input {
                    assert!(pos[dc.index()] < pos[pin.cell.index()], "driver after sink");
                }
            }
        }
    }

    #[test]
    fn cycle_is_detected() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let c = b.add_cell("c", 1.0, 1.0, CellKind::Movable);
        let n1 = b.add_net("n1");
        let n2 = b.add_net("n2");
        b.connect(a, n1, PinDir::Output, 0.0, 0.0);
        b.connect(c, n1, PinDir::Input, 0.0, 0.0);
        b.connect(c, n2, PinDir::Output, 0.0, 0.0);
        b.connect(a, n2, PinDir::Input, 0.0, 0.0);
        let nl = b.build().expect("valid");
        let lv = levelize(&nl);
        assert!(!lv.is_acyclic());
        assert_eq!(lv.cyclic.len(), 2);
        assert!(lv.order.is_empty());
        assert_eq!(lv.level[a.index()], usize::MAX);
    }

    #[test]
    fn fanout_tree_levels() {
        // One driver feeding three sinks: all sinks at level 1.
        let mut b = NetlistBuilder::new();
        let d = b.add_cell("d", 1.0, 1.0, CellKind::Movable);
        let sinks: Vec<CellId> = (0..3)
            .map(|i| b.add_cell(format!("s{i}"), 1.0, 1.0, CellKind::Movable))
            .collect();
        let n = b.add_net("n");
        b.connect(d, n, PinDir::Output, 0.0, 0.0);
        for &s in &sinks {
            b.connect(s, n, PinDir::Input, 0.0, 0.0);
        }
        let nl = b.build().expect("valid");
        let lv = levelize(&nl);
        assert_eq!(lv.level[d.index()], 0);
        for s in sinks {
            assert_eq!(lv.level[s.index()], 1);
        }
    }

    #[test]
    fn empty_netlist() {
        let nl = NetlistBuilder::new().build().expect("empty ok");
        let lv = levelize(&nl);
        assert!(lv.is_acyclic());
        assert_eq!(lv.depth(), None);
    }
}
