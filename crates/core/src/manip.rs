//! Density-map manipulation (paper Eq. 8, Section V-A).

/// Lifts the density of under-full bins so the average live-bin density
/// equals `d_max`, preventing diffusion from over-spreading once the
/// legalization target is met.
///
/// For every non-wall bin with `d < d_max`:
///
/// ```text
/// d̃ = d_max − (d_max − d) · A_o / A_s
/// ```
///
/// where `A_o = Σ max(d − d_max, 0)` is the total overflow and
/// `A_s = Σ max(d_max − d, 0)` the total free space (both over live
/// bins). Bins at or above `d_max`, and wall bins, are left unchanged.
///
/// Returns `(A_o, A_s)` as measured before the adjustment.
///
/// If there is no overflow (`A_o = 0`) nothing changes. If the overflow
/// meets or exceeds the free space (`A_o ≥ A_s`) the map is also left
/// unchanged: the live average already sits at or above `d_max`, so
/// over-spreading — the phenomenon Eq. 8 exists to prevent — cannot
/// happen, and applying the formula anyway would push under-full bins
/// *below* their true density (even negative, which would corrupt the
/// velocity field's `1/d` term).
///
/// # Examples
///
/// The paper's Fig. 4: 2×2 bins at `{1.0, 1.3, 0.6, 0.8}` have
/// `A_o = 0.3`, `A_s = 0.6`; the two under-full bins rise to 0.8 and 0.9
/// and the average becomes exactly 1.0.
///
/// ```
/// use dpm_diffusion::manipulate_density;
///
/// let mut d = vec![1.0, 1.3, 0.6, 0.8];
/// let (ao, a_s) = manipulate_density(&mut d, None, 1.0);
/// assert!((ao - 0.3).abs() < 1e-12);
/// assert!((a_s - 0.6).abs() < 1e-12);
/// assert!((d[2] - 0.8).abs() < 1e-12);
/// assert!((d[3] - 0.9).abs() < 1e-12);
/// let avg: f64 = d.iter().sum::<f64>() / 4.0;
/// assert!((avg - 1.0).abs() < 1e-12);
/// ```
pub fn manipulate_density(density: &mut [f64], wall: Option<&[bool]>, d_max: f64) -> (f64, f64) {
    assert!(d_max > 0.0, "d_max must be positive");
    if let Some(w) = wall {
        assert_eq!(w.len(), density.len(), "wall mask length mismatch");
    }
    let is_wall = |i: usize| wall.map(|w| w[i]).unwrap_or(false);

    let mut a_o = 0.0;
    let mut a_s = 0.0;
    for (i, &d) in density.iter().enumerate() {
        if is_wall(i) {
            continue;
        }
        if d > d_max {
            a_o += d - d_max;
        } else {
            a_s += d_max - d;
        }
    }
    if a_o <= 0.0 || a_o >= a_s {
        return (a_o, a_s);
    }
    let ratio = a_o / a_s;
    for (i, d) in density.iter_mut().enumerate() {
        if !is_wall(i) && *d < d_max {
            *d = d_max - (d_max - *d) * ratio;
        }
    }
    (a_o, a_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_becomes_d_max() {
        let mut d = vec![1.6, 0.2, 0.9, 0.4, 1.1, 0.8];
        manipulate_density(&mut d, None, 1.0);
        let avg: f64 = d.iter().sum::<f64>() / d.len() as f64;
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overfull_bins_untouched() {
        // A_o = A_s = 0.5 → ratio 1, so the average is already d_max and
        // the under-full bin keeps its value.
        let mut d = vec![1.5, 0.5];
        manipulate_density(&mut d, None, 1.0);
        assert_eq!(d[0], 1.5);
        assert!((d[1] - 0.5).abs() < 1e-12);
        let avg: f64 = d.iter().sum::<f64>() / 2.0;
        assert!((avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_overflow_is_identity() {
        let mut d = vec![0.3, 0.7, 0.9];
        let orig = d.clone();
        let (ao, _) = manipulate_density(&mut d, None, 1.0);
        assert_eq!(ao, 0.0);
        assert_eq!(d, orig);
    }

    #[test]
    fn no_free_space_is_identity() {
        let mut d = vec![1.2, 1.0, 1.3];
        let orig = d.clone();
        let (_, a_s) = manipulate_density(&mut d, None, 1.0);
        assert_eq!(a_s, 0.0);
        assert_eq!(d, orig);
    }

    #[test]
    fn overflow_exceeding_free_space_is_identity() {
        // A_o = 2.0 > A_s = 0.5: applying Eq. 8 would drive the under-full
        // bin to 1 - 0.5*(2/0.5) = -1; the guard leaves the map alone.
        let mut d = vec![3.0, 0.5];
        let orig = d.clone();
        let (a_o, a_s) = manipulate_density(&mut d, None, 1.0);
        assert_eq!(a_o, 2.0);
        assert_eq!(a_s, 0.5);
        assert_eq!(d, orig);
    }

    #[test]
    fn walls_excluded_from_both_sides() {
        let mut d = vec![2.0, 0.0, 0.0, 0.0];
        let wall = vec![false, false, true, true];
        let (ao, a_s) = manipulate_density(&mut d, Some(&wall), 1.0);
        assert_eq!(ao, 1.0);
        assert_eq!(a_s, 1.0);
        // Ratio 1: the live under-full bin keeps its density; the live
        // average is already exactly d_max. Wall bins untouched.
        assert!((d[1] - 0.0).abs() < 1e-12);
        assert_eq!(d[2], 0.0);
        assert_eq!(d[3], 0.0);
        let live_avg = (d[0] + d[1]) / 2.0;
        assert!((live_avg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_d_max() {
        let mut d = vec![0.9, 0.1];
        manipulate_density(&mut d, None, 0.5);
        // A_o = 0.4, A_s = 0.4 → under-full bin lifted to 0.5 - 0.4*1 = 0.1+...
        // d̃ = 0.5 - (0.5-0.1)*(0.4/0.4) = 0.1 → no wait, ratio 1 keeps it.
        let avg: f64 = d.iter().sum::<f64>() / 2.0;
        assert!((avg - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monotone_under_full_bins_stay_ordered() {
        let mut d = vec![1.8, 0.2, 0.5, 0.9];
        manipulate_density(&mut d, None, 1.0);
        assert!(d[1] <= d[2] && d[2] <= d[3], "order broken: {d:?}");
        assert!(d[1] >= 0.2 && d[3] <= 1.0);
    }
}
