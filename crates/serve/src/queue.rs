//! A bounded MPMC queue with explicit rejection, never unbounded
//! buffering.
//!
//! The server's admission-control contract is that a request is either
//! accepted into a fixed-capacity queue or rejected *immediately* with an
//! `Overloaded` reply — memory use is bounded no matter how fast clients
//! push. Producers therefore get only a non-blocking [`BoundedQueue::try_push`];
//! there is deliberately no blocking push. Consumers block on
//! [`BoundedQueue::pop_wait`], which drains remaining items even after
//! [`BoundedQueue::close`] — exactly the semantics graceful shutdown
//! needs (stop admitting, finish what was admitted).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`BoundedQueue::try_push`] refused an item. The item is handed
/// back so the caller can reply to the client without cloning.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue held `capacity` items already.
    Full(T),
    /// [`BoundedQueue::close`] was called; no new items are admitted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items at once.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits `item` if there is room, waking one waiting consumer.
    ///
    /// # Errors
    ///
    /// Returns the item back inside [`PushError::Full`] when at capacity
    /// or [`PushError::Closed`] after [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop_wait(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.ready.wait(s).expect("queue poisoned");
        }
    }

    /// Stops admission. Consumers finish draining, then get `None`.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (racy; for stats only).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// `true` when no items are queued (racy; for stats only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_after_close() {
        let q = BoundedQueue::new(2);
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert_eq!(q.pop_wait(), Some(1));
        q.try_push(4).expect("room again");
        q.close();
        assert!(matches!(q.try_push(5), Err(PushError::Closed(5))));
    }

    #[test]
    fn close_drains_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).expect("fits");
        q.try_push(2).expect("fits");
        q.close();
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_wait(), None);
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_wait());
        // Give the consumer a moment to block, then feed it.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(42).expect("fits");
        assert_eq!(consumer.join().expect("no panic"), Some(42));

        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop_wait());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().expect("no panic"), None);
    }

    #[test]
    fn every_pushed_item_is_popped_exactly_once() {
        let q = Arc::new(BoundedQueue::new(8));
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop_wait() {
                    got.push(v);
                }
                got
            }));
        }
        let mut pushed = 0u32;
        while pushed < 100 {
            if q.try_push(pushed).is_ok() {
                pushed += 1;
            } else {
                std::thread::yield_now();
            }
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("no panic"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
