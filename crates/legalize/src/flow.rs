//! The `FLOW` baseline: min-cost network-flow spreading, then detailed
//! legalization.
//!
//! Modeled after Brenner, Pauli & Vygen (ISPD 2004, reference \[3\] of the
//! paper): bins become flow-network nodes, overfull bins are sources and
//! free capacity sinks, and the min-cost flow over the 4-neighbor grid
//! decides how much cell *area* migrates between adjacent bins. Cells are
//! then physically moved along the flow arcs — the discrete, "rippling"
//! movement whose order-destroying behavior diffusion improves on.

use crate::detailed::detailed_legalize;
use crate::Legalizer;
use dpm_geom::{clamp, Point};
use dpm_mcmf::FlowNetwork;
use dpm_netlist::{CellId, Netlist};
use dpm_place::{BinGrid, DensityMap, Die, Placement};

/// The min-cost-flow legalizer (`FLOW` in the paper's tables).
///
/// # Examples
///
/// ```
/// use dpm_gen::{CircuitSpec, InflationSpec};
/// use dpm_legalize::{FlowLegalizer, Legalizer};
///
/// let mut bench = CircuitSpec::small(17).generate();
/// bench.inflate(&InflationSpec::random_width(0.1, 1.6, 5));
/// let outcome = FlowLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
/// assert!(outcome.is_legal);
/// ```
#[derive(Debug, Clone)]
pub struct FlowLegalizer {
    /// Bin edge length in row heights.
    bin_rows: f64,
    /// Target density.
    d_max: f64,
}

impl Default for FlowLegalizer {
    fn default() -> Self {
        Self {
            bin_rows: 2.5,
            d_max: 1.0,
        }
    }
}

impl FlowLegalizer {
    /// Creates the legalizer with default parameters (bins of 2.5 row
    /// heights, target density 1.0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bin size in row heights.
    ///
    /// # Panics
    ///
    /// Panics if `bin_rows` is not positive.
    pub fn with_bin_rows(mut self, bin_rows: f64) -> Self {
        assert!(bin_rows > 0.0, "bin size must be positive");
        self.bin_rows = bin_rows;
        self
    }
}

impl Legalizer for FlowLegalizer {
    fn name(&self) -> &str {
        "FLOW"
    }

    fn legalize_in_place(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) {
        let grid = BinGrid::new(die.outline(), self.bin_rows * die.row_height());
        let map = DensityMap::from_placement(netlist, placement, grid.clone());
        let bin_area = grid.bin_area();
        let nx = grid.nx();
        let ny = grid.ny();
        let n = nx * ny;

        // --- Build and solve the flow network -------------------------
        let s = n;
        let t = n + 1;
        let mut net = FlowNetwork::new(n + 2);
        let mut grid_edges = Vec::new();
        let mut any_overflow = false;
        for k in 0..ny {
            for j in 0..nx {
                let i = k * nx + j;
                if map.fixed_mask()[i] {
                    continue;
                }
                let d = map.densities()[i];
                let excess = ((d - self.d_max) * bin_area).round() as i64;
                if excess > 0 {
                    net.add_edge(s, i, excess, 0);
                    any_overflow = true;
                } else if excess < 0 {
                    net.add_edge(i, t, -excess, 0);
                }
                // 4-neighbor arcs (east and north; both directions).
                for (dj, dk) in [(1isize, 0isize), (0, 1)] {
                    let (jj, kk) = (j as isize + dj, k as isize + dk);
                    if jj < 0 || kk < 0 || jj >= nx as isize || kk >= ny as isize {
                        continue;
                    }
                    let other = kk as usize * nx + jj as usize;
                    if map.fixed_mask()[other] {
                        continue;
                    }
                    grid_edges.push(net.add_edge(i, other, i64::MAX / 8, 1));
                    grid_edges.push(net.add_edge(other, i, i64::MAX / 8, 1));
                }
            }
        }
        if !any_overflow {
            detailed_legalize(netlist, die, placement);
            return;
        }
        net.min_cost_max_flow(s, t)
            .expect("grid network is well-formed");

        // --- Realize the flow by moving cells along arcs ---------------
        // Per-bin cell lists (movable cells by current center).
        let mut bin_cells: Vec<Vec<CellId>> = vec![Vec::new(); n];
        for cell in netlist.movable_cell_ids() {
            let b = grid.bin_of_point(placement.cell_center(netlist, cell));
            bin_cells[grid.flat(b)].push(cell);
        }
        // Remaining area to ship per arc.
        let mut remaining: Vec<(usize, usize, f64)> = grid_edges
            .iter()
            .map(|&e| {
                let st = net.edge_state(e);
                (st.from, st.to, st.flow as f64)
            })
            .filter(|&(_, _, f)| f > 0.0)
            .collect();

        // Multiple passes: an arc can only ship once its tail bin holds
        // cells (which may arrive via another arc in a previous pass).
        for _pass in 0..16 {
            let mut progressed = false;
            for arc in remaining.iter_mut() {
                let (from, to, ref mut need) = *arc;
                if *need <= 0.0 {
                    continue;
                }
                let to_idx = grid.unflat(to);
                let target_rect = grid.bin_rect(to_idx);
                while *need > 0.0 {
                    // Nearest cell in the source bin to the target bin.
                    let Some((li, &cell)) = bin_cells[from].iter().enumerate().min_by(|a, b| {
                        let da = placement
                            .cell_center(netlist, *a.1)
                            .distance(target_rect.center());
                        let db = placement
                            .cell_center(netlist, *b.1)
                            .distance(target_rect.center());
                        da.total_cmp(&db)
                    }) else {
                        break;
                    };
                    let c = netlist.cell(cell);
                    let area = c.width * c.height;
                    // Move the cell center to the nearest interior point
                    // of the target bin.
                    let center = placement.cell_center(netlist, cell);
                    let inset = 1e-3;
                    let new_center = Point::new(
                        clamp(center.x, target_rect.llx + inset, target_rect.urx - inset),
                        clamp(center.y, target_rect.lly + inset, target_rect.ury - inset),
                    );
                    placement.set(
                        cell,
                        Point::new(new_center.x - c.width / 2.0, new_center.y - c.height / 2.0),
                    );
                    bin_cells[from].swap_remove(li);
                    bin_cells[to].push(cell);
                    *need -= area;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }

        detailed_legalize(netlist, die, placement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util;
    use dpm_place::MovementStats;

    #[test]
    fn legalizes_inflated_benchmark() {
        let mut bench = test_util::inflated_small(51);
        let outcome =
            FlowLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn legalizes_hotspot_benchmark() {
        let mut bench = test_util::hotspot_small(52);
        let outcome =
            FlowLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn respects_macros() {
        let mut bench = test_util::with_macros(53);
        let outcome =
            FlowLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn legal_input_short_circuits() {
        let bench = dpm_gen::CircuitSpec::small(54).generate();
        let mut p = bench.placement.clone();
        FlowLegalizer::new().legalize(&bench.netlist, &bench.die, &mut p);
        let m = MovementStats::between(&bench.netlist, &bench.placement, &p);
        assert_eq!(m.moved, 0, "legal placement disturbed: {m}");
    }

    #[test]
    fn deterministic() {
        let mut a = test_util::hotspot_small(55);
        let mut b = test_util::hotspot_small(55);
        FlowLegalizer::new().legalize(&a.netlist, &a.die, &mut a.placement);
        FlowLegalizer::new().legalize(&b.netlist, &b.die, &mut b.placement);
        assert_eq!(a.placement, b.placement);
    }
}
