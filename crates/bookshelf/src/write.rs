//! Writers for the Bookshelf file family.

use dpm_netlist::{CellKind, Netlist, PinDir};
use dpm_place::{Die, Placement};
use std::fmt::Write as _;

/// A design staged for Bookshelf export.
///
/// Borrowless snapshot: `from_parts` copies what it needs so the design
/// can outlive its sources (handy when exporting a placement mid-flow).
///
/// # Examples
///
/// ```
/// use dpm_bookshelf::BookshelfDesign;
///
/// let bench = dpm_gen::CircuitSpec::small(9).generate();
/// let design = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
/// let aux = design.write_aux("mychip");
/// assert!(aux.contains("mychip.nodes"));
/// ```
#[derive(Debug, Clone)]
pub struct BookshelfDesign {
    nodes: String,
    nets: String,
    pl: String,
    scl: String,
}

impl BookshelfDesign {
    /// Captures a netlist + die + placement for export.
    pub fn from_parts(netlist: &Netlist, die: &Die, placement: &Placement) -> Self {
        Self {
            nodes: render_nodes(netlist),
            nets: render_nets(netlist),
            pl: render_pl(netlist, placement),
            scl: render_scl(die),
        }
    }

    /// The `.nodes` file contents.
    pub fn write_nodes(&self) -> String {
        self.nodes.clone()
    }

    /// The `.nets` file contents.
    pub fn write_nets(&self) -> String {
        self.nets.clone()
    }

    /// The `.pl` file contents.
    pub fn write_pl(&self) -> String {
        self.pl.clone()
    }

    /// The `.scl` file contents.
    pub fn write_scl(&self) -> String {
        self.scl.clone()
    }

    /// The `.aux` file contents for a design named `base`.
    pub fn write_aux(&self, base: &str) -> String {
        format!("RowBasedPlacement : {base}.nodes {base}.nets {base}.pl {base}.scl\n")
    }

    /// Writes all five files into `dir` with the given base name.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from file creation.
    pub fn save_to(&self, dir: &std::path::Path, base: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{base}.nodes")), &self.nodes)?;
        std::fs::write(dir.join(format!("{base}.nets")), &self.nets)?;
        std::fs::write(dir.join(format!("{base}.pl")), &self.pl)?;
        std::fs::write(dir.join(format!("{base}.scl")), &self.scl)?;
        std::fs::write(dir.join(format!("{base}.aux")), self.write_aux(base))?;
        Ok(())
    }
}

fn render_nodes(netlist: &Netlist) -> String {
    let mut out = String::from("UCLA nodes 1.0\n# exported by diffuplace\n\n");
    let terminals = netlist
        .cell_ids()
        .filter(|&c| !netlist.cell(c).kind.is_movable())
        .count();
    let _ = writeln!(out, "NumNodes : {}", netlist.num_cells());
    let _ = writeln!(out, "NumTerminals : {terminals}");
    for id in netlist.cell_ids() {
        let c = netlist.cell(id);
        if c.kind == CellKind::Movable {
            let _ = writeln!(out, "   {}  {}  {}", c.name, c.width, c.height);
        } else {
            let _ = writeln!(out, "   {}  {}  {}  terminal", c.name, c.width, c.height);
        }
    }
    out
}

fn render_nets(netlist: &Netlist) -> String {
    let mut out = String::from("UCLA nets 1.0\n# exported by diffuplace\n\n");
    let _ = writeln!(out, "NumNets : {}", netlist.num_nets());
    let _ = writeln!(out, "NumPins : {}", netlist.num_pins());
    for nid in netlist.net_ids() {
        let net = netlist.net(nid);
        let _ = writeln!(out, "NetDegree : {}  {}", net.pins.len(), net.name);
        for &p in &net.pins {
            let pin = netlist.pin(p);
            let cell = netlist.cell(pin.cell);
            let dir = match pin.dir {
                PinDir::Output => 'O',
                PinDir::Input => 'I',
            };
            // Bookshelf offsets are center-relative.
            let dx = pin.offset.x - cell.width / 2.0;
            let dy = pin.offset.y - cell.height / 2.0;
            let _ = writeln!(out, "   {}  {}  :  {}  {}", cell.name, dir, dx, dy);
        }
    }
    out
}

fn render_pl(netlist: &Netlist, placement: &Placement) -> String {
    let mut out = String::from("UCLA pl 1.0\n# exported by diffuplace\n\n");
    for id in netlist.cell_ids() {
        let c = netlist.cell(id);
        let p = placement.get(id);
        if c.kind.is_movable() {
            let _ = writeln!(out, "{}  {}  {}  :  N", c.name, p.x, p.y);
        } else {
            let _ = writeln!(out, "{}  {}  {}  :  N  /FIXED", c.name, p.x, p.y);
        }
    }
    out
}

fn render_scl(die: &Die) -> String {
    let mut out = String::from("UCLA scl 1.0\n# exported by diffuplace\n\n");
    let _ = writeln!(out, "NumRows : {}", die.num_rows());
    for row in die.rows() {
        let _ = writeln!(out, "CoreRow Horizontal");
        let _ = writeln!(out, "  Coordinate    : {}", row.y);
        let _ = writeln!(out, "  Height        : {}", die.row_height());
        let _ = writeln!(out, "  Sitewidth     : 1");
        let _ = writeln!(out, "  Sitespacing   : 1");
        let _ = writeln!(out, "  Siteorient    : N");
        let _ = writeln!(out, "  Sitesymmetry  : Y");
        let _ = writeln!(
            out,
            "  SubrowOrigin  : {}  NumSites  : {}",
            row.llx,
            row.width() as u64
        );
        let _ = writeln!(out, "End");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_nets, parse_nodes, parse_pl, parse_scl};
    use dpm_gen::CircuitSpec;

    #[test]
    fn written_files_have_headers_and_counts() {
        let bench = CircuitSpec::small(41).generate();
        let d = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
        assert!(d.write_nodes().starts_with("UCLA nodes 1.0"));
        assert!(d
            .write_nets()
            .contains(&format!("NumNets : {}", bench.netlist.num_nets())));
        assert!(d
            .write_scl()
            .contains(&format!("NumRows : {}", bench.die.num_rows())));
        assert!(d.write_pl().contains("/FIXED")); // pads are fixed
    }

    #[test]
    fn writers_and_parsers_agree() {
        let bench = CircuitSpec::small(42).generate();
        let d = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
        assert_eq!(
            parse_nodes(&d.write_nodes()).expect("nodes").len(),
            bench.netlist.num_cells()
        );
        assert_eq!(
            parse_nets(&d.write_nets()).expect("nets").len(),
            bench.netlist.num_nets()
        );
        assert_eq!(
            parse_pl(&d.write_pl()).expect("pl").len(),
            bench.netlist.num_cells()
        );
        assert_eq!(
            parse_scl(&d.write_scl()).expect("scl").len(),
            bench.die.num_rows()
        );
    }

    #[test]
    fn save_to_writes_five_files() {
        let bench = CircuitSpec::small(43).generate();
        let d = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
        let dir = std::env::temp_dir().join("dpm_bookshelf_test");
        d.save_to(&dir, "t").expect("writes");
        for ext in ["nodes", "nets", "pl", "scl", "aux"] {
            assert!(dir.join(format!("t.{ext}")).exists(), "missing .{ext}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
