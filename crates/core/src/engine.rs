//! The discrete diffusion engine: FTCS density evolution and per-bin
//! velocities over a wall-aware bin grid.

use crate::telemetry::KernelTimers;
use crate::velocity::interpolate_velocity;
use dpm_geom::{Point, Vector};
use dpm_par::{parallel_for_chunks, parallel_for_chunks2, ThreadPool};
use dpm_place::DensityMap;
use std::time::Instant;

/// Density below which a bin is considered empty for velocity purposes
/// (guards the division in Eq. 5).
const DENSITY_FLOOR: f64 = 1e-9;

/// Rows per parallel work chunk for the FTCS and velocity kernels.
///
/// Fixed (never derived from the thread count) so the work decomposition
/// — and therefore every floating-point result — is identical no matter
/// how many workers execute it.
const ROW_CHUNK: usize = 16;

/// Discrete diffusion simulator over an `nx × ny` bin grid.
///
/// The engine holds the evolving density field `d(n)`, a *wall* mask
/// (bins covered by fixed macros or outside the image — density never
/// updates, velocity is zero, cells may not enter), and a *frozen* mask
/// (bins excluded from the current local-diffusion window — treated like
/// walls for the duration of a round, per Algorithm 2).
///
/// Coordinates are bin coordinates: bin `(j, k)` spans
/// `[j, j+1) × [k, k+1)` with its center at `(j+0.5, k+0.5)`.
///
/// # Examples
///
/// The worked example of the paper's Fig. 1: with `Δt = 0.2`, a bin at
/// density 1.0 whose neighbors hold 1.4/0.4 horizontally and 1.6/0.4
/// vertically steps to 0.98 and gets velocity `(0.5, 0.6)`:
///
/// ```
/// use dpm_diffusion::DiffusionEngine;
///
/// let mut d = vec![1.0; 16]; // 4×4 grid
/// let at = |j: usize, k: usize| k * 4 + j;
/// d[at(1, 1)] = 1.0;
/// d[at(0, 1)] = 1.4;
/// d[at(2, 1)] = 0.4;
/// d[at(1, 0)] = 1.6;
/// d[at(1, 2)] = 0.4;
/// let mut e = DiffusionEngine::from_raw(4, 4, d, None);
///
/// e.compute_velocities();
/// let v = e.bin_velocity(1, 1);
/// assert!((v.x - 0.5).abs() < 1e-12);
/// assert!((v.y - 0.6).abs() < 1e-12);
///
/// e.step_density(0.2);
/// assert!((e.density(1, 1) - 0.98).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct DiffusionEngine {
    nx: usize,
    ny: usize,
    density: Vec<f64>,
    next: Vec<f64>,
    wall: Vec<bool>,
    frozen: Vec<bool>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    conservative: bool,
    pool: ThreadPool,
    timers: KernelTimers,
}

/// Immutable view of the density field and masks, shared by the serial
/// and parallel FTCS paths so their arithmetic cannot diverge.
#[derive(Clone, Copy)]
struct FieldView<'a> {
    nx: usize,
    ny: usize,
    density: &'a [f64],
    wall: &'a [bool],
    frozen: &'a [bool],
    conservative: bool,
}

impl FieldView<'_> {
    #[inline]
    fn at(&self, j: usize, k: usize) -> usize {
        k * self.nx + j
    }

    /// Flat index of the neighbor if it exists and is live.
    #[inline]
    fn live_neighbor(&self, j: usize, k: usize, dj: isize, dk: isize) -> Option<usize> {
        let nj = j as isize + dj;
        let nk = k as isize + dk;
        if nj < 0 || nk < 0 || nj >= self.nx as isize || nk >= self.ny as isize {
            return None;
        }
        let i = self.at(nj as usize, nk as usize);
        if self.wall[i] || self.frozen[i] {
            None
        } else {
            Some(i)
        }
    }

    /// Density of the neighbor of `(j, k)` in direction `(dj, dk)`, with
    /// the paper's mirror boundary rule: if the neighbor is outside the
    /// grid, a wall, or frozen, the *opposite* neighbor's density is used
    /// (and the bin's own density if that is unavailable too), which
    /// makes the normal gradient zero.
    fn neighbor_density(&self, j: usize, k: usize, dj: isize, dk: isize) -> f64 {
        match self.live_neighbor(j, k, dj, dk) {
            Some(i) => self.density[i],
            None => match self.live_neighbor(j, k, -dj, -dk) {
                Some(i) => self.density[i],
                None => self.density[self.at(j, k)],
            },
        }
    }

    /// Like [`neighbor_density`](Self::neighbor_density) but with the
    /// conservative ghost (`d_ghost = d_center`) when enabled. Used only
    /// by the density step; velocities always use the mirror rule so the
    /// component normal to a boundary is exactly zero.
    fn neighbor_density_for_step(&self, j: usize, k: usize, dj: isize, dk: isize) -> f64 {
        if self.conservative {
            match self.live_neighbor(j, k, dj, dk) {
                Some(i) => self.density[i],
                None => self.density[self.at(j, k)],
            }
        } else {
            self.neighbor_density(j, k, dj, dk)
        }
    }

    /// Velocity field (Eq. 5) of rows `k0..k1`, written into `vx`/`vy`
    /// (which cover exactly those rows).
    fn velocity_rows(&self, k0: usize, k1: usize, vx: &mut [f64], vy: &mut [f64]) {
        for k in k0..k1 {
            for j in 0..self.nx {
                let i = self.at(j, k);
                let o = (k - k0) * self.nx + j;
                if self.wall[i] || self.frozen[i] {
                    vx[o] = 0.0;
                    vy[o] = 0.0;
                    continue;
                }
                let d = self.density[i];
                if d <= DENSITY_FLOOR {
                    vx[o] = 0.0;
                    vy[o] = 0.0;
                    continue;
                }
                let de = self.neighbor_density(j, k, 1, 0);
                let dw = self.neighbor_density(j, k, -1, 0);
                let dn = self.neighbor_density(j, k, 0, 1);
                let ds = self.neighbor_density(j, k, 0, -1);
                vx[o] = -(de - dw) / (2.0 * d);
                vy[o] = -(dn - ds) / (2.0 * d);
            }
        }
    }

    /// FTCS update of rows `k0..k1`, written into `out` (which covers
    /// exactly those rows).
    fn ftcs_rows(&self, k0: usize, k1: usize, half: f64, out: &mut [f64]) {
        for k in k0..k1 {
            for j in 0..self.nx {
                let i = self.at(j, k);
                let o = (k - k0) * self.nx + j;
                if self.wall[i] || self.frozen[i] {
                    out[o] = self.density[i];
                    continue;
                }
                let d = self.density[i];
                let de = self.neighbor_density_for_step(j, k, 1, 0);
                let dw = self.neighbor_density_for_step(j, k, -1, 0);
                let dn = self.neighbor_density_for_step(j, k, 0, 1);
                let ds = self.neighbor_density_for_step(j, k, 0, -1);
                out[o] = d + half * (de + dw - 2.0 * d) + half * (dn + ds - 2.0 * d);
            }
        }
    }
}

impl DiffusionEngine {
    /// Creates an engine from a measured [`DensityMap`] (macro bins become
    /// walls).
    pub fn from_density_map(map: &DensityMap) -> Self {
        Self::from_raw(
            map.grid().nx(),
            map.grid().ny(),
            map.densities().to_vec(),
            Some(map.fixed_mask().to_vec()),
        )
    }

    /// Creates an engine from raw row-major density values and an optional
    /// wall mask.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match `nx * ny` or the grid is
    /// empty.
    pub fn from_raw(nx: usize, ny: usize, density: Vec<f64>, wall: Option<Vec<bool>>) -> Self {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        assert_eq!(density.len(), nx * ny, "density buffer length mismatch");
        let wall = wall.unwrap_or_else(|| vec![false; nx * ny]);
        assert_eq!(wall.len(), nx * ny, "wall buffer length mismatch");
        let n = nx * ny;
        Self {
            nx,
            ny,
            next: density.clone(),
            density,
            wall,
            frozen: vec![false; n],
            vx: vec![0.0; n],
            vy: vec![0.0; n],
            conservative: true,
            pool: ThreadPool::single(),
            timers: KernelTimers::default(),
        }
    }

    /// Reloads density and walls from a [`DensityMap`] of the same grid,
    /// reusing every existing buffer (no allocation). Frozen bins and
    /// velocities are cleared; thread pool, boundary rule and kernel
    /// timers are kept.
    ///
    /// This is the hot path of the local-diffusion round loop, which
    /// re-measures the placement every round (dynamic density update).
    ///
    /// # Panics
    ///
    /// Panics if the map's grid dimensions do not match the engine's.
    pub fn reload_from_density_map(&mut self, map: &DensityMap) {
        assert_eq!(
            (map.grid().nx(), map.grid().ny()),
            (self.nx, self.ny),
            "density map grid does not match engine grid"
        );
        self.density.copy_from_slice(map.densities());
        self.wall.copy_from_slice(map.fixed_mask());
        self.frozen.iter_mut().for_each(|f| *f = false);
        self.vx.iter_mut().for_each(|v| *v = 0.0);
        self.vy.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Switches between a conservative boundary rule (the default) and
    /// the paper's literal rule.
    ///
    /// The paper (Section V-B) substitutes the *opposite* neighbor's
    /// density for a missing neighbor at chip/macro boundaries. That makes
    /// the worked examples of its Fig. 5 exact, but the resulting density
    /// step does not conserve mass: flow toward a boundary is
    /// double-counted by the boundary bin, so after density-map
    /// manipulation (Eq. 8) the equilibrium can drift above `d_max` and
    /// global diffusion never reaches its stopping criterion. With
    /// `conservative = true` (the default) the engine instead uses the
    /// bin's own density as the ghost value — a standard zero-flux
    /// Neumann discretization that conserves the total live density
    /// exactly. Velocity computation always uses the paper's mirror rule,
    /// which guarantees zero velocity normal to every boundary.
    ///
    /// Pass `false` to reproduce the paper's printed boundary updates
    /// (used by the Fig. 5 regression tests and the ablation bench).
    pub fn set_conservative_boundaries(&mut self, conservative: bool) {
        self.conservative = conservative;
    }

    /// Grid width in bins.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid height in bins.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    #[inline]
    fn at(&self, j: usize, k: usize) -> usize {
        debug_assert!(j < self.nx && k < self.ny);
        k * self.nx + j
    }

    /// Density of bin `(j, k)`.
    #[inline]
    pub fn density(&self, j: usize, k: usize) -> f64 {
        self.density[self.at(j, k)]
    }

    /// Overwrites the density of bin `(j, k)` (used by tests and by the
    /// dynamic density update).
    #[inline]
    pub fn set_density(&mut self, j: usize, k: usize, d: f64) {
        let i = self.at(j, k);
        self.density[i] = d;
    }

    /// Raw row-major density buffer.
    #[inline]
    pub fn densities(&self) -> &[f64] {
        &self.density
    }

    /// Replaces the whole density field (dynamic density update).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the grid.
    pub fn load_densities(&mut self, density: &[f64]) {
        assert_eq!(
            density.len(),
            self.density.len(),
            "density buffer length mismatch"
        );
        self.density.copy_from_slice(density);
    }

    /// `true` if bin `(j, k)` is a wall (fixed macro).
    #[inline]
    pub fn is_wall(&self, j: usize, k: usize) -> bool {
        self.wall[self.at(j, k)]
    }

    /// Row-major wall mask.
    #[inline]
    pub fn wall_mask(&self) -> &[bool] {
        &self.wall
    }

    /// Row-major frozen mask.
    #[inline]
    pub fn frozen_mask(&self) -> &[bool] {
        &self.frozen
    }

    /// `true` if bin `(j, k)` is frozen out of the current diffusion
    /// window.
    #[inline]
    pub fn is_frozen(&self, j: usize, k: usize) -> bool {
        self.frozen[self.at(j, k)]
    }

    /// `true` if the bin participates in diffusion (neither wall nor
    /// frozen).
    #[inline]
    pub fn is_live(&self, j: usize, k: usize) -> bool {
        let i = self.at(j, k);
        !self.wall[i] && !self.frozen[i]
    }

    /// Installs a frozen mask (from [`identify_windows`]); `true` entries
    /// are excluded from diffusion. Wall bins stay walls regardless.
    ///
    /// # Panics
    ///
    /// Panics if the mask length does not match the grid.
    ///
    /// [`identify_windows`]: crate::identify_windows
    pub fn set_frozen_mask(&mut self, frozen: &[bool]) {
        assert_eq!(
            frozen.len(),
            self.frozen.len(),
            "frozen mask length mismatch"
        );
        self.frozen.copy_from_slice(frozen);
    }

    /// Unfreezes every bin (global diffusion mode).
    pub fn clear_frozen(&mut self) {
        self.frozen.iter_mut().for_each(|f| *f = false);
    }

    /// Number of live (diffusing) bins.
    pub fn live_bins(&self) -> usize {
        self.wall
            .iter()
            .zip(&self.frozen)
            .filter(|(&w, &f)| !w && !f)
            .count()
    }

    /// Maximum density over live bins (0 if none).
    pub fn max_live_density(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.density.len() {
            if !self.wall[i] && !self.frozen[i] {
                m = m.max(self.density[i]);
            }
        }
        m
    }

    /// Sum of density over live bins.
    pub fn total_live_density(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.density.len() {
            if !self.wall[i] && !self.frozen[i] {
                s += self.density[i];
            }
        }
        s
    }

    /// Total overflow `Σ max(d − d_max, 0)` over live bins.
    pub fn total_overflow(&self, d_max: f64) -> f64 {
        let mut s = 0.0;
        for i in 0..self.density.len() {
            if !self.wall[i] && !self.frozen[i] {
                s += (self.density[i] - d_max).max(0.0);
            }
        }
        s
    }

    /// Number of worker threads the kernels may use (1 = serial).
    ///
    /// The FTCS update and the velocity field are embarrassingly parallel
    /// over bin rows, cell advection over cell chunks; on large grids
    /// (hundreds of bins per side) extra threads cut the kernel time
    /// roughly linearly on multicore hardware. Work is decomposed into
    /// fixed chunks independent of the thread count, so results are
    /// bit-identical to the serial path.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = ThreadPool::new(threads);
    }

    /// The worker-thread count currently configured.
    #[inline]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The worker pool the engine's kernels run on (advection borrows it
    /// so the whole loop shares one pool configuration).
    #[inline]
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Accumulated per-kernel wall-time counters for this engine.
    #[inline]
    pub fn kernel_timers(&self) -> &KernelTimers {
        &self.timers
    }

    /// Mutable access to the kernel counters (the diffusion runners record
    /// advection and splat time here so one struct holds the whole loop).
    #[inline]
    pub fn kernel_timers_mut(&mut self) -> &mut KernelTimers {
        &mut self.timers
    }

    /// Advances the density field by one FTCS step (Eq. 4):
    ///
    /// `d(n+1) = d(n) + Δt/2·(d_E + d_W − 2d) + Δt/2·(d_N + d_S − 2d)`
    ///
    /// with mirror substitution at chip/macro boundaries (Section V-B).
    /// Wall and frozen bins do not update.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `dt` is outside the stability region
    /// `(0, 0.5]`.
    pub fn step_density(&mut self, dt: f64) {
        debug_assert!(dt > 0.0 && dt <= 0.5, "dt outside FTCS stability region");
        let half = dt / 2.0;
        let start = Instant::now();
        let view = FieldView {
            nx: self.nx,
            ny: self.ny,
            density: &self.density,
            wall: &self.wall,
            frozen: &self.frozen,
            conservative: self.conservative,
        };
        let nx = self.nx;
        parallel_for_chunks(
            &self.pool,
            &mut self.next,
            ROW_CHUNK * nx,
            |_, range, out| {
                view.ftcs_rows(range.start / nx, range.end / nx, half, out);
            },
        );
        self.timers
            .ftcs
            .record(start.elapsed(), self.pool.threads());
        std::mem::swap(&mut self.density, &mut self.next);
    }

    /// Recomputes the per-bin velocity field from the current density
    /// (Eq. 5):
    ///
    /// `v_H = −(d_E − d_W) / (2d)` and `v_V = −(d_N − d_S) / (2d)`.
    ///
    /// Mirror substitution makes the component normal to a chip or macro
    /// boundary zero, as the paper requires; wall and frozen bins have
    /// zero velocity outright. Bins with (numerically) no density get zero
    /// velocity — there is nothing there to move.
    pub fn compute_velocities(&mut self) {
        let start = Instant::now();
        let view = FieldView {
            nx: self.nx,
            ny: self.ny,
            density: &self.density,
            wall: &self.wall,
            frozen: &self.frozen,
            conservative: self.conservative,
        };
        let nx = self.nx;
        parallel_for_chunks2(
            &self.pool,
            &mut self.vx,
            &mut self.vy,
            ROW_CHUNK * nx,
            |_, range, vx, vy| {
                view.velocity_rows(range.start / nx, range.end / nx, vx, vy);
            },
        );
        self.timers
            .velocity
            .record(start.elapsed(), self.pool.threads());
    }

    /// The velocity assigned to bin `(j, k)` by the latest
    /// [`compute_velocities`](Self::compute_velocities) call.
    #[inline]
    pub fn bin_velocity(&self, j: usize, k: usize) -> Vector {
        let i = self.at(j, k);
        Vector::new(self.vx[i], self.vy[i])
    }

    /// Overrides a bin's velocity (test hook for the paper's worked
    /// interpolation example).
    #[inline]
    pub fn set_bin_velocity(&mut self, j: usize, k: usize, v: Vector) {
        let i = self.at(j, k);
        self.vx[i] = v.x;
        self.vy[i] = v.y;
    }

    /// The velocity at an arbitrary point in bin coordinates, bilinearly
    /// interpolated between the four nearest bin centers (Eq. 6).
    ///
    /// Points within half a bin of the grid edge clamp to the edge bin's
    /// velocity (velocity is replicated outward).
    pub fn velocity_at(&self, p: Point) -> Vector {
        let xs = p.x + 0.5;
        let ys = p.y + 0.5;
        let alpha = xs - xs.floor();
        let beta = ys - ys.floor();
        // p,q = lower-left of the four nearest centers; may be -1 at edges.
        let pj = xs.floor() as isize - 1;
        let qk = ys.floor() as isize - 1;
        let clamp_j = |v: isize| v.clamp(0, self.nx as isize - 1) as usize;
        let clamp_k = |v: isize| v.clamp(0, self.ny as isize - 1) as usize;
        let v00 = self.bin_velocity(clamp_j(pj), clamp_k(qk));
        let v10 = self.bin_velocity(clamp_j(pj + 1), clamp_k(qk));
        let v01 = self.bin_velocity(clamp_j(pj), clamp_k(qk + 1));
        let v11 = self.bin_velocity(clamp_j(pj + 1), clamp_k(qk + 1));
        interpolate_velocity(v00, v10, v01, v11, alpha, beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(nx: usize, j: usize, k: usize) -> usize {
        k * nx + j
    }

    /// Engine matching the paper's Fig. 1 neighborhood.
    fn fig1_engine() -> DiffusionEngine {
        let mut d = vec![1.0; 16];
        d[at(4, 1, 1)] = 1.0;
        d[at(4, 0, 1)] = 1.4;
        d[at(4, 2, 1)] = 0.4;
        d[at(4, 1, 0)] = 1.6;
        d[at(4, 1, 2)] = 0.4;
        DiffusionEngine::from_raw(4, 4, d, None)
    }

    #[test]
    fn fig1_density_step() {
        let mut e = fig1_engine();
        e.step_density(0.2);
        assert!((e.density(1, 1) - 0.98).abs() < 1e-12);
    }

    #[test]
    fn fig1_velocity() {
        let mut e = fig1_engine();
        e.compute_velocities();
        let v = e.bin_velocity(1, 1);
        assert!((v.x - 0.5).abs() < 1e-12);
        assert!((v.y - 0.6).abs() < 1e-12);
    }

    /// Fig. 5: FTCS under macro mirror boundary conditions.
    fn fig5_engine() -> DiffusionEngine {
        let nx = 7;
        let ny = 7;
        let mut d = vec![1.0; nx * ny];
        let mut w = vec![false; nx * ny];
        // Fixed block over bins (4,3)..(5,4).
        for k in 3..=4 {
            for j in 4..=5 {
                w[at(nx, j, k)] = true;
                d[at(nx, j, k)] = 1.0;
            }
        }
        d[at(nx, 3, 6)] = 1.0;
        d[at(nx, 4, 6)] = 0.2;
        d[at(nx, 2, 5)] = 1.2;
        d[at(nx, 3, 5)] = 0.4;
        d[at(nx, 4, 5)] = 0.8;
        d[at(nx, 5, 5)] = 0.6;
        d[at(nx, 2, 4)] = 1.4;
        d[at(nx, 3, 4)] = 0.8;
        d[at(nx, 3, 3)] = 1.6;
        let mut e = DiffusionEngine::from_raw(nx, ny, d, Some(w));
        // The Fig. 5 worked example uses the paper's literal boundary rule.
        e.set_conservative_boundaries(false);
        e
    }

    #[test]
    fn fig5_macro_boundary_updates() {
        let mut e = fig5_engine();
        e.step_density(0.2);
        // d(3,4): right neighbor is the macro, mirror with left (2,4)=1.4.
        assert!(
            (e.density(3, 4) - 0.96).abs() < 1e-12,
            "got {}",
            e.density(3, 4)
        );
        // d(4,5): lower neighbor is the macro, mirror with upper (4,6)=0.2.
        assert!(
            (e.density(4, 5) - 0.62).abs() < 1e-12,
            "got {}",
            e.density(4, 5)
        );
        // Macro bins never change.
        assert_eq!(e.density(4, 4), 1.0);
        assert_eq!(e.density(5, 3), 1.0);
    }

    #[test]
    fn walls_have_zero_velocity_and_normal_component_vanishes() {
        let mut e = fig5_engine();
        e.compute_velocities();
        assert_eq!(e.bin_velocity(4, 4), Vector::ZERO);
        // Bin (3,4) sits left of the macro: mirror makes its horizontal
        // gradient zero, so vx = 0.
        assert_eq!(e.bin_velocity(3, 4).x, 0.0);
        // Bin (4,5) sits above the macro: vy = 0.
        assert_eq!(e.bin_velocity(4, 5).y, 0.0);
    }

    #[test]
    fn chip_edge_velocity_points_inward_only() {
        // Dense bin in a corner: velocity must not point off-chip.
        let mut d = vec![0.1; 9];
        d[0] = 2.0;
        let mut e = DiffusionEngine::from_raw(3, 3, d, None);
        e.compute_velocities();
        let v = e.bin_velocity(0, 0);
        assert!(
            v.x >= 0.0 && v.y >= 0.0,
            "corner velocity {v:?} points off-chip"
        );
    }

    #[test]
    fn interior_mass_is_conserved_between_steps() {
        // Away from boundaries FTCS is exactly conservative: compare the
        // change of one interior bin against what its neighbors exchanged.
        let mut e = fig1_engine();
        let m0: f64 = e.densities().iter().sum();
        e.step_density(0.2);
        // One step on a 4x4 grid does touch boundaries, so compare against
        // the known non-conservative drift bound instead of exactness.
        let m1: f64 = e.densities().iter().sum();
        assert!((m1 - m0).abs() < 0.5, "implausible drift {m0} -> {m1}");
    }

    #[test]
    fn paper_boundary_rule_drifts_but_stays_bounded() {
        // The paper's mirror rule (Section V-B) is not conservative: flow
        // toward a boundary is double-counted. Document the behavior: the
        // total drifts, but remains bounded by the uniform-equilibrium
        // band [min, max] of the initial field times the bin count.
        let mut e = fig5_engine();
        let m0 = e.total_live_density();
        for _ in 0..200 {
            e.step_density(0.2);
        }
        let m1 = e.total_live_density();
        assert!(
            (m1 - m0).abs() / m0 < 0.1,
            "drift exceeded 10%: {m0} -> {m1}"
        );
    }

    #[test]
    fn conservative_mode_conserves_mass_exactly() {
        let mut e = fig5_engine();
        e.set_conservative_boundaries(true);
        let m0 = e.total_live_density();
        for _ in 0..500 {
            e.step_density(0.2);
        }
        let m1 = e.total_live_density();
        assert!((m0 - m1).abs() < 1e-9, "mass drifted from {m0} to {m1}");
    }

    #[test]
    fn diffusion_flattens_toward_uniform() {
        let mut d = vec![0.0; 25];
        d[12] = 5.0; // spike in the middle
        let mut e = DiffusionEngine::from_raw(5, 5, d, None);
        for _ in 0..2000 {
            e.step_density(0.2);
        }
        // Equilibrium is uniform (its level depends on the boundary rule).
        let lo = e.densities().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = e.densities().iter().cloned().fold(0.0f64, f64::max);
        assert!(hi - lo < 1e-6, "not uniform: [{lo}, {hi}]");
    }

    #[test]
    fn conservative_diffusion_flattens_to_exact_average() {
        let mut d = vec![0.0; 25];
        d[12] = 5.0;
        let mut e = DiffusionEngine::from_raw(5, 5, d, None);
        e.set_conservative_boundaries(true);
        for _ in 0..2000 {
            e.step_density(0.2);
        }
        for k in 0..5 {
            for j in 0..5 {
                assert!(
                    (e.density(j, k) - 0.2).abs() < 1e-6,
                    "bin ({j},{k}) = {}",
                    e.density(j, k)
                );
            }
        }
    }

    #[test]
    fn frozen_bins_act_as_walls() {
        let mut d = vec![0.0; 9];
        d[at(3, 0, 0)] = 1.0;
        let mut e = DiffusionEngine::from_raw(3, 3, d, None);
        e.set_conservative_boundaries(true);
        // Freeze the right column; density must stay in the left 2x3 block.
        let mut frozen = vec![false; 9];
        for k in 0..3 {
            frozen[at(3, 2, k)] = true;
        }
        e.set_frozen_mask(&frozen);
        for _ in 0..500 {
            e.step_density(0.2);
        }
        for k in 0..3 {
            assert_eq!(
                e.density(2, k),
                0.0,
                "density leaked into frozen bin (2,{k})"
            );
        }
        assert!((e.total_live_density() - 1.0).abs() < 1e-9);
        assert_eq!(e.live_bins(), 6);
        e.clear_frozen();
        assert_eq!(e.live_bins(), 9);
    }

    #[test]
    fn max_and_overflow_metrics() {
        let mut d = vec![0.5; 4];
        d[0] = 1.5;
        let e = DiffusionEngine::from_raw(2, 2, d, None);
        assert_eq!(e.max_live_density(), 1.5);
        assert!((e.total_overflow(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.total_overflow(2.0), 0.0);
    }

    #[test]
    fn velocity_interpolation_matches_paper_example() {
        // Fig. 2: v(1,1)=(0.5,0.6), v(2,1)=(0.25,-0.25), v(1,2)=(0.5,0),
        // v(2,2)=(-0.125,0.125), query point (1.6,1.8) with α=0.1, β=0.3.
        // Evaluating the paper's own Eq. 6 with these inputs yields
        // (0.46375, 0.36425); the values printed in the paper's prose
        // (0.45625, 0.40175) do not satisfy Eq. 6 — a known arithmetic
        // slip in the text. We pin the equation, not the typo.
        let mut e = DiffusionEngine::from_raw(4, 4, vec![1.0; 16], None);
        e.set_bin_velocity(1, 1, Vector::new(0.5, 0.6));
        e.set_bin_velocity(2, 1, Vector::new(0.25, -0.25));
        e.set_bin_velocity(1, 2, Vector::new(0.5, 0.0));
        e.set_bin_velocity(2, 2, Vector::new(-0.125, 0.125));
        let v = e.velocity_at(Point::new(1.6, 1.8));
        assert!((v.x - 0.46375).abs() < 1e-12, "vx = {}", v.x);
        assert!((v.y - 0.36425).abs() < 1e-12, "vy = {}", v.y);
    }

    #[test]
    fn velocity_at_bin_center_is_bin_velocity() {
        let mut e = DiffusionEngine::from_raw(3, 3, vec![1.0; 9], None);
        e.set_bin_velocity(1, 1, Vector::new(0.3, -0.7));
        let v = e.velocity_at(Point::new(1.5, 1.5));
        assert!((v.x - 0.3).abs() < 1e-12);
        assert!((v.y + 0.7).abs() < 1e-12);
    }

    #[test]
    fn velocity_at_edges_clamps() {
        let mut e = DiffusionEngine::from_raw(2, 2, vec![1.0; 4], None);
        e.set_bin_velocity(0, 0, Vector::new(1.0, 1.0));
        // Point in the lower-left quarter-bin: all four clamped corners are
        // bin (0,0) — result is exactly its velocity.
        let v = e.velocity_at(Point::new(0.1, 0.2));
        assert!((v.x - 1.0).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bin_gets_zero_velocity() {
        let mut d = vec![1.0; 9];
        d[at(3, 1, 1)] = 0.0;
        let mut e = DiffusionEngine::from_raw(3, 3, d, None);
        e.compute_velocities();
        assert_eq!(e.bin_velocity(1, 1), Vector::ZERO);
    }

    #[test]
    fn load_densities_replaces_field() {
        let mut e = DiffusionEngine::from_raw(2, 2, vec![0.0; 4], None);
        e.load_densities(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.density(1, 1), 4.0);
        assert_eq!(e.densities(), &[1.0, 2.0, 3.0, 4.0]);
    }

    /// A bumpy 64×64 field with a wall block and a frozen stripe —
    /// exercises every boundary rule the kernels implement.
    fn bumpy_engine(threads: usize) -> DiffusionEngine {
        let n = 64usize;
        let density: Vec<f64> = (0..n * n)
            .map(|i| 0.25 + ((i * 2654435761usize) % 997) as f64 / 997.0)
            .collect();
        let mut wall = vec![false; n * n];
        for k in 20..28 {
            for j in 30..44 {
                wall[k * n + j] = true;
            }
        }
        let mut e = DiffusionEngine::from_raw(n, n, density, Some(wall));
        let mut frozen = vec![false; n * n];
        for k in 48..56 {
            for j in 8..20 {
                frozen[k * n + j] = true;
            }
        }
        e.set_frozen_mask(&frozen);
        e.set_threads(threads);
        e
    }

    #[test]
    fn parallel_step_is_bit_identical_to_serial() {
        let mut serial = bumpy_engine(1);
        for _ in 0..25 {
            serial.step_density(0.2);
        }
        for threads in [2, 4, 8] {
            let mut parallel = bumpy_engine(threads);
            for _ in 0..25 {
                parallel.step_density(0.2);
            }
            assert_eq!(
                serial.densities(),
                parallel.densities(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_velocities_are_bit_identical_to_serial() {
        let mut serial = bumpy_engine(1);
        serial.compute_velocities();
        for threads in [2, 4, 8] {
            let mut parallel = bumpy_engine(threads);
            parallel.compute_velocities();
            for k in 0..serial.ny() {
                for j in 0..serial.nx() {
                    assert_eq!(
                        serial.bin_velocity(j, k),
                        parallel.bin_velocity(j, k),
                        "bin ({j},{k}), threads = {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_timers_accumulate() {
        let mut e = bumpy_engine(2);
        e.step_density(0.2);
        e.compute_velocities();
        e.compute_velocities();
        let t = e.kernel_timers();
        assert_eq!(t.ftcs.calls, 1);
        assert_eq!(t.velocity.calls, 2);
        assert_eq!(t.ftcs.max_threads, 2);
        assert_eq!(t.ftcs.serial_ns, 0);
        assert!(t.velocity.parallel_ns > 0);
    }

    #[test]
    fn reload_reuses_buffers_and_clears_state() {
        use dpm_geom::{Point, Rect};
        use dpm_netlist::{CellKind, NetlistBuilder};
        use dpm_place::{BinGrid, Placement};

        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", 10.0, 10.0, CellKind::Movable);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(1);
        p.set(c, Point::new(0.0, 0.0));
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
        let map = DensityMap::from_placement(&nl, &p, grid.clone());

        let mut e = DiffusionEngine::from_density_map(&map);
        e.set_frozen_mask(&[true; 16]);
        e.compute_velocities();
        p.set(c, Point::new(30.0, 30.0));
        let map2 = DensityMap::from_placement(&nl, &p, grid);
        e.reload_from_density_map(&map2);
        assert_eq!(e.densities(), map2.densities());
        assert_eq!(e.live_bins(), 16, "frozen mask must be cleared");
        assert_eq!(e.bin_velocity(0, 0), Vector::ZERO);
    }

    #[test]
    fn tiny_grid_falls_back_to_serial() {
        let mut e = DiffusionEngine::from_raw(3, 3, vec![1.0; 9], None);
        e.set_threads(8); // more threads than rows: must still work
        e.step_density(0.2);
        assert!((e.total_live_density() - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_density_buffer_rejected() {
        let _ = DiffusionEngine::from_raw(2, 2, vec![0.0; 3], None);
    }
}
