//! Cross-checks of the optimizing kernels against brute force on small
//! inputs: min-cost max-flow against exhaustive path enumeration, and
//! the timing analyzer against explicit path walking.

use diffuplace::mcmf::FlowNetwork;
use diffuplace::netlist::{CellKind, NetlistBuilder, PinDir};
use diffuplace::place::Placement;
use diffuplace::rng::Rng;
use diffuplace::sta::{DelayModel, TimingAnalyzer};

/// Brute-force min-cost max-flow on a tiny DAG-ish random graph by
/// exhaustively trying integral flows per edge. Only feasible for very
/// small instances, which is the point.
fn brute_force_min_cost_max_flow(
    n: usize,
    edges: &[(usize, usize, i64, i64)],
    s: usize,
    t: usize,
) -> (i64, i64) {
    // Enumerate per-edge flows 0..=cap via odometer search; check
    // conservation; track (max flow, min cost).
    let mut best = (0i64, 0i64);
    let m = edges.len();
    let mut flows = vec![0i64; m];
    loop {
        // Check conservation at every node except s, t.
        let mut net = vec![0i64; n];
        for (i, &(u, v, _, _)) in edges.iter().enumerate() {
            net[u] -= flows[i];
            net[v] += flows[i];
        }
        let conserved = (0..n).all(|v| v == s || v == t || net[v] == 0);
        if conserved {
            let flow = net[t];
            let cost: i64 = edges
                .iter()
                .zip(&flows)
                .map(|(&(_, _, _, c), &f)| c * f)
                .sum();
            if flow > best.0 || (flow == best.0 && cost < best.1) {
                best = (flow, cost);
            }
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == m {
                return best;
            }
            if flows[i] < edges[i].2 {
                flows[i] += 1;
                break;
            }
            flows[i] = 0;
            i += 1;
        }
    }
}

/// The solver matches brute force on random 4-node graphs with small
/// capacities.
#[test]
fn mcmf_matches_brute_force() {
    for case in 0..32u64 {
        let mut rng = Rng::seed_from_u64(0xE1 ^ case);
        let caps: Vec<i64> = (0..5).map(|_| rng.random_range(0i64..3)).collect();
        let costs: Vec<i64> = (0..5).map(|_| rng.random_range(0i64..4)).collect();
        // Fixed 4-node topology: s=0, t=3, edges 0→1, 0→2, 1→2, 1→3, 2→3.
        let topo = [(0usize, 1usize), (0, 2), (1, 2), (1, 3), (2, 3)];
        let edges: Vec<(usize, usize, i64, i64)> = topo
            .iter()
            .zip(caps.iter().zip(&costs))
            .map(|(&(u, v), (&cap, &cost))| (u, v, cap, cost))
            .collect();
        let expected = brute_force_min_cost_max_flow(4, &edges, 0, 3);

        let mut net = FlowNetwork::new(4);
        for &(u, v, cap, cost) in &edges {
            net.add_edge(u, v, cap, cost);
        }
        let got = net.min_cost_max_flow(0, 3).expect("solves");
        assert_eq!((got.amount, got.cost), expected, "case {case}");
    }
}

/// The STA's critical path equals the explicit maximum over all paths of
/// a three-stage diamond.
#[test]
fn sta_matches_explicit_path_enumeration() {
    // pad → {a, b} → c, with different cell delays and positions.
    let mut b = NetlistBuilder::new();
    let pad = b.add_cell_with_delay("pad", 1.0, 1.0, CellKind::Pad, 0.5);
    let ca = b.add_cell_with_delay("a", 4.0, 12.0, CellKind::Movable, 1.0);
    let cb = b.add_cell_with_delay("b", 4.0, 12.0, CellKind::Movable, 3.0);
    let cc = b.add_cell_with_delay("c", 4.0, 12.0, CellKind::Movable, 2.0);
    let n0 = b.add_net("n0");
    b.connect(pad, n0, PinDir::Output, 0.0, 0.0);
    b.connect(ca, n0, PinDir::Input, 0.0, 0.0);
    b.connect(cb, n0, PinDir::Input, 0.0, 0.0);
    let n1 = b.add_net("n1");
    b.connect(ca, n1, PinDir::Output, 0.0, 0.0);
    b.connect(cc, n1, PinDir::Input, 0.0, 0.0);
    let n2 = b.add_net("n2");
    b.connect(cb, n2, PinDir::Output, 0.0, 0.0);
    b.connect(cc, n2, PinDir::Input, 0.0, 0.0);
    let nl = b.build().expect("valid");

    let mut p = Placement::new(4);
    p.set(pad, diffuplace::geom::Point::new(0.0, 0.0));
    p.set(ca, diffuplace::geom::Point::new(10.0, 0.0));
    p.set(cb, diffuplace::geom::Point::new(50.0, 0.0));
    p.set(cc, diffuplace::geom::Point::new(100.0, 0.0));

    let model = DelayModel::new(0.01, 0.0);
    let sta = TimingAnalyzer::new(&nl, model);
    let cp = sta.critical_path_delay(&nl, &p);

    // Manual: net delays are 0.01 × manhattan between pin positions.
    let w = |a: f64, c: f64| 0.01 * (c - a).abs();
    let path_a = 0.5 + w(0.0, 10.0) + 1.0 + w(10.0, 100.0) + 2.0;
    let path_b = 0.5 + w(0.0, 50.0) + 3.0 + w(50.0, 100.0) + 2.0;
    let expected = path_a.max(path_b);
    assert!(
        (cp - expected).abs() < 1e-9,
        "cp {cp} vs expected {expected}"
    );
}

/// Abacus in-row placement never loses to naive left-packing on total
/// squared displacement (it is the optimal order-preserving placement).
#[test]
fn abacus_beats_left_packing() {
    let mut rng = Rng::seed_from_u64(77);
    for _ in 0..50 {
        let n = rng.random_range(2..8);
        let cells: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random_range(0.0..80.0), rng.random_range(2.0..10.0)))
            .collect();
        let mut sorted = cells.clone();
        sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

        // The diffuplace detailed legalizer is not exported at function
        // level; emulate via a tiny row: place cells on one row of a die
        // and check the result. Instead, compare cost of the library's
        // row placement against left-packing cost directly through the
        // DetailedLegalizer on a single-row die.
        let mut b = NetlistBuilder::new();
        for (i, &(_, w)) in sorted.iter().enumerate() {
            b.add_cell(format!("c{i}"), w, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = diffuplace::place::Die::new(100.0, 12.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, c) in nl.movable_cell_ids().enumerate() {
            p.set(
                c,
                diffuplace::geom::Point::new(sorted[i].0.min(100.0 - sorted[i].1), 0.0),
            );
        }
        let desired = p.clone();
        diffuplace::legalize::run_legalizer(
            &diffuplace::legalize::DetailedLegalizer::new(),
            &nl,
            &die,
            &mut p,
        );

        let cost = |q: &Placement| -> f64 {
            nl.movable_cell_ids()
                .map(|c| {
                    let d = q.get(c).x - desired.get(c).x;
                    nl.cell(c).width * d * d
                })
                .sum()
        };
        // Left packing: cells in order from x = 0.
        let mut lp = Placement::new(nl.num_cells());
        let mut cursor = 0.0;
        for (i, c) in nl.movable_cell_ids().enumerate() {
            lp.set(c, diffuplace::geom::Point::new(cursor, 0.0));
            cursor += sorted[i].1;
        }
        assert!(
            cost(&p) <= cost(&lp) + 1e-6,
            "abacus cost {} worse than left packing {}",
            cost(&p),
            cost(&lp)
        );
        // And the result is legal.
        let report = diffuplace::place::check_legality(&nl, &die, &p, 3);
        assert!(report.is_legal(), "{report}");
    }
}
