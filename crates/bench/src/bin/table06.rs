//! Table VI — inflation-distribution effect: FLOW vs DIFF(G) under
//! distributed (D) and centralized (C) inflation on ckt1.

use dpm_bench::{fnum, print_table, scale_from_env, Experiment, TextTable, CKT_DEFAULT_SCALE};
use dpm_gen::suites::ckt_suite;
use dpm_gen::InflationSpec;
use dpm_legalize::{DiffusionLegalizer, FlowLegalizer};

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Table VI at scale {scale} (ckt1, D=23% vs C=18%).");
    let entry = &ckt_suite(scale)[0];
    let specs = [
        ("D(23)", InflationSpec::distributed(0.23, 77)),
        ("C(18)", InflationSpec::centered(0.18, 0.25, 77)),
    ];

    let mut t = TextTable::new([
        "type", "FLOW TWL", "D(G) TWL", "FLOW WNS", "D(G) WNS", "FLOW FOM", "D(G) FOM",
    ]);
    let mut results = Vec::new();
    for (label, inflation) in specs {
        let base = entry.spec.generate();
        let mut bench = entry.spec.generate();
        bench.inflate(&inflation);
        let exp = Experiment::new(bench, &base);
        let flow = exp.run(&FlowLegalizer::new());
        let diff = exp.run(&DiffusionLegalizer::global_default());
        t.row([
            label.to_string(),
            fnum(flow.metrics.twl),
            fnum(diff.metrics.twl),
            fnum(flow.metrics.wns),
            fnum(diff.metrics.wns),
            fnum(flow.metrics.fom),
            fnum(diff.metrics.fom),
        ]);
        results.push((flow, diff));
    }
    // Δ row: degradation from D to C. The paper's point: DIFF(G) is far
    // less sensitive to concentrated overlap than FLOW.
    t.row([
        "delta(C-D)".to_string(),
        fnum(results[1].0.metrics.twl - results[0].0.metrics.twl),
        fnum(results[1].1.metrics.twl - results[0].1.metrics.twl),
        fnum(results[1].0.metrics.wns - results[0].0.metrics.wns),
        fnum(results[1].1.metrics.wns - results[0].1.metrics.wns),
        fnum(results[1].0.metrics.fom - results[0].0.metrics.fom),
        fnum(results[1].1.metrics.fom - results[0].1.metrics.fom),
    ]);
    print_table(
        "Table VI: inflation distribution effect (paper: FLOW degrades ~7x more TWL than DIFF(G))",
        &t,
    );
}
