//! The discrete diffusion engine: FTCS density evolution and per-axis
//! velocities over a wall-aware bin grid, planar ([`Dims::D2`]) or
//! volumetric ([`Dims::D3`]).

use crate::config::{FieldPrecision, LaneMode};
use crate::dims::Dims;
use crate::telemetry::KernelTimers;
use crate::velocity::interpolate_velocity;
use dpm_geom::{Point, Point3, Vector, Vector3};
use dpm_par::{
    blocked_lines, parallel_for_chunks, parallel_for_chunks2, parallel_for_chunks3, ThreadPool,
    CACHE_BLOCK_BYTES,
};
use dpm_place::DensityMap;
use std::time::Instant;

/// Density below which a bin is considered empty for velocity purposes
/// (guards the division in Eq. 5).
const DENSITY_FLOOR: f64 = 1e-9;

/// Explicit lane width of the f64 fast paths: 4 bins per chunk (one
/// 32-byte vector register / half a cache line).
const LANES_F64: usize = 4;

/// Explicit lane width of the f32 fast paths: 8 bins per chunk (the
/// same 32 bytes as [`LANES_F64`]).
const LANES_F32: usize = 8;

/// Scalar type the grid kernels are generic over: `f64` (the default
/// field) or `f32` ([`FieldPrecision::F32`]).
///
/// The trait carries exactly the constants the kernel expressions need,
/// so the generic bodies are *textually identical* to the historical
/// f64-only kernels — which is what makes the f64 instantiation
/// bit-identical to the pre-refactor engine.
trait LaneScalar:
    Copy
    + PartialOrd
    + Send
    + Sync
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
{
    /// Additive identity (also the "no velocity" value).
    const ZERO: Self;
    /// The literal `2.0` of Eq. 4 and Eq. 5.
    const TWO: Self;
    /// [`DENSITY_FLOOR`] in this precision.
    const FLOOR: Self;
}

impl LaneScalar for f64 {
    const ZERO: Self = 0.0;
    const TWO: Self = 2.0;
    const FLOOR: Self = DENSITY_FLOOR;
}

impl LaneScalar for f32 {
    const ZERO: Self = 0.0;
    const TWO: Self = 2.0;
    const FLOOR: Self = DENSITY_FLOOR as f32;
}

/// Discrete diffusion simulator over a [`Dims`] bin grid.
///
/// The engine holds the evolving density field `d(n)`, a *wall* mask
/// (bins covered by fixed macros or outside the image — density never
/// updates, velocity is zero, cells may not enter), and a *frozen* mask
/// (bins excluded from the current local-diffusion window — treated like
/// walls for the duration of a round, per Algorithm 2).
///
/// Coordinates are bin coordinates: bin `(j, k)` spans
/// `[j, j+1) × [k, k+1)` with its center at `(j+0.5, k+0.5)`; on a
/// volumetric grid tier `z` spans `[z, z+1)` the same way. The kernels
/// are written per axis, so a [`Dims::D3`] grid simply diffuses along
/// three axes; on a [`Dims::D2`] grid the z axis does not exist and the
/// arithmetic is bit-identical to the historical planar engine.
///
/// # Examples
///
/// The worked example of the paper's Fig. 1: with `Δt = 0.2`, a bin at
/// density 1.0 whose neighbors hold 1.4/0.4 horizontally and 1.6/0.4
/// vertically steps to 0.98 and gets velocity `(0.5, 0.6)`:
///
/// ```
/// use dpm_diffusion::DiffusionEngine;
///
/// let mut d = vec![1.0; 16]; // 4×4 grid
/// let at = |j: usize, k: usize| k * 4 + j;
/// d[at(1, 1)] = 1.0;
/// d[at(0, 1)] = 1.4;
/// d[at(2, 1)] = 0.4;
/// d[at(1, 0)] = 1.6;
/// d[at(1, 2)] = 0.4;
/// let mut e = DiffusionEngine::from_raw(4, 4, d, None);
///
/// e.compute_velocities();
/// let v = e.bin_velocity(1, 1);
/// assert!((v.x - 0.5).abs() < 1e-12);
/// assert!((v.y - 0.6).abs() < 1e-12);
///
/// e.step_density(0.2);
/// assert!((e.density(1, 1) - 0.98).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct DiffusionEngine {
    dims: Dims,
    density: Vec<f64>,
    next: Vec<f64>,
    wall: Vec<bool>,
    frozen: Vec<bool>,
    /// Per-axis velocity buffers; `vel[2]` is empty on a planar grid.
    vel: [Vec<f64>; 3],
    /// f32 twins of `density`/`next`/`vel`, allocated only in
    /// [`FieldPrecision::F32`] mode, where they are the authoritative
    /// field and `density` is lazily kept as its exact f64 widening:
    /// stepping marks the mirror dirty instead of widening inline (the
    /// extra 8-byte store per bin would erase the f32 bandwidth win),
    /// and [`sync_mirror`](Self::sync_mirror) rebuilds it before any
    /// f64 bulk read.
    density32: Vec<f32>,
    next32: Vec<f32>,
    vel32: [Vec<f32>; 3],
    /// `true` while the f64 `density` mirror lags the authoritative f32
    /// field. Never set in [`FieldPrecision::F64`] mode.
    mirror_dirty: bool,
    /// Per-line "no wall or frozen bin" flags, refreshed on every
    /// wall/frozen mutation; lines whose whole line neighborhood is live
    /// take the lane fast path.
    line_live: Vec<bool>,
    /// Per-bin lane eligibility: the bin is strictly interior and its
    /// whole stencil neighborhood (itself plus 2·ndim neighbors) is
    /// live, so its update reduces to plain neighbor reads under both
    /// boundary rules. Lets lines that straddle a wall or frozen block
    /// still lane-process their clean spans.
    fast_bin: Vec<bool>,
    conservative: bool,
    lanes: LaneMode,
    precision: FieldPrecision,
    pool: ThreadPool,
    timers: KernelTimers,
}

/// Immutable view of the density field and masks, shared by the serial
/// and parallel kernel paths so their arithmetic cannot diverge, and
/// generic over the field scalar (f64 or f32).
#[derive(Clone, Copy)]
struct FieldView<'a, T> {
    dims: Dims,
    density: &'a [T],
    wall: &'a [bool],
    frozen: &'a [bool],
    line_live: &'a [bool],
    fast_bin: &'a [bool],
    conservative: bool,
    wide: bool,
}

impl<T: LaneScalar> FieldView<'_, T> {
    /// Flat index of the neighbor of bin `idx = [j, k, z]` one step in
    /// direction `dir` along `axis`, if it exists and is live.
    #[inline]
    fn live_neighbor(&self, idx: [usize; 3], axis: usize, dir: isize) -> Option<usize> {
        let n = [self.dims.nx(), self.dims.ny(), self.dims.nz()];
        let c = idx[axis] as isize + dir;
        if c < 0 || c >= n[axis] as isize {
            return None;
        }
        let mut q = idx;
        q[axis] = c as usize;
        let i = self.dims.flat(q[0], q[1], q[2]);
        if self.wall[i] || self.frozen[i] {
            None
        } else {
            Some(i)
        }
    }

    /// Density of the neighbor of `idx` along `axis` in direction `dir`,
    /// with the paper's mirror boundary rule: if the neighbor is outside
    /// the grid, a wall, or frozen, the *opposite* neighbor's density is
    /// used (and the bin's own density if that is unavailable too), which
    /// makes the normal gradient zero.
    fn neighbor_density(&self, idx: [usize; 3], axis: usize, dir: isize) -> T {
        match self.live_neighbor(idx, axis, dir) {
            Some(i) => self.density[i],
            None => match self.live_neighbor(idx, axis, -dir) {
                Some(i) => self.density[i],
                None => self.density[self.dims.flat(idx[0], idx[1], idx[2])],
            },
        }
    }

    /// Like [`neighbor_density`](Self::neighbor_density) but with the
    /// conservative ghost (`d_ghost = d_center`) when enabled. Used only
    /// by the density step; velocities always use the mirror rule so the
    /// component normal to a boundary is exactly zero.
    fn neighbor_density_for_step(&self, idx: [usize; 3], axis: usize, dir: isize) -> T {
        if self.conservative {
            match self.live_neighbor(idx, axis, dir) {
                Some(i) => self.density[i],
                None => self.density[self.dims.flat(idx[0], idx[1], idx[2])],
            }
        } else {
            self.neighbor_density(idx, axis, dir)
        }
    }

    /// `true` if line `l = (k, z)` may take the lane fast path: the line
    /// and every neighboring line are wholly live and in-grid, so every
    /// interior bin's stencil reduces to plain neighbor reads — the
    /// mirror and conservative boundary rules become unreachable there,
    /// which is what makes the fast path bit-identical to the generic
    /// one.
    #[inline]
    fn fast_line(&self, l: usize, k: usize, z: usize) -> bool {
        let ny = self.dims.ny();
        if k == 0 || k + 1 == ny {
            return false;
        }
        if !(self.line_live[l - 1] && self.line_live[l] && self.line_live[l + 1]) {
            return false;
        }
        if self.dims.ndim() == 3 {
            if z == 0 || z + 1 == self.dims.nz() {
                return false;
            }
            if !(self.line_live[l - ny] && self.line_live[l + ny]) {
                return false;
            }
        }
        true
    }

    /// One bin of the velocity field through the generic (boundary-aware)
    /// path, written into `out[axis][o]`.
    #[inline]
    fn velocity_bin(&self, i: usize, idx: [usize; 3], out: &mut [&mut [T]], o: usize) {
        if self.wall[i] || self.frozen[i] {
            for v in out.iter_mut() {
                v[o] = T::ZERO;
            }
            return;
        }
        let d = self.density[i];
        if d <= T::FLOOR {
            for v in out.iter_mut() {
                v[o] = T::ZERO;
            }
            return;
        }
        for (axis, v) in out.iter_mut().enumerate() {
            let dp = self.neighbor_density(idx, axis, 1);
            let dm = self.neighbor_density(idx, axis, -1);
            v[o] = -(dp - dm) / (T::TWO * d);
        }
    }

    /// Velocity field (Eq. 5) of x-major lines `l0..l1`, written into the
    /// per-axis slices of `out` (which cover exactly those lines).
    /// `out.len()` is the grid's `ndim`. `L` is the explicit lane width
    /// of the fast path ([`LANES_F64`] or [`LANES_F32`]).
    fn velocity_lines<const L: usize>(&self, l0: usize, l1: usize, out: &mut [&mut [T]]) {
        let nx = self.dims.nx();
        let ny = self.dims.ny();
        let strides = [1usize, nx, nx * ny];
        for l in l0..l1 {
            let (k, z) = (l % ny, l / ny);
            let orow = (l - l0) * nx;
            if !self.wide || nx <= 2 {
                for j in 0..nx {
                    self.velocity_bin(l * nx + j, [j, k, z], out, orow + j);
                }
            } else if self.fast_line(l, k, z) {
                // Wholly-live line: edge columns through the generic
                // path, interior as zipped L-wide chunks per axis plus a
                // scalar tail; per-bin arithmetic identical to
                // `velocity_bin`'s live-interior case.
                let row = l * nx;
                let den = self.density;
                self.velocity_bin(row, [0, k, z], out, orow);
                self.velocity_bin(row + nx - 1, [nx - 1, k, z], out, orow + nx - 1);
                let m = nx - 2;
                for (axis, v) in out.iter_mut().enumerate() {
                    let s = strides[axis];
                    let (o_ch, o_tl) = v[orow + 1..orow + 1 + m].as_chunks_mut::<L>();
                    let (c_ch, c_tl) = den[row + 1..row + 1 + m].as_chunks::<L>();
                    let (sm_ch, sm_tl) = den[row + 1 - s..row + 1 - s + m].as_chunks::<L>();
                    let (sp_ch, sp_tl) = den[row + 1 + s..row + 1 + s + m].as_chunks::<L>();
                    let streams = o_ch.iter_mut().zip(c_ch).zip(sm_ch).zip(sp_ch);
                    for (((o, c), sm), sp) in streams {
                        for t in 0..L {
                            let d = c[t];
                            o[t] = if d > T::FLOOR {
                                -(sp[t] - sm[t]) / (T::TWO * d)
                            } else {
                                T::ZERO
                            };
                        }
                    }
                    let tails = o_tl.iter_mut().zip(c_tl).zip(sm_tl).zip(sp_tl);
                    for (((o, &d), &sm), &sp) in tails {
                        *o = if d > T::FLOOR {
                            -(sp - sm) / (T::TWO * d)
                        } else {
                            T::ZERO
                        };
                    }
                }
            } else {
                // Mixed line: lane-process runs of lane-eligible bins
                // (whole stencil neighborhood live, so the expression is
                // bit-identical to `velocity_bin`), generic elsewhere.
                let row = l * nx;
                let den = self.density;
                let fast = &self.fast_bin[row..row + nx];
                let mut j = 0usize;
                while j < nx {
                    if j + L <= nx && fast[j..j + L].iter().all(|&b| b) {
                        let i = row + j;
                        let c: &[T; L] = den[i..i + L].try_into().unwrap();
                        for (axis, v) in out.iter_mut().enumerate() {
                            let s = strides[axis];
                            let sm: &[T; L] = den[i - s..i - s + L].try_into().unwrap();
                            let sp: &[T; L] = den[i + s..i + s + L].try_into().unwrap();
                            let mut lane = [T::ZERO; L];
                            for t in 0..L {
                                let d = c[t];
                                if d > T::FLOOR {
                                    lane[t] = -(sp[t] - sm[t]) / (T::TWO * d);
                                }
                            }
                            v[orow + j..orow + j + L].copy_from_slice(&lane);
                        }
                        j += L;
                    } else {
                        self.velocity_bin(row + j, [j, k, z], out, orow + j);
                        j += 1;
                    }
                }
            }
        }
    }

    /// One bin of the FTCS update through the generic (boundary-aware)
    /// path.
    #[inline]
    fn ftcs_bin(&self, i: usize, idx: [usize; 3], half: T) -> T {
        if self.wall[i] || self.frozen[i] {
            return self.density[i];
        }
        let d = self.density[i];
        let mut acc = d;
        for axis in 0..self.dims.ndim() {
            let dp = self.neighbor_density_for_step(idx, axis, 1);
            let dm = self.neighbor_density_for_step(idx, axis, -1);
            acc = acc + half * (dp + dm - T::TWO * d);
        }
        acc
    }

    /// FTCS update of x-major lines `l0..l1`, written into `out` (which
    /// covers exactly those lines). `L` is the explicit lane width of the
    /// fast path.
    fn ftcs_lines<const L: usize>(&self, l0: usize, l1: usize, half: T, out: &mut [T]) {
        let nx = self.dims.nx();
        let ny = self.dims.ny();
        let d3 = self.dims.ndim() == 3;
        let zs = nx * ny;
        for l in l0..l1 {
            let (k, z) = (l % ny, l / ny);
            let orow = (l - l0) * nx;
            if !self.wide || nx <= 2 {
                for j in 0..nx {
                    out[orow + j] = self.ftcs_bin(l * nx + j, [j, k, z], half);
                }
            } else if self.fast_line(l, k, z) {
                // Wholly-live line: the edge columns go through the
                // generic path, then the interior runs as zipped L-wide
                // chunks over the neighbour streams plus a scalar tail.
                // The per-bin accumulation order is the generic path's
                // axis order (x, then y, then z), so the bits match
                // exactly; `as_chunks` gives fixed-width array windows
                // with no per-element bounds checks.
                let row = l * nx;
                let den = self.density;
                out[orow] = self.ftcs_bin(row, [0, k, z], half);
                out[orow + nx - 1] = self.ftcs_bin(row + nx - 1, [nx - 1, k, z], half);
                let m = nx - 2;
                let (o_ch, o_tl) = out[orow + 1..orow + 1 + m].as_chunks_mut::<L>();
                let (c_ch, c_tl) = den[row + 1..row + 1 + m].as_chunks::<L>();
                let (xm_ch, xm_tl) = den[row..row + m].as_chunks::<L>();
                let (xp_ch, xp_tl) = den[row + 2..row + 2 + m].as_chunks::<L>();
                let (ym_ch, ym_tl) = den[row + 1 - nx..row + 1 - nx + m].as_chunks::<L>();
                let (yp_ch, yp_tl) = den[row + 1 + nx..row + 1 + nx + m].as_chunks::<L>();
                if d3 {
                    let (zm_ch, zm_tl) = den[row + 1 - zs..row + 1 - zs + m].as_chunks::<L>();
                    let (zp_ch, zp_tl) = den[row + 1 + zs..row + 1 + zs + m].as_chunks::<L>();
                    let streams = o_ch
                        .iter_mut()
                        .zip(c_ch)
                        .zip(xm_ch)
                        .zip(xp_ch)
                        .zip(ym_ch)
                        .zip(yp_ch)
                        .zip(zm_ch)
                        .zip(zp_ch);
                    for (((((((o, c), xm), xp), ym), yp), zm), zp) in streams {
                        for t in 0..L {
                            let d = c[t];
                            let mut acc = d + half * (xp[t] + xm[t] - T::TWO * d);
                            acc = acc + half * (yp[t] + ym[t] - T::TWO * d);
                            acc = acc + half * (zp[t] + zm[t] - T::TWO * d);
                            o[t] = acc;
                        }
                    }
                    let tails = o_tl
                        .iter_mut()
                        .zip(c_tl)
                        .zip(xm_tl)
                        .zip(xp_tl)
                        .zip(ym_tl)
                        .zip(yp_tl)
                        .zip(zm_tl)
                        .zip(zp_tl);
                    for (((((((o, &d), &xm), &xp), &ym), &yp), &zm), &zp) in tails {
                        let mut acc = d + half * (xp + xm - T::TWO * d);
                        acc = acc + half * (yp + ym - T::TWO * d);
                        acc = acc + half * (zp + zm - T::TWO * d);
                        *o = acc;
                    }
                } else {
                    let streams = o_ch
                        .iter_mut()
                        .zip(c_ch)
                        .zip(xm_ch)
                        .zip(xp_ch)
                        .zip(ym_ch)
                        .zip(yp_ch);
                    for (((((o, c), xm), xp), ym), yp) in streams {
                        for t in 0..L {
                            let d = c[t];
                            let mut acc = d + half * (xp[t] + xm[t] - T::TWO * d);
                            acc = acc + half * (yp[t] + ym[t] - T::TWO * d);
                            o[t] = acc;
                        }
                    }
                    let tails = o_tl
                        .iter_mut()
                        .zip(c_tl)
                        .zip(xm_tl)
                        .zip(xp_tl)
                        .zip(ym_tl)
                        .zip(yp_tl);
                    for (((((o, &d), &xm), &xp), &ym), &yp) in tails {
                        let mut acc = d + half * (xp + xm - T::TWO * d);
                        acc = acc + half * (yp + ym - T::TWO * d);
                        *o = acc;
                    }
                }
            } else {
                // Mixed line (straddles a wall, frozen block, or grid
                // edge): lane-process the runs of bins whose whole
                // stencil neighborhood is live — the per-bin mask makes
                // the lane expression bit-identical to `ftcs_bin` there —
                // and fall back to the generic path bin by bin elsewhere.
                let row = l * nx;
                let den = self.density;
                let fast = &self.fast_bin[row..row + nx];
                let mut j = 0usize;
                while j < nx {
                    if j + L <= nx && fast[j..j + L].iter().all(|&b| b) {
                        let i = row + j;
                        let mut lane = [T::ZERO; L];
                        let c: &[T; L] = den[i..i + L].try_into().unwrap();
                        let xm: &[T; L] = den[i - 1..i - 1 + L].try_into().unwrap();
                        let xp: &[T; L] = den[i + 1..i + 1 + L].try_into().unwrap();
                        let ym: &[T; L] = den[i - nx..i - nx + L].try_into().unwrap();
                        let yp: &[T; L] = den[i + nx..i + nx + L].try_into().unwrap();
                        if d3 {
                            let zm: &[T; L] = den[i - zs..i - zs + L].try_into().unwrap();
                            let zp: &[T; L] = den[i + zs..i + zs + L].try_into().unwrap();
                            for t in 0..L {
                                let d = c[t];
                                let mut acc = d + half * (xp[t] + xm[t] - T::TWO * d);
                                acc = acc + half * (yp[t] + ym[t] - T::TWO * d);
                                acc = acc + half * (zp[t] + zm[t] - T::TWO * d);
                                lane[t] = acc;
                            }
                        } else {
                            for t in 0..L {
                                let d = c[t];
                                let mut acc = d + half * (xp[t] + xm[t] - T::TWO * d);
                                acc = acc + half * (yp[t] + ym[t] - T::TWO * d);
                                lane[t] = acc;
                            }
                        }
                        out[orow + j..orow + j + L].copy_from_slice(&lane);
                        j += L;
                    } else {
                        out[orow + j] = self.ftcs_bin(row + j, [j, k, z], half);
                        j += 1;
                    }
                }
            }
        }
    }
}

impl DiffusionEngine {
    /// Creates an engine from a measured [`DensityMap`] (macro bins become
    /// walls).
    pub fn from_density_map(map: &DensityMap) -> Self {
        Self::from_raw(
            map.grid().nx(),
            map.grid().ny(),
            map.densities().to_vec(),
            Some(map.fixed_mask().to_vec()),
        )
    }

    /// Creates a planar engine from raw row-major density values and an
    /// optional wall mask.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match `nx * ny` or the grid is
    /// empty.
    pub fn from_raw(nx: usize, ny: usize, density: Vec<f64>, wall: Option<Vec<bool>>) -> Self {
        Self::from_raw_dims(Dims::d2(nx, ny), density, wall)
    }

    /// Creates a volumetric engine from raw plane-major density values
    /// (layout `(z·ny + k)·nx + j`) and an optional wall mask.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match `nx * ny * nz` or the
    /// grid is empty.
    pub fn from_raw_3d(
        nx: usize,
        ny: usize,
        nz: usize,
        density: Vec<f64>,
        wall: Option<Vec<bool>>,
    ) -> Self {
        Self::from_raw_dims(Dims::d3(nx, ny, nz), density, wall)
    }

    /// Creates an engine of the given [`Dims`] from raw density values and
    /// an optional wall mask.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match `dims.len()`.
    pub fn from_raw_dims(dims: Dims, density: Vec<f64>, wall: Option<Vec<bool>>) -> Self {
        let n = dims.len();
        assert_eq!(density.len(), n, "density buffer length mismatch");
        let wall = wall.unwrap_or_else(|| vec![false; n]);
        assert_eq!(wall.len(), n, "wall buffer length mismatch");
        let vz = if dims.ndim() == 3 {
            vec![0.0; n]
        } else {
            Vec::new()
        };
        let mut engine = Self {
            dims,
            next: density.clone(),
            density,
            density32: Vec::new(),
            next32: Vec::new(),
            wall,
            frozen: vec![false; n],
            vel: [vec![0.0; n], vec![0.0; n], vz],
            vel32: [Vec::new(), Vec::new(), Vec::new()],
            mirror_dirty: false,
            line_live: Vec::new(),
            fast_bin: Vec::new(),
            conservative: true,
            lanes: LaneMode::Wide,
            precision: FieldPrecision::F64,
            pool: ThreadPool::single(),
            timers: KernelTimers::default(),
        };
        engine.refresh_live_masks();
        engine
    }

    /// Recomputes the per-line "wholly live" flags and the per-bin lane
    /// eligibility mask the fast paths key off. Must run after every
    /// wall/frozen mutation.
    fn refresh_live_masks(&mut self) {
        let nx = self.dims.nx();
        let ny = self.dims.ny();
        let nz = self.dims.nz();
        let lines = ny * nz;
        self.line_live.resize(lines, false);
        for l in 0..lines {
            let row = l * nx;
            self.line_live[l] = self.wall[row..row + nx].iter().all(|&w| !w)
                && self.frozen[row..row + nx].iter().all(|&f| !f);
        }
        let n = self.dims.len();
        let zs = nx * ny;
        let d3 = self.dims.ndim() == 3;
        self.fast_bin.clear();
        self.fast_bin.resize(n, false);
        let live = |wall: &[bool], frozen: &[bool], i: usize| !wall[i] && !frozen[i];
        for l in 0..lines {
            let (k, z) = (l % ny, l / ny);
            if k == 0 || k + 1 == ny || (d3 && (z == 0 || z + 1 == nz)) {
                continue;
            }
            let row = l * nx;
            for j in 1..nx.saturating_sub(1) {
                let i = row + j;
                let mut ok = live(&self.wall, &self.frozen, i)
                    && live(&self.wall, &self.frozen, i - 1)
                    && live(&self.wall, &self.frozen, i + 1)
                    && live(&self.wall, &self.frozen, i - nx)
                    && live(&self.wall, &self.frozen, i + nx);
                if d3 {
                    ok = ok
                        && live(&self.wall, &self.frozen, i - zs)
                        && live(&self.wall, &self.frozen, i + zs);
                }
                self.fast_bin[i] = ok;
            }
        }
    }

    /// Re-narrows the f64 field into the f32 field and widens it back,
    /// so in [`FieldPrecision::F32`] mode the f64 mirror is always the
    /// exact widening of what the stepper computes on. No-op in f64
    /// mode.
    fn resync_f32(&mut self) {
        if self.precision == FieldPrecision::F32 {
            for (s, d) in self.density32.iter_mut().zip(self.density.iter_mut()) {
                *s = *d as f32;
                *d = f64::from(*s);
            }
            self.mirror_dirty = false;
        }
    }

    /// Rebuilds the f64 `density` mirror from the authoritative f32
    /// field if stepping has left it stale. No-op when the mirror is
    /// current (always the case in f64 mode).
    fn sync_mirror(&mut self) {
        if self.mirror_dirty {
            for (d, &s) in self.density.iter_mut().zip(self.density32.iter()) {
                *d = f64::from(s);
            }
            self.mirror_dirty = false;
        }
    }

    /// Density of flat bin `i`, read from the authoritative buffer for
    /// the current precision (so single-bin reads never force a mirror
    /// rebuild). In f32 mode the widening is exact, hence bit-identical
    /// to reading a synced mirror.
    #[inline]
    fn density_flat(&self, i: usize) -> f64 {
        match self.precision {
            FieldPrecision::F64 => self.density[i],
            FieldPrecision::F32 => f64::from(self.density32[i]),
        }
    }

    /// Reloads density and walls from a [`DensityMap`] of the same grid,
    /// reusing every existing buffer (no allocation). Frozen bins and
    /// velocities are cleared; thread pool, boundary rule and kernel
    /// timers are kept.
    ///
    /// This is the hot path of the local-diffusion round loop, which
    /// re-measures the placement every round (dynamic density update).
    ///
    /// # Panics
    ///
    /// Panics if the map's grid dimensions do not match the engine's.
    pub fn reload_from_density_map(&mut self, map: &DensityMap) {
        assert_eq!(
            Dims::d2(map.grid().nx(), map.grid().ny()),
            self.dims,
            "density map grid does not match engine grid"
        );
        self.density.copy_from_slice(map.densities());
        self.wall.copy_from_slice(map.fixed_mask());
        self.frozen.iter_mut().for_each(|f| *f = false);
        for axis in &mut self.vel {
            axis.iter_mut().for_each(|v| *v = 0.0);
        }
        for axis in &mut self.vel32 {
            axis.iter_mut().for_each(|v| *v = 0.0);
        }
        self.resync_f32();
        self.refresh_live_masks();
    }

    /// Switches between a conservative boundary rule (the default) and
    /// the paper's literal rule.
    ///
    /// The paper (Section V-B) substitutes the *opposite* neighbor's
    /// density for a missing neighbor at chip/macro boundaries. That makes
    /// the worked examples of its Fig. 5 exact, but the resulting density
    /// step does not conserve mass: flow toward a boundary is
    /// double-counted by the boundary bin, so after density-map
    /// manipulation (Eq. 8) the equilibrium can drift above `d_max` and
    /// global diffusion never reaches its stopping criterion. With
    /// `conservative = true` (the default) the engine instead uses the
    /// bin's own density as the ghost value — a standard zero-flux
    /// Neumann discretization that conserves the total live density
    /// exactly. Velocity computation always uses the paper's mirror rule,
    /// which guarantees zero velocity normal to every boundary.
    ///
    /// Pass `false` to reproduce the paper's printed boundary updates
    /// (used by the Fig. 5 regression tests and the ablation bench).
    pub fn set_conservative_boundaries(&mut self, conservative: bool) {
        self.conservative = conservative;
    }

    /// The grid shape.
    #[inline]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Number of spatial axes (2 or 3).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.ndim()
    }

    /// Grid width in bins.
    #[inline]
    pub fn nx(&self) -> usize {
        self.dims.nx()
    }

    /// Grid height in bins.
    #[inline]
    pub fn ny(&self) -> usize {
        self.dims.ny()
    }

    /// Number of tiers (1 for a planar grid).
    #[inline]
    pub fn nz(&self) -> usize {
        self.dims.nz()
    }

    #[inline]
    fn at(&self, j: usize, k: usize) -> usize {
        debug_assert!(j < self.nx() && k < self.ny());
        k * self.nx() + j
    }

    /// Density of bin `(j, k)` (tier 0 on a volumetric grid).
    #[inline]
    pub fn density(&self, j: usize, k: usize) -> f64 {
        self.density_flat(self.at(j, k))
    }

    /// Density of bin `(j, k, z)`.
    #[inline]
    pub fn density3(&self, j: usize, k: usize, z: usize) -> f64 {
        self.density_flat(self.dims.flat(j, k, z))
    }

    /// Overwrites the density of bin `(j, k)` (used by tests and by the
    /// dynamic density update).
    #[inline]
    pub fn set_density(&mut self, j: usize, k: usize, d: f64) {
        let i = self.at(j, k);
        if self.precision == FieldPrecision::F32 {
            self.density32[i] = d as f32;
            // Keep the mirror element current only while the mirror as a
            // whole is current; a dirty mirror stays dirty until synced.
            if !self.mirror_dirty {
                self.density[i] = f64::from(self.density32[i]);
            }
        } else {
            self.density[i] = d;
        }
    }

    /// Raw plane-major density buffer, as f64. Takes `&mut self`
    /// because in [`FieldPrecision::F32`] mode the f64 mirror is
    /// rebuilt lazily from the authoritative f32 field on first read
    /// after a step.
    #[inline]
    pub fn densities(&mut self) -> &[f64] {
        self.sync_mirror();
        &self.density
    }

    /// Replaces the whole density field (dynamic density update).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the grid.
    pub fn load_densities(&mut self, density: &[f64]) {
        assert_eq!(
            density.len(),
            self.density.len(),
            "density buffer length mismatch"
        );
        self.density.copy_from_slice(density);
        self.resync_f32();
    }

    /// `true` if bin `(j, k)` is a wall (fixed macro).
    #[inline]
    pub fn is_wall(&self, j: usize, k: usize) -> bool {
        self.wall[self.at(j, k)]
    }

    /// `true` if bin `(j, k, z)` is a wall.
    #[inline]
    pub fn is_wall3(&self, j: usize, k: usize, z: usize) -> bool {
        self.wall[self.dims.flat(j, k, z)]
    }

    /// Plane-major wall mask.
    #[inline]
    pub fn wall_mask(&self) -> &[bool] {
        &self.wall
    }

    /// Plane-major frozen mask.
    #[inline]
    pub fn frozen_mask(&self) -> &[bool] {
        &self.frozen
    }

    /// `true` if bin `(j, k)` is frozen out of the current diffusion
    /// window.
    #[inline]
    pub fn is_frozen(&self, j: usize, k: usize) -> bool {
        self.frozen[self.at(j, k)]
    }

    /// `true` if the bin participates in diffusion (neither wall nor
    /// frozen).
    #[inline]
    pub fn is_live(&self, j: usize, k: usize) -> bool {
        let i = self.at(j, k);
        !self.wall[i] && !self.frozen[i]
    }

    /// Installs a frozen mask (from [`identify_windows`]); `true` entries
    /// are excluded from diffusion. Wall bins stay walls regardless.
    ///
    /// # Panics
    ///
    /// Panics if the mask length does not match the grid.
    ///
    /// [`identify_windows`]: crate::identify_windows
    pub fn set_frozen_mask(&mut self, frozen: &[bool]) {
        assert_eq!(
            frozen.len(),
            self.frozen.len(),
            "frozen mask length mismatch"
        );
        self.frozen.copy_from_slice(frozen);
        self.refresh_live_masks();
    }

    /// Unfreezes every bin (global diffusion mode).
    pub fn clear_frozen(&mut self) {
        self.frozen.iter_mut().for_each(|f| *f = false);
        self.refresh_live_masks();
    }

    /// Number of live (diffusing) bins.
    pub fn live_bins(&self) -> usize {
        self.wall
            .iter()
            .zip(&self.frozen)
            .filter(|(&w, &f)| !w && !f)
            .count()
    }

    /// Maximum density over live bins (0 if none).
    pub fn max_live_density(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.dims.len() {
            if !self.wall[i] && !self.frozen[i] {
                m = m.max(self.density_flat(i));
            }
        }
        m
    }

    /// Sum of density over live bins.
    pub fn total_live_density(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.dims.len() {
            if !self.wall[i] && !self.frozen[i] {
                s += self.density_flat(i);
            }
        }
        s
    }

    /// Total overflow `Σ max(d − d_max, 0)` over live bins.
    pub fn total_overflow(&self, d_max: f64) -> f64 {
        let mut s = 0.0;
        for i in 0..self.dims.len() {
            if !self.wall[i] && !self.frozen[i] {
                s += (self.density_flat(i) - d_max).max(0.0);
            }
        }
        s
    }

    /// Number of worker threads the kernels may use (1 = serial).
    ///
    /// The FTCS update and the velocity field are embarrassingly parallel
    /// over x-major bin lines, cell advection over cell chunks; on large
    /// grids (hundreds of bins per side) extra threads cut the kernel time
    /// roughly linearly on multicore hardware. Work is decomposed into
    /// fixed chunks independent of the thread count, so results are
    /// bit-identical to the serial path.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = ThreadPool::new(threads);
    }

    /// Selects scalar or lane-wise (default) kernel inner loops.
    ///
    /// The wide paths process interior bins of wholly-live lines in
    /// explicit 4-wide (f64) / 8-wide (f32) chunks with scalar tails;
    /// they evaluate the exact same per-bin expressions in the same
    /// order as the scalar paths, so results are bit-identical. The
    /// scalar mode exists as the CI reference the lane paths are
    /// checked against.
    pub fn set_lanes(&mut self, lanes: LaneMode) {
        self.lanes = lanes;
    }

    /// The lane mode currently configured.
    #[inline]
    pub fn lanes(&self) -> LaneMode {
        self.lanes
    }

    /// Switches the working precision of the density/velocity fields.
    ///
    /// In [`FieldPrecision::F32`] mode the FTCS step and the velocity
    /// field run on single-precision buffers (half the memory traffic of
    /// the memory-bound stencils); the public f64 readers stay valid
    /// because the engine maintains the f64 density as the *exact*
    /// widening of the f32 field after every step. Switching to f32
    /// narrows the current density once (quantization ≤ 1 ulp of f32);
    /// switching back to f64 keeps the widened values and frees the f32
    /// buffers.
    pub fn set_precision(&mut self, precision: FieldPrecision) {
        match precision {
            FieldPrecision::F64 => {
                // Materialise any pending f32 state into the f64 field
                // before the f32 buffers are dropped.
                self.sync_mirror();
                self.precision = precision;
                self.density32 = Vec::new();
                self.next32 = Vec::new();
                self.vel32 = [Vec::new(), Vec::new(), Vec::new()];
            }
            FieldPrecision::F32 => {
                self.precision = precision;
                let n = self.dims.len();
                self.density32 = vec![0.0; n];
                self.next32 = vec![0.0; n];
                let vz = if self.dims.ndim() == 3 {
                    vec![0.0f32; n]
                } else {
                    Vec::new()
                };
                self.vel32 = [vec![0.0; n], vec![0.0; n], vz];
                self.resync_f32();
            }
        }
    }

    /// The field precision currently configured.
    #[inline]
    pub fn precision(&self) -> FieldPrecision {
        self.precision
    }

    /// Lines per parallel work unit, sized so one chunk's stencil
    /// working set (the chunk plus its two neighbor lines) fits the
    /// cache block budget.
    fn chunk_lines(&self) -> usize {
        let elem = match self.precision {
            FieldPrecision::F32 => std::mem::size_of::<f32>(),
            FieldPrecision::F64 => std::mem::size_of::<f64>(),
        };
        blocked_lines(self.dims.nx() * elem, CACHE_BLOCK_BYTES)
    }

    /// The worker-thread count currently configured.
    #[inline]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The worker pool the engine's kernels run on (advection borrows it
    /// so the whole loop shares one pool configuration).
    #[inline]
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Accumulated per-kernel wall-time counters for this engine.
    #[inline]
    pub fn kernel_timers(&self) -> &KernelTimers {
        &self.timers
    }

    /// Mutable access to the kernel counters (the diffusion runners record
    /// advection and splat time here so one struct holds the whole loop).
    #[inline]
    pub fn kernel_timers_mut(&mut self) -> &mut KernelTimers {
        &mut self.timers
    }

    /// Advances the density field by one FTCS step (Eq. 4):
    ///
    /// `d(n+1) = d(n) + Σ_axis Δt/2·(d_+ + d_− − 2d)`
    ///
    /// with mirror substitution at chip/macro boundaries (Section V-B).
    /// Wall and frozen bins do not update. On a planar grid the sum runs
    /// over x and y — exactly the paper's Eq. 4; a volumetric grid adds
    /// the tier axis.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `dt` is outside the stability region
    /// `(0, 1/ndim]`.
    pub fn step_density(&mut self, dt: f64) {
        debug_assert!(
            dt > 0.0 && dt * self.dims.ndim() as f64 <= 1.0,
            "dt outside FTCS stability region"
        );
        let start = Instant::now();
        let nx = self.dims.nx();
        let chunk = self.chunk_lines() * nx;
        let wide = self.lanes == LaneMode::Wide;
        match self.precision {
            FieldPrecision::F64 => {
                let half = dt / 2.0;
                let view = FieldView {
                    dims: self.dims,
                    density: &self.density,
                    wall: &self.wall,
                    frozen: &self.frozen,
                    line_live: &self.line_live,
                    fast_bin: &self.fast_bin,
                    conservative: self.conservative,
                    wide,
                };
                parallel_for_chunks(&self.pool, &mut self.next, chunk, |_, range, out| {
                    view.ftcs_lines::<LANES_F64>(range.start / nx, range.end / nx, half, out);
                });
            }
            FieldPrecision::F32 => {
                let half = (dt / 2.0) as f32;
                let view = FieldView {
                    dims: self.dims,
                    density: &self.density32,
                    wall: &self.wall,
                    frozen: &self.frozen,
                    line_live: &self.line_live,
                    fast_bin: &self.fast_bin,
                    conservative: self.conservative,
                    wide,
                };
                parallel_for_chunks(&self.pool, &mut self.next32, chunk, |_, range, out32| {
                    view.ftcs_lines::<LANES_F32>(range.start / nx, range.end / nx, half, out32);
                });
                std::mem::swap(&mut self.density32, &mut self.next32);
                // The f64 mirror is not rewritten here — widening every
                // bin would double the step's store traffic. It is
                // rebuilt on demand by `sync_mirror`.
                self.mirror_dirty = true;
            }
        }
        self.timers
            .ftcs
            .record(start.elapsed(), self.pool.threads());
        if self.precision == FieldPrecision::F64 {
            std::mem::swap(&mut self.density, &mut self.next);
        }
    }

    /// Recomputes the per-bin velocity field from the current density
    /// (Eq. 5), one component per axis:
    ///
    /// `v_axis = −(d_+ − d_−) / (2d)`
    ///
    /// Mirror substitution makes the component normal to a chip or macro
    /// boundary zero, as the paper requires; wall and frozen bins have
    /// zero velocity outright. Bins with (numerically) no density get zero
    /// velocity — there is nothing there to move.
    pub fn compute_velocities(&mut self) {
        let start = Instant::now();
        let nx = self.dims.nx();
        let chunk = self.chunk_lines() * nx;
        let wide = self.lanes == LaneMode::Wide;
        match self.precision {
            FieldPrecision::F64 => {
                let view = FieldView {
                    dims: self.dims,
                    density: &self.density,
                    wall: &self.wall,
                    frozen: &self.frozen,
                    line_live: &self.line_live,
                    fast_bin: &self.fast_bin,
                    conservative: self.conservative,
                    wide,
                };
                let [vx, vy, vz] = &mut self.vel;
                match self.dims {
                    Dims::D2 { .. } => {
                        parallel_for_chunks2(&self.pool, vx, vy, chunk, |_, range, cx, cy| {
                            view.velocity_lines::<LANES_F64>(
                                range.start / nx,
                                range.end / nx,
                                &mut [cx, cy],
                            );
                        });
                    }
                    Dims::D3 { .. } => {
                        parallel_for_chunks3(
                            &self.pool,
                            vx,
                            vy,
                            vz,
                            chunk,
                            |_, range, cx, cy, cz| {
                                view.velocity_lines::<LANES_F64>(
                                    range.start / nx,
                                    range.end / nx,
                                    &mut [cx, cy, cz],
                                );
                            },
                        );
                    }
                }
            }
            FieldPrecision::F32 => {
                let view = FieldView {
                    dims: self.dims,
                    density: &self.density32,
                    wall: &self.wall,
                    frozen: &self.frozen,
                    line_live: &self.line_live,
                    fast_bin: &self.fast_bin,
                    conservative: self.conservative,
                    wide,
                };
                let [vx, vy, vz] = &mut self.vel32;
                match self.dims {
                    Dims::D2 { .. } => {
                        parallel_for_chunks2(&self.pool, vx, vy, chunk, |_, range, cx, cy| {
                            view.velocity_lines::<LANES_F32>(
                                range.start / nx,
                                range.end / nx,
                                &mut [cx, cy],
                            );
                        });
                    }
                    Dims::D3 { .. } => {
                        parallel_for_chunks3(
                            &self.pool,
                            vx,
                            vy,
                            vz,
                            chunk,
                            |_, range, cx, cy, cz| {
                                view.velocity_lines::<LANES_F32>(
                                    range.start / nx,
                                    range.end / nx,
                                    &mut [cx, cy, cz],
                                );
                            },
                        );
                    }
                }
            }
        }
        self.timers
            .velocity
            .record(start.elapsed(), self.pool.threads());
    }

    /// Velocity component read that is valid in both precisions (in f32
    /// mode the f64 buffers are stale; `vel32` is authoritative).
    #[inline]
    fn vel_component(&self, axis: usize, i: usize) -> f64 {
        if self.precision == FieldPrecision::F32 {
            f64::from(self.vel32[axis][i])
        } else {
            self.vel[axis][i]
        }
    }

    /// The velocity assigned to bin `(j, k)` (tier 0 on a volumetric
    /// grid) by the latest
    /// [`compute_velocities`](Self::compute_velocities) call.
    #[inline]
    pub fn bin_velocity(&self, j: usize, k: usize) -> Vector {
        let i = self.at(j, k);
        Vector::new(self.vel_component(0, i), self.vel_component(1, i))
    }

    /// The per-axis velocity of bin `(j, k, z)` on a volumetric grid.
    ///
    /// # Panics
    ///
    /// Panics if the engine is planar (there is no z component).
    #[inline]
    pub fn bin_velocity3(&self, j: usize, k: usize, z: usize) -> Vector3 {
        assert_eq!(self.dims.ndim(), 3, "bin_velocity3 needs a D3 engine");
        let i = self.dims.flat(j, k, z);
        Vector3::new(
            self.vel_component(0, i),
            self.vel_component(1, i),
            self.vel_component(2, i),
        )
    }

    /// Overrides a bin's velocity (test hook for the paper's worked
    /// interpolation example).
    #[inline]
    pub fn set_bin_velocity(&mut self, j: usize, k: usize, v: Vector) {
        let i = self.at(j, k);
        self.vel[0][i] = v.x;
        self.vel[1][i] = v.y;
        if self.precision == FieldPrecision::F32 {
            self.vel32[0][i] = v.x as f32;
            self.vel32[1][i] = v.y as f32;
        }
    }

    /// Overrides a volumetric bin's velocity (test hook).
    ///
    /// # Panics
    ///
    /// Panics if the engine is planar.
    #[inline]
    pub fn set_bin_velocity3(&mut self, j: usize, k: usize, z: usize, v: Vector3) {
        assert_eq!(self.dims.ndim(), 3, "set_bin_velocity3 needs a D3 engine");
        let i = self.dims.flat(j, k, z);
        self.vel[0][i] = v.x;
        self.vel[1][i] = v.y;
        self.vel[2][i] = v.z;
        if self.precision == FieldPrecision::F32 {
            self.vel32[0][i] = v.x as f32;
            self.vel32[1][i] = v.y as f32;
            self.vel32[2][i] = v.z as f32;
        }
    }

    /// The velocity at an arbitrary point in bin coordinates, bilinearly
    /// interpolated between the four nearest bin centers (Eq. 6).
    ///
    /// Points within half a bin of the grid edge clamp to the edge bin's
    /// velocity (velocity is replicated outward). On a volumetric grid
    /// this samples tier 0; use [`velocity_at3`](Self::velocity_at3).
    pub fn velocity_at(&self, p: Point) -> Vector {
        let xs = p.x + 0.5;
        let ys = p.y + 0.5;
        let alpha = xs - xs.floor();
        let beta = ys - ys.floor();
        // p,q = lower-left of the four nearest centers; may be -1 at edges.
        let pj = xs.floor() as isize - 1;
        let qk = ys.floor() as isize - 1;
        let clamp_j = |v: isize| v.clamp(0, self.nx() as isize - 1) as usize;
        let clamp_k = |v: isize| v.clamp(0, self.ny() as isize - 1) as usize;
        let v00 = self.bin_velocity(clamp_j(pj), clamp_k(qk));
        let v10 = self.bin_velocity(clamp_j(pj + 1), clamp_k(qk));
        let v01 = self.bin_velocity(clamp_j(pj), clamp_k(qk + 1));
        let v11 = self.bin_velocity(clamp_j(pj + 1), clamp_k(qk + 1));
        interpolate_velocity(v00, v10, v01, v11, alpha, beta)
    }

    /// The velocity at an arbitrary point of a volumetric grid,
    /// trilinearly interpolated between the eight nearest bin centers
    /// (Eq. 6 extended with a tier axis).
    ///
    /// Points within half a bin of any grid face clamp to the face bin's
    /// velocity, mirroring [`velocity_at`](Self::velocity_at).
    ///
    /// # Panics
    ///
    /// Panics if the engine is planar.
    pub fn velocity_at3(&self, p: Point3) -> Vector3 {
        assert_eq!(self.dims.ndim(), 3, "velocity_at3 needs a D3 engine");
        let xs = p.x + 0.5;
        let ys = p.y + 0.5;
        let zs = p.z + 0.5;
        let alpha = xs - xs.floor();
        let beta = ys - ys.floor();
        let gamma = zs - zs.floor();
        let pj = xs.floor() as isize - 1;
        let qk = ys.floor() as isize - 1;
        let rz = zs.floor() as isize - 1;
        let cj = |v: isize| v.clamp(0, self.nx() as isize - 1) as usize;
        let ck = |v: isize| v.clamp(0, self.ny() as isize - 1) as usize;
        let cz = |v: isize| v.clamp(0, self.nz() as isize - 1) as usize;
        let corner = |dj: isize, dk: isize, dz: isize| {
            self.bin_velocity3(cj(pj + dj), ck(qk + dk), cz(rz + dz))
        };
        let lerp = |a: Vector3, b: Vector3, t: f64| a + (b - a) * t;
        let c00 = lerp(corner(0, 0, 0), corner(1, 0, 0), alpha);
        let c10 = lerp(corner(0, 1, 0), corner(1, 1, 0), alpha);
        let c01 = lerp(corner(0, 0, 1), corner(1, 0, 1), alpha);
        let c11 = lerp(corner(0, 1, 1), corner(1, 1, 1), alpha);
        let c0 = lerp(c00, c10, beta);
        let c1 = lerp(c01, c11, beta);
        lerp(c0, c1, gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(nx: usize, j: usize, k: usize) -> usize {
        k * nx + j
    }

    /// Engine matching the paper's Fig. 1 neighborhood.
    fn fig1_engine() -> DiffusionEngine {
        let mut d = vec![1.0; 16];
        d[at(4, 1, 1)] = 1.0;
        d[at(4, 0, 1)] = 1.4;
        d[at(4, 2, 1)] = 0.4;
        d[at(4, 1, 0)] = 1.6;
        d[at(4, 1, 2)] = 0.4;
        DiffusionEngine::from_raw(4, 4, d, None)
    }

    #[test]
    fn fig1_density_step() {
        let mut e = fig1_engine();
        e.step_density(0.2);
        assert!((e.density(1, 1) - 0.98).abs() < 1e-12);
    }

    #[test]
    fn fig1_velocity() {
        let mut e = fig1_engine();
        e.compute_velocities();
        let v = e.bin_velocity(1, 1);
        assert!((v.x - 0.5).abs() < 1e-12);
        assert!((v.y - 0.6).abs() < 1e-12);
    }

    /// Fig. 5: FTCS under macro mirror boundary conditions.
    fn fig5_engine() -> DiffusionEngine {
        let nx = 7;
        let ny = 7;
        let mut d = vec![1.0; nx * ny];
        let mut w = vec![false; nx * ny];
        // Fixed block over bins (4,3)..(5,4).
        for k in 3..=4 {
            for j in 4..=5 {
                w[at(nx, j, k)] = true;
                d[at(nx, j, k)] = 1.0;
            }
        }
        d[at(nx, 3, 6)] = 1.0;
        d[at(nx, 4, 6)] = 0.2;
        d[at(nx, 2, 5)] = 1.2;
        d[at(nx, 3, 5)] = 0.4;
        d[at(nx, 4, 5)] = 0.8;
        d[at(nx, 5, 5)] = 0.6;
        d[at(nx, 2, 4)] = 1.4;
        d[at(nx, 3, 4)] = 0.8;
        d[at(nx, 3, 3)] = 1.6;
        let mut e = DiffusionEngine::from_raw(nx, ny, d, Some(w));
        // The Fig. 5 worked example uses the paper's literal boundary rule.
        e.set_conservative_boundaries(false);
        e
    }

    #[test]
    fn fig5_macro_boundary_updates() {
        let mut e = fig5_engine();
        e.step_density(0.2);
        // d(3,4): right neighbor is the macro, mirror with left (2,4)=1.4.
        assert!(
            (e.density(3, 4) - 0.96).abs() < 1e-12,
            "got {}",
            e.density(3, 4)
        );
        // d(4,5): lower neighbor is the macro, mirror with upper (4,6)=0.2.
        assert!(
            (e.density(4, 5) - 0.62).abs() < 1e-12,
            "got {}",
            e.density(4, 5)
        );
        // Macro bins never change.
        assert_eq!(e.density(4, 4), 1.0);
        assert_eq!(e.density(5, 3), 1.0);
    }

    #[test]
    fn walls_have_zero_velocity_and_normal_component_vanishes() {
        let mut e = fig5_engine();
        e.compute_velocities();
        assert_eq!(e.bin_velocity(4, 4), Vector::ZERO);
        // Bin (3,4) sits left of the macro: mirror makes its horizontal
        // gradient zero, so vx = 0.
        assert_eq!(e.bin_velocity(3, 4).x, 0.0);
        // Bin (4,5) sits above the macro: vy = 0.
        assert_eq!(e.bin_velocity(4, 5).y, 0.0);
    }

    #[test]
    fn chip_edge_velocity_points_inward_only() {
        // Dense bin in a corner: velocity must not point off-chip.
        let mut d = vec![0.1; 9];
        d[0] = 2.0;
        let mut e = DiffusionEngine::from_raw(3, 3, d, None);
        e.compute_velocities();
        let v = e.bin_velocity(0, 0);
        assert!(
            v.x >= 0.0 && v.y >= 0.0,
            "corner velocity {v:?} points off-chip"
        );
    }

    #[test]
    fn interior_mass_is_conserved_between_steps() {
        // Away from boundaries FTCS is exactly conservative: compare the
        // change of one interior bin against what its neighbors exchanged.
        let mut e = fig1_engine();
        let m0: f64 = e.densities().iter().sum();
        e.step_density(0.2);
        // One step on a 4x4 grid does touch boundaries, so compare against
        // the known non-conservative drift bound instead of exactness.
        let m1: f64 = e.densities().iter().sum();
        assert!((m1 - m0).abs() < 0.5, "implausible drift {m0} -> {m1}");
    }

    #[test]
    fn paper_boundary_rule_drifts_but_stays_bounded() {
        // The paper's mirror rule (Section V-B) is not conservative: flow
        // toward a boundary is double-counted. Document the behavior: the
        // total drifts, but remains bounded by the uniform-equilibrium
        // band [min, max] of the initial field times the bin count.
        let mut e = fig5_engine();
        let m0 = e.total_live_density();
        for _ in 0..200 {
            e.step_density(0.2);
        }
        let m1 = e.total_live_density();
        assert!(
            (m1 - m0).abs() / m0 < 0.1,
            "drift exceeded 10%: {m0} -> {m1}"
        );
    }

    #[test]
    fn conservative_mode_conserves_mass_exactly() {
        let mut e = fig5_engine();
        e.set_conservative_boundaries(true);
        let m0 = e.total_live_density();
        for _ in 0..500 {
            e.step_density(0.2);
        }
        let m1 = e.total_live_density();
        assert!((m0 - m1).abs() < 1e-9, "mass drifted from {m0} to {m1}");
    }

    #[test]
    fn diffusion_flattens_toward_uniform() {
        let mut d = vec![0.0; 25];
        d[12] = 5.0; // spike in the middle
        let mut e = DiffusionEngine::from_raw(5, 5, d, None);
        for _ in 0..2000 {
            e.step_density(0.2);
        }
        // Equilibrium is uniform (its level depends on the boundary rule).
        let lo = e.densities().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = e.densities().iter().cloned().fold(0.0f64, f64::max);
        assert!(hi - lo < 1e-6, "not uniform: [{lo}, {hi}]");
    }

    #[test]
    fn conservative_diffusion_flattens_to_exact_average() {
        let mut d = vec![0.0; 25];
        d[12] = 5.0;
        let mut e = DiffusionEngine::from_raw(5, 5, d, None);
        e.set_conservative_boundaries(true);
        for _ in 0..2000 {
            e.step_density(0.2);
        }
        for k in 0..5 {
            for j in 0..5 {
                assert!(
                    (e.density(j, k) - 0.2).abs() < 1e-6,
                    "bin ({j},{k}) = {}",
                    e.density(j, k)
                );
            }
        }
    }

    #[test]
    fn frozen_bins_act_as_walls() {
        let mut d = vec![0.0; 9];
        d[at(3, 0, 0)] = 1.0;
        let mut e = DiffusionEngine::from_raw(3, 3, d, None);
        e.set_conservative_boundaries(true);
        // Freeze the right column; density must stay in the left 2x3 block.
        let mut frozen = vec![false; 9];
        for k in 0..3 {
            frozen[at(3, 2, k)] = true;
        }
        e.set_frozen_mask(&frozen);
        for _ in 0..500 {
            e.step_density(0.2);
        }
        for k in 0..3 {
            assert_eq!(
                e.density(2, k),
                0.0,
                "density leaked into frozen bin (2,{k})"
            );
        }
        assert!((e.total_live_density() - 1.0).abs() < 1e-9);
        assert_eq!(e.live_bins(), 6);
        e.clear_frozen();
        assert_eq!(e.live_bins(), 9);
    }

    #[test]
    fn max_and_overflow_metrics() {
        let mut d = vec![0.5; 4];
        d[0] = 1.5;
        let e = DiffusionEngine::from_raw(2, 2, d, None);
        assert_eq!(e.max_live_density(), 1.5);
        assert!((e.total_overflow(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.total_overflow(2.0), 0.0);
    }

    #[test]
    fn velocity_interpolation_matches_paper_example() {
        // Fig. 2: v(1,1)=(0.5,0.6), v(2,1)=(0.25,-0.25), v(1,2)=(0.5,0),
        // v(2,2)=(-0.125,0.125), query point (1.6,1.8) with α=0.1, β=0.3.
        // Evaluating the paper's own Eq. 6 with these inputs yields
        // (0.46375, 0.36425); the values printed in the paper's prose
        // (0.45625, 0.40175) do not satisfy Eq. 6 — a known arithmetic
        // slip in the text. We pin the equation, not the typo.
        let mut e = DiffusionEngine::from_raw(4, 4, vec![1.0; 16], None);
        e.set_bin_velocity(1, 1, Vector::new(0.5, 0.6));
        e.set_bin_velocity(2, 1, Vector::new(0.25, -0.25));
        e.set_bin_velocity(1, 2, Vector::new(0.5, 0.0));
        e.set_bin_velocity(2, 2, Vector::new(-0.125, 0.125));
        let v = e.velocity_at(Point::new(1.6, 1.8));
        assert!((v.x - 0.46375).abs() < 1e-12, "vx = {}", v.x);
        assert!((v.y - 0.36425).abs() < 1e-12, "vy = {}", v.y);
    }

    #[test]
    fn velocity_at_bin_center_is_bin_velocity() {
        let mut e = DiffusionEngine::from_raw(3, 3, vec![1.0; 9], None);
        e.set_bin_velocity(1, 1, Vector::new(0.3, -0.7));
        let v = e.velocity_at(Point::new(1.5, 1.5));
        assert!((v.x - 0.3).abs() < 1e-12);
        assert!((v.y + 0.7).abs() < 1e-12);
    }

    #[test]
    fn velocity_at_edges_clamps() {
        let mut e = DiffusionEngine::from_raw(2, 2, vec![1.0; 4], None);
        e.set_bin_velocity(0, 0, Vector::new(1.0, 1.0));
        // Point in the lower-left quarter-bin: all four clamped corners are
        // bin (0,0) — result is exactly its velocity.
        let v = e.velocity_at(Point::new(0.1, 0.2));
        assert!((v.x - 1.0).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bin_gets_zero_velocity() {
        let mut d = vec![1.0; 9];
        d[at(3, 1, 1)] = 0.0;
        let mut e = DiffusionEngine::from_raw(3, 3, d, None);
        e.compute_velocities();
        assert_eq!(e.bin_velocity(1, 1), Vector::ZERO);
    }

    #[test]
    fn load_densities_replaces_field() {
        let mut e = DiffusionEngine::from_raw(2, 2, vec![0.0; 4], None);
        e.load_densities(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.density(1, 1), 4.0);
        assert_eq!(e.densities(), &[1.0, 2.0, 3.0, 4.0]);
    }

    /// A bumpy 64×64 field with a wall block and a frozen stripe —
    /// exercises every boundary rule the kernels implement.
    fn bumpy_engine(threads: usize) -> DiffusionEngine {
        let n = 64usize;
        let density: Vec<f64> = (0..n * n)
            .map(|i| 0.25 + ((i * 2654435761usize) % 997) as f64 / 997.0)
            .collect();
        let mut wall = vec![false; n * n];
        for k in 20..28 {
            for j in 30..44 {
                wall[k * n + j] = true;
            }
        }
        let mut e = DiffusionEngine::from_raw(n, n, density, Some(wall));
        let mut frozen = vec![false; n * n];
        for k in 48..56 {
            for j in 8..20 {
                frozen[k * n + j] = true;
            }
        }
        e.set_frozen_mask(&frozen);
        e.set_threads(threads);
        e
    }

    #[test]
    fn parallel_step_is_bit_identical_to_serial() {
        let mut serial = bumpy_engine(1);
        for _ in 0..25 {
            serial.step_density(0.2);
        }
        for threads in [2, 4, 8] {
            let mut parallel = bumpy_engine(threads);
            for _ in 0..25 {
                parallel.step_density(0.2);
            }
            assert_eq!(
                serial.densities(),
                parallel.densities(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_velocities_are_bit_identical_to_serial() {
        let mut serial = bumpy_engine(1);
        serial.compute_velocities();
        for threads in [2, 4, 8] {
            let mut parallel = bumpy_engine(threads);
            parallel.compute_velocities();
            for k in 0..serial.ny() {
                for j in 0..serial.nx() {
                    assert_eq!(
                        serial.bin_velocity(j, k),
                        parallel.bin_velocity(j, k),
                        "bin ({j},{k}), threads = {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_timers_accumulate() {
        let mut e = bumpy_engine(2);
        e.step_density(0.2);
        e.compute_velocities();
        e.compute_velocities();
        let t = e.kernel_timers();
        assert_eq!(t.ftcs.calls, 1);
        assert_eq!(t.velocity.calls, 2);
        assert_eq!(t.ftcs.max_threads, 2);
        assert_eq!(t.ftcs.serial_ns, 0);
        assert!(t.velocity.parallel_ns > 0);
    }

    #[test]
    fn reload_reuses_buffers_and_clears_state() {
        use dpm_geom::{Point, Rect};
        use dpm_netlist::{CellKind, NetlistBuilder};
        use dpm_place::{BinGrid, Placement};

        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", 10.0, 10.0, CellKind::Movable);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(1);
        p.set(c, Point::new(0.0, 0.0));
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
        let map = DensityMap::from_placement(&nl, &p, grid.clone());

        let mut e = DiffusionEngine::from_density_map(&map);
        e.set_frozen_mask(&[true; 16]);
        e.compute_velocities();
        p.set(c, Point::new(30.0, 30.0));
        let map2 = DensityMap::from_placement(&nl, &p, grid);
        e.reload_from_density_map(&map2);
        assert_eq!(e.densities(), map2.densities());
        assert_eq!(e.live_bins(), 16, "frozen mask must be cleared");
        assert_eq!(e.bin_velocity(0, 0), Vector::ZERO);
    }

    #[test]
    fn tiny_grid_falls_back_to_serial() {
        let mut e = DiffusionEngine::from_raw(3, 3, vec![1.0; 9], None);
        e.set_threads(8); // more threads than rows: must still work
        e.step_density(0.2);
        assert!((e.total_live_density() - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_density_buffer_rejected() {
        let _ = DiffusionEngine::from_raw(2, 2, vec![0.0; 3], None);
    }

    // ---- volumetric (D3) coverage ----

    fn at3(nx: usize, ny: usize, j: usize, k: usize, z: usize) -> usize {
        (z * ny + k) * nx + j
    }

    #[test]
    fn single_tier_volume_matches_planar_engine() {
        // A D3 grid with nz = 1 must produce the exact planar floats: the
        // z axis contributes a zero-gradient term that the per-axis loop
        // adds as `half * (d + d - 2d)`, which is exactly +0.0 on every
        // finite density, and `x + 0.0` only differs from `x` at
        // `x = -0.0` — densities here are positive.
        let d: Vec<f64> = (0..64 * 64)
            .map(|i| 0.25 + ((i * 2654435761usize) % 997) as f64 / 997.0)
            .collect();
        let mut planar = DiffusionEngine::from_raw(64, 64, d.clone(), None);
        let mut volume = DiffusionEngine::from_raw_3d(64, 64, 1, d, None);
        for _ in 0..10 {
            planar.step_density(0.2);
            volume.step_density(0.2);
        }
        assert_eq!(planar.densities(), volume.densities());
        planar.compute_velocities();
        volume.compute_velocities();
        for k in 0..64 {
            for j in 0..64 {
                let v2 = planar.bin_velocity(j, k);
                let v3 = volume.bin_velocity3(j, k, 0);
                assert_eq!((v2.x, v2.y, 0.0), (v3.x, v3.y, v3.z), "bin ({j},{k})");
            }
        }
    }

    #[test]
    fn volumetric_spike_diffuses_along_z() {
        let (nx, ny, nz) = (3, 3, 4);
        let mut d = vec![0.0; nx * ny * nz];
        d[at3(nx, ny, 1, 1, 0)] = 4.0; // spike on the bottom tier
        let mut e = DiffusionEngine::from_raw_3d(nx, ny, nz, d, None);
        e.step_density(0.2);
        assert!(
            e.density3(1, 1, 1) > 0.0,
            "no mass moved to the next tier: {}",
            e.density3(1, 1, 1)
        );
        for _ in 0..3000 {
            e.step_density(0.2);
        }
        let avg = 4.0 / (nx * ny * nz) as f64;
        for z in 0..nz {
            for k in 0..ny {
                for j in 0..nx {
                    assert!(
                        (e.density3(j, k, z) - avg).abs() < 1e-6,
                        "bin ({j},{k},{z}) = {}",
                        e.density3(j, k, z)
                    );
                }
            }
        }
    }

    #[test]
    fn volumetric_mass_is_conserved() {
        let (nx, ny, nz) = (5, 4, 3);
        let d: Vec<f64> = (0..nx * ny * nz)
            .map(|i| ((i * 2654435761usize) % 97) as f64 / 97.0)
            .collect();
        let mut wall = vec![false; nx * ny * nz];
        for z in 0..nz {
            wall[at3(nx, ny, 2, 2, z)] = true; // through-stack macro column
        }
        let mut e = DiffusionEngine::from_raw_3d(nx, ny, nz, d, Some(wall));
        let m0 = e.total_live_density();
        for _ in 0..300 {
            e.step_density(0.2);
        }
        let m1 = e.total_live_density();
        assert!((m0 - m1).abs() < 1e-9, "mass drifted from {m0} to {m1}");
    }

    #[test]
    fn volumetric_velocity_points_away_from_overfull_tier() {
        let (nx, ny, nz) = (3, 3, 5);
        let mut d = vec![0.5; nx * ny * nz];
        d[at3(nx, ny, 1, 1, 2)] = 2.0; // hot middle tier
        let mut e = DiffusionEngine::from_raw_3d(nx, ny, nz, d, None);
        e.compute_velocities();
        // Interior bin below the spike is pushed down (away), above up.
        // (The outermost tiers get zero normal velocity from the mirror
        // rule, exactly like the 2D chip edge.)
        assert!(e.bin_velocity3(1, 1, 1).z < 0.0);
        assert!(e.bin_velocity3(1, 1, 3).z > 0.0);
        assert_eq!(e.bin_velocity3(1, 1, 0).z, 0.0);
        // The spike itself has zero z-velocity (symmetric neighbors).
        assert_eq!(e.bin_velocity3(1, 1, 2).z, 0.0);
    }

    #[test]
    fn volumetric_parallel_step_is_bit_identical_to_serial() {
        let build = |threads: usize| {
            let (nx, ny, nz) = (32, 24, 5);
            let d: Vec<f64> = (0..nx * ny * nz)
                .map(|i| 0.25 + ((i * 2654435761usize) % 997) as f64 / 997.0)
                .collect();
            let mut wall = vec![false; nx * ny * nz];
            for z in 0..nz {
                for k in 8..12 {
                    for j in 10..20 {
                        wall[at3(nx, ny, j, k, z)] = true;
                    }
                }
            }
            let mut e = DiffusionEngine::from_raw_3d(nx, ny, nz, d, Some(wall));
            e.set_threads(threads);
            e
        };
        let mut serial = build(1);
        serial.compute_velocities();
        for _ in 0..20 {
            serial.step_density(0.2);
        }
        for threads in [2, 4, 8] {
            let mut parallel = build(threads);
            parallel.compute_velocities();
            for _ in 0..20 {
                parallel.step_density(0.2);
            }
            assert_eq!(
                serial.densities(),
                parallel.densities(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn trilinear_velocity_at_bin_center_is_bin_velocity() {
        let mut e = DiffusionEngine::from_raw_3d(3, 3, 3, vec![1.0; 27], None);
        e.set_bin_velocity3(1, 1, 1, Vector3::new(0.3, -0.7, 0.2));
        let v = e.velocity_at3(Point3::new(1.5, 1.5, 1.5));
        assert!((v.x - 0.3).abs() < 1e-12);
        assert!((v.y + 0.7).abs() < 1e-12);
        assert!((v.z - 0.2).abs() < 1e-12);
    }

    #[test]
    fn trilinear_velocity_interpolates_between_tiers() {
        let mut e = DiffusionEngine::from_raw_3d(2, 2, 2, vec![1.0; 8], None);
        e.set_bin_velocity3(0, 0, 0, Vector3::new(0.0, 0.0, 1.0));
        e.set_bin_velocity3(0, 0, 1, Vector3::new(0.0, 0.0, 3.0));
        // Query a quarter of the way between the two tier centers.
        let v = e.velocity_at3(Point3::new(0.5, 0.5, 0.75));
        assert!((v.z - 1.5).abs() < 1e-12, "vz = {}", v.z);
    }

    /// Engine with deterministic bumpy density plus wall and frozen
    /// patterns sized relative to the grid so walls land mid-line
    /// (breaking lane chunks), on edge columns, and — on tall grids —
    /// straddling the 64-line cache-block seam.
    fn seam_engine(dims: Dims, lanes: LaneMode, precision: FieldPrecision) -> DiffusionEngine {
        let n = dims.len();
        let nx = dims.nx();
        let ny = dims.ny();
        let density: Vec<f64> = (0..n)
            .map(|i| 0.25 + ((i * 2654435761usize) % 997) as f64 / 997.0)
            .collect();
        let mut wall = vec![false; n];
        let mut frozen = vec![false; n];
        for (i, (w, f)) in wall.iter_mut().zip(frozen.iter_mut()).enumerate() {
            let j = i % nx;
            let k = (i / nx) % ny;
            if (k == ny / 2 && j % 5 == 2) || ((62..66).contains(&k) && j % 7 < 2) {
                *w = true;
            }
            if (k % 17 == 9 && (3..=4).contains(&(j % 9))) || (j + 1 == nx && k.is_multiple_of(3)) {
                *f = true;
            }
        }
        let mut e = DiffusionEngine::from_raw_dims(dims, density, Some(wall));
        e.set_frozen_mask(&frozen);
        e.set_lanes(lanes);
        e.set_precision(precision);
        e
    }

    /// Steps + velocities in one lane/precision mode; the returned f64
    /// densities cover the f32 path too (they are its exact widening).
    #[allow(clippy::type_complexity)]
    fn run_lane_case(
        dims: Dims,
        lanes: LaneMode,
        precision: FieldPrecision,
    ) -> (Vec<f64>, [Vec<f64>; 3], [Vec<f32>; 3]) {
        let mut e = seam_engine(dims, lanes, precision);
        let dt = if e.ndim() == 3 { 0.15 } else { 0.2 };
        for _ in 0..8 {
            e.step_density(dt);
        }
        e.compute_velocities();
        (e.density.clone(), e.vel.clone(), e.vel32.clone())
    }

    #[test]
    fn wide_lanes_match_scalar_bitwise_2d() {
        // nx sweeps 1, lane_width±1 for both widths (3/5 around 4, 7/9
        // around 8), and a non-multiple of the 64-line block (70); tall
        // grids put walls across the block seam.
        for &nx in &[1usize, 3, 5, 7, 9, 70] {
            for &ny in &[1usize, 3, 70] {
                let dims = Dims::d2(nx, ny);
                for precision in [FieldPrecision::F64, FieldPrecision::F32] {
                    let s = run_lane_case(dims, LaneMode::Scalar, precision);
                    let w = run_lane_case(dims, LaneMode::Wide, precision);
                    assert_eq!(s, w, "nx={nx} ny={ny} {precision:?}");
                }
            }
        }
    }

    #[test]
    fn wide_lanes_match_scalar_bitwise_3d() {
        for &(nx, ny, nz) in &[(1, 3, 3), (3, 3, 3), (5, 9, 4), (70, 5, 3), (9, 70, 2)] {
            let dims = Dims::d3(nx, ny, nz);
            for precision in [FieldPrecision::F64, FieldPrecision::F32] {
                let s = run_lane_case(dims, LaneMode::Scalar, precision);
                let w = run_lane_case(dims, LaneMode::Wide, precision);
                assert_eq!(s, w, "nx={nx} ny={ny} nz={nz} {precision:?}");
            }
        }
    }

    #[test]
    fn f32_parallel_step_is_bit_identical_to_serial() {
        let run = |threads: usize| {
            let mut e = bumpy_engine(threads);
            e.set_precision(FieldPrecision::F32);
            for _ in 0..25 {
                e.step_density(0.2);
            }
            e.compute_velocities();
            // `densities()` also syncs the lazy f64 mirror, so the
            // comparison covers it too.
            let mirror = e.densities().to_vec();
            (e.density32.clone(), mirror, e.vel32.clone())
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(reference, run(threads), "threads = {threads}");
        }
    }

    #[test]
    fn f32_field_keeps_f64_mirror_exact() {
        let mut e = bumpy_engine(2);
        e.set_precision(FieldPrecision::F32);
        for _ in 0..5 {
            e.step_density(0.2);
        }
        e.compute_velocities();
        // The mirror is rebuilt lazily: raw field access right after a
        // step sees stale data by design, the public accessor syncs.
        let mirror = e.densities().to_vec();
        for (d, &s) in mirror.iter().zip(&e.density32) {
            assert_eq!(*d, f64::from(s), "f64 mirror must be the exact widening");
        }
        // Velocity reads come from the f32 field and are not all zero.
        let mut any = false;
        for k in 0..e.ny() {
            for j in 0..e.nx() {
                any |= e.bin_velocity(j, k) != Vector::ZERO;
            }
        }
        assert!(any, "f32 velocity field must be populated");
    }

    #[test]
    fn precision_round_trip_keeps_widened_field() {
        let mut e = fig1_engine();
        e.set_precision(FieldPrecision::F32);
        let narrowed = e.densities().to_vec();
        e.set_precision(FieldPrecision::F64);
        assert_eq!(e.densities(), &narrowed[..]);
        assert!(e.density32.is_empty(), "f32 buffers are freed in f64 mode");
    }

    #[test]
    fn ftcs_matches_analytic_cosine_decay() {
        // With the conservative ghost (= DCT-II symmetric boundary) the
        // product mode cos(θx(j+0.5))·cos(θy(k+0.5)), θ = πq/n, is an
        // FTCS eigenvector with per-step multiplier
        // 1 + Δt(cosθx − 1) + Δt(cosθy − 1); the constant offset is
        // conserved exactly. f64 must track the closed form to rounding;
        // f32 within single-precision accumulation tolerance.
        let (nx, ny, q, r) = (48usize, 32usize, 3usize, 2usize);
        let dt = 0.2;
        let tx = std::f64::consts::PI * q as f64 / nx as f64;
        let ty = std::f64::consts::PI * r as f64 / ny as f64;
        let m = 1.0 + dt * (tx.cos() - 1.0) + dt * (ty.cos() - 1.0);
        let mode =
            |j: usize, k: usize| (tx * (j as f64 + 0.5)).cos() * (ty * (k as f64 + 0.5)).cos();
        let density: Vec<f64> = (0..nx * ny)
            .map(|i| 1.0 + 0.5 * mode(i % nx, i / nx))
            .collect();
        let steps = 20usize;
        for (precision, tol) in [(FieldPrecision::F64, 1e-12), (FieldPrecision::F32, 5e-4)] {
            let mut e = DiffusionEngine::from_raw(nx, ny, density.clone(), None);
            e.set_precision(precision);
            for _ in 0..steps {
                e.step_density(dt);
            }
            let amp = 0.5 * m.powi(steps as i32);
            for k in 0..ny {
                for j in 0..nx {
                    let want = 1.0 + amp * mode(j, k);
                    let got = e.density(j, k);
                    assert!(
                        (got - want).abs() < tol,
                        "({j},{k}) {precision:?}: got {got}, want {want}"
                    );
                }
            }
        }
    }
}
