//! End-to-end legalizer benchmarks on a mid-size inflated circuit — the
//! runtime comparison behind the paper's Tables V, XIII and XVI.

use criterion::{criterion_group, criterion_main, Criterion};
use dpm_gen::{Benchmark, CircuitSpec, InflationSpec};
use dpm_legalize::{
    DiffusionLegalizer, FlowLegalizer, GemLegalizer, GreedyLegalizer, Legalizer, RowDpLegalizer,
    TetrisLegalizer,
};
use std::hint::black_box;

fn workload() -> Benchmark {
    let mut bench = CircuitSpec::with_size("bench2k", 2_000, 77).generate();
    bench.inflate(&InflationSpec::random_width(0.1, 1.6, 78));
    bench
}

fn hotspot_workload() -> Benchmark {
    let mut bench = CircuitSpec::with_size("bench2k_hot", 2_000, 79).generate();
    bench.inflate(&InflationSpec::centered(0.15, 0.3, 80));
    bench
}

fn bench_one(c: &mut Criterion, group_name: &str, make: fn() -> Benchmark) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    let legalizers: Vec<(&str, Box<dyn Legalizer>)> = vec![
        ("greedy", Box::new(GreedyLegalizer::new())),
        ("flow", Box::new(FlowLegalizer::new())),
        ("tetris", Box::new(TetrisLegalizer::new())),
        ("row_dp", Box::new(RowDpLegalizer::new())),
        ("gem", Box::new(GemLegalizer::new())),
        ("diff_global", Box::new(DiffusionLegalizer::global_default())),
        ("diff_local", Box::new(DiffusionLegalizer::local_default())),
    ];
    let bench = make();
    for (name, legalizer) in &legalizers {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut p = bench.placement.clone();
                legalizer.legalize_in_place(&bench.netlist, &bench.die, &mut p);
                black_box(p)
            });
        });
    }
    group.finish();
}

fn bench_random(c: &mut Criterion) {
    bench_one(c, "legalize_2k_random", workload);
}

fn bench_hotspot(c: &mut Criterion) {
    bench_one(c, "legalize_2k_hotspot", hotspot_workload);
}

criterion_group!(benches, bench_random, bench_hotspot);
criterion_main!(benches);
