#![warn(missing_docs)]

//! Bookshelf (UCLA/GSRC) placement format I/O.
//!
//! The ISPD placement benchmarks — including the ISPD-2004 IBM suite the
//! paper evaluates on — are distributed in the Bookshelf format: a
//! `.aux` file naming a `.nodes` (cells), `.nets` (connectivity), `.pl`
//! (positions) and `.scl` (rows) file. This crate reads and writes that
//! format, so real benchmark data can be run through the diffusion
//! legalizer and synthetic circuits can be exported for other tools.
//!
//! Only the placement-relevant subset is supported (no `.wts` weights,
//! no routing extensions); unknown attributes are skipped with a
//! warning-free best effort, matching how academic placers consume these
//! files.
//!
//! # Examples
//!
//! Round-trip a generated circuit through the format:
//!
//! ```
//! use dpm_bookshelf::{BookshelfDesign, ParseBookshelfError};
//!
//! let bench = dpm_gen::CircuitSpec::small(1).generate();
//! let design = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
//! let nodes_text = design.write_nodes();
//! let parsed = dpm_bookshelf::parse_nodes(&nodes_text)?;
//! assert_eq!(parsed.len(), bench.netlist.num_cells());
//! # Ok::<(), ParseBookshelfError>(())
//! ```

mod parse;
mod write;

pub use parse::{
    parse_aux, parse_nets, parse_nodes, parse_pl, parse_scl, NetRecord, NodeRecord,
    ParseBookshelfError, PinRecord, PlRecord, SclRow,
};
pub use write::BookshelfDesign;

use dpm_geom::Point;
use dpm_netlist::{CellKind, Netlist, NetlistBuilder, PinDir};
use dpm_place::{Die, Placement};

/// A complete design assembled from parsed Bookshelf files.
#[derive(Debug, Clone)]
pub struct LoadedDesign {
    /// The netlist (cells + nets + pins).
    pub netlist: Netlist,
    /// Die/rows reconstructed from the `.scl` file.
    pub die: Die,
    /// Cell positions from the `.pl` file.
    pub placement: Placement,
}

/// Assembles a [`LoadedDesign`] from the contents of the four Bookshelf
/// files.
///
/// Terminal nodes taller than one row become
/// [`FixedMacro`](CellKind::FixedMacro)s; other terminals become
/// [`Pad`](CellKind::Pad)s. Pins keep their Bookshelf center-relative
/// offsets, converted to lower-left-relative.
///
/// # Errors
///
/// Returns [`ParseBookshelfError`] if any file is malformed, a net
/// references an unknown node, a `.pl` entry names an unknown node, or
/// the `.scl` rows describe a degenerate die. Adversarial input yields
/// an error, never a panic.
pub fn load_design(
    nodes_text: &str,
    nets_text: &str,
    pl_text: &str,
    scl_text: &str,
) -> Result<LoadedDesign, ParseBookshelfError> {
    let nodes = parse_nodes(nodes_text)?;
    let nets = parse_nets(nets_text)?;
    let pl = parse_pl(pl_text)?;
    let rows = parse_scl(scl_text)?;

    // Die from row extents.
    let row_height = rows
        .first()
        .map(|r| r.height)
        .ok_or(ParseBookshelfError::NoRows)?;
    let llx = rows
        .iter()
        .map(|r| r.origin_x)
        .fold(f64::INFINITY, f64::min);
    let urx = rows
        .iter()
        .map(|r| r.origin_x + r.width)
        .fold(f64::NEG_INFINITY, f64::max);
    let lly = rows
        .iter()
        .map(|r| r.coordinate)
        .fold(f64::INFINITY, f64::min);
    let ury = rows
        .iter()
        .map(|r| r.coordinate + r.height)
        .fold(f64::NEG_INFINITY, f64::max);
    // `Die::with_origin` asserts on bad geometry; turn garbage row data
    // (hand-edited or corrupt files) into an error instead of a panic.
    let extents_ok = llx.is_finite()
        && lly.is_finite()
        && urx.is_finite()
        && ury.is_finite()
        && row_height.is_finite()
        && row_height > 0.0
        && urx - llx > 0.0
        && ury - lly >= row_height
        // A corrupt coordinate can be finite yet absurd; cap the implied
        // row count so die construction cannot attempt a giant allocation.
        && (ury - lly) / row_height <= 16_000_000.0;
    if !extents_ok {
        return Err(ParseBookshelfError::DegenerateRows {
            message: format!(
                "rows span x [{llx}, {urx}], y [{lly}, {ury}], row height {row_height}"
            ),
        });
    }
    let die = Die::with_origin(llx, lly, urx - llx, ury - lly, row_height);

    // Cells.
    let mut b = NetlistBuilder::with_capacity(
        nodes.len(),
        nets.len(),
        nets.iter().map(|n| n.pins.len()).sum(),
    );
    let mut index = std::collections::HashMap::with_capacity(nodes.len());
    for node in &nodes {
        let kind = if !node.terminal {
            CellKind::Movable
        } else if node.height > row_height * 1.5
            || node.width * node.height > row_height * row_height
        {
            CellKind::FixedMacro
        } else {
            CellKind::Pad
        };
        let id = b.add_cell(node.name.clone(), node.width, node.height, kind);
        index.insert(node.name.clone(), (id, node.width, node.height));
    }

    // Nets.
    for net in &nets {
        let nid = b.add_net(net.name.clone());
        for pin in &net.pins {
            let &(cell, w, h) =
                index
                    .get(&pin.node)
                    .ok_or_else(|| ParseBookshelfError::UnknownNode {
                        name: pin.node.clone(),
                    })?;
            let dir = match pin.dir {
                'O' => PinDir::Output,
                _ => PinDir::Input,
            };
            // Bookshelf offsets are center-relative.
            b.connect(cell, nid, dir, w / 2.0 + pin.dx, h / 2.0 + pin.dy);
        }
    }
    let netlist = b.build().map_err(|e| ParseBookshelfError::InvalidNetlist {
        message: e.to_string(),
    })?;

    // Placement.
    let mut placement = Placement::new(netlist.num_cells());
    for record in &pl {
        let &(cell, _, _) =
            index
                .get(&record.node)
                .ok_or_else(|| ParseBookshelfError::UnknownNode {
                    name: record.node.clone(),
                })?;
        placement.set(cell, Point::new(record.x, record.y));
    }

    Ok(LoadedDesign {
        netlist,
        die,
        placement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_gen::CircuitSpec;
    use dpm_place::hpwl;

    #[test]
    fn full_round_trip_preserves_design() {
        let bench = CircuitSpec::small(31).with_macros(1).generate();
        let design = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
        let loaded = load_design(
            &design.write_nodes(),
            &design.write_nets(),
            &design.write_pl(),
            &design.write_scl(),
        )
        .expect("round trip parses");

        assert_eq!(loaded.netlist.num_cells(), bench.netlist.num_cells());
        assert_eq!(loaded.netlist.num_nets(), bench.netlist.num_nets());
        assert_eq!(loaded.netlist.num_pins(), bench.netlist.num_pins());
        assert_eq!(loaded.die.num_rows(), bench.die.num_rows());

        // HPWL must match: positions and pin offsets survived.
        let original = hpwl(&bench.netlist, &bench.placement);
        let reloaded = hpwl(&loaded.netlist, &loaded.placement);
        assert!(
            (original - reloaded).abs() < 1e-6 * original.max(1.0),
            "HPWL drifted: {original} -> {reloaded}"
        );
    }

    #[test]
    fn cell_kinds_survive_round_trip() {
        let bench = CircuitSpec::small(32).with_macros(2).generate();
        let design = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
        let loaded = load_design(
            &design.write_nodes(),
            &design.write_nets(),
            &design.write_pl(),
            &design.write_scl(),
        )
        .expect("parses");
        assert_eq!(
            loaded.netlist.macro_ids().count(),
            bench.netlist.macro_ids().count()
        );
        assert_eq!(
            loaded.netlist.movable_cell_ids().count(),
            bench.netlist.movable_cell_ids().count()
        );
    }

    #[test]
    fn unknown_node_in_net_is_an_error() {
        let nodes = "UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n a 4 12\n";
        let nets = "UCLA nets 1.0\nNumNets : 1\nNumPins : 1\nNetDegree : 1 n0\n ghost I : 0 0\n";
        let pl = "UCLA pl 1.0\n a 0 0 : N\n";
        let scl = "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n Height : 12\n SubrowOrigin : 0 NumSites : 100\nEnd\n";
        let err = load_design(nodes, nets, pl, scl).unwrap_err();
        assert!(matches!(err, ParseBookshelfError::UnknownNode { .. }));
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn empty_scl_is_an_error() {
        let nodes = "UCLA nodes 1.0\nNumNodes : 0\nNumTerminals : 0\n";
        let nets = "UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n";
        let pl = "UCLA pl 1.0\n";
        let scl = "UCLA scl 1.0\nNumRows : 0\n";
        let err = load_design(nodes, nets, pl, scl).unwrap_err();
        assert!(matches!(err, ParseBookshelfError::NoRows));
    }
}
