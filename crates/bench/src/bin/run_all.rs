//! Runs the entire reproduction — every table and figure — in one go,
//! teeing each binary's output into `results/`.
//!
//! `cargo run --release -p dpm-bench --bin run_all`

use std::process::Command;

fn main() {
    let binaries = [
        "table01",
        "table_main",
        "table06",
        "table07",
        "table08",
        "table09",
        "fig03",
        "fig09_10",
        "fig11",
        "fig12",
        "fig13",
        "table10",
        "table_ispd",
        "fig14_18",
    ];
    std::fs::create_dir_all("results").expect("create results dir");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failures = 0;
    for bin in binaries {
        println!("=== running {bin} ===");
        let output = Command::new(exe_dir.join(bin))
            .output()
            .unwrap_or_else(|e| panic!("cannot launch {bin}: {e}"));
        let stdout = String::from_utf8_lossy(&output.stdout);
        print!("{stdout}");
        std::fs::write(format!("results/{bin}.txt"), stdout.as_bytes()).expect("write result");
        if !output.status.success() {
            eprintln!("{bin} FAILED: {}", String::from_utf8_lossy(&output.stderr));
            failures += 1;
        }
    }
    println!("\nall outputs saved under results/ ({failures} failures)");
    if failures > 0 {
        std::process::exit(1);
    }
}
