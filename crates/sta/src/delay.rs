//! Delay models for the timing substrate.

use dpm_netlist::{NetId, Netlist, PinId};
use dpm_place::{net_hpwl, Placement};

/// A linear interconnect delay model.
///
/// The delay from a net's driver to one of its sinks is
///
/// ```text
/// delay = unit_wire_delay · manhattan(driver, sink)
///       + fanout_factor · unit_wire_delay · hpwl(net)
/// ```
///
/// The first term captures source-to-sink distance, the second the
/// loading of the whole net (larger bounding boxes slow every sink).
/// Cell delay is the cell's intrinsic `delay` field.
///
/// This is the standard academic stand-in for a full RC/Elmore model: it
/// is monotone in exactly the quantities placement migration perturbs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayModel {
    /// Delay per unit of Manhattan wire length.
    pub unit_wire_delay: f64,
    /// Weight of the net-bounding-box loading term.
    pub fanout_factor: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        Self {
            unit_wire_delay: 0.01,
            fanout_factor: 0.25,
        }
    }
}

impl DelayModel {
    /// Creates a model with explicit coefficients.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative or non-finite.
    pub fn new(unit_wire_delay: f64, fanout_factor: f64) -> Self {
        assert!(
            unit_wire_delay.is_finite() && unit_wire_delay >= 0.0,
            "unit wire delay must be non-negative"
        );
        assert!(
            fanout_factor.is_finite() && fanout_factor >= 0.0,
            "fanout factor must be non-negative"
        );
        Self {
            unit_wire_delay,
            fanout_factor,
        }
    }

    /// Wire delay from `driver` to `sink` on `net` under `placement`.
    pub fn net_delay(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        net: NetId,
        driver: PinId,
        sink: PinId,
    ) -> f64 {
        let from = placement.pin_position(netlist, driver);
        let to = placement.pin_position(netlist, sink);
        let dist = from.manhattan_distance(to);
        let load = net_hpwl(netlist, placement, net);
        self.unit_wire_delay * dist + self.fanout_factor * self.unit_wire_delay * load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Point;
    use dpm_netlist::{CellKind, NetlistBuilder, PinDir};

    #[test]
    fn delay_grows_with_distance() {
        let mut b = NetlistBuilder::new();
        let u = b.add_cell("u", 2.0, 2.0, CellKind::Movable);
        let v = b.add_cell("v", 2.0, 2.0, CellKind::Movable);
        let n = b.add_net("n");
        let d = b.connect(u, n, PinDir::Output, 1.0, 1.0);
        let s = b.connect(v, n, PinDir::Input, 1.0, 1.0);
        let nl = b.build().expect("valid");
        let model = DelayModel::default();

        let mut p = Placement::new(2);
        p.set(v, Point::new(10.0, 0.0));
        let near = model.net_delay(&nl, &p, n, d, s);
        p.set(v, Point::new(50.0, 0.0));
        let far = model.net_delay(&nl, &p, n, d, s);
        assert!(far > near);
    }

    #[test]
    fn zero_distance_zero_delay() {
        let mut b = NetlistBuilder::new();
        let u = b.add_cell("u", 2.0, 2.0, CellKind::Movable);
        let v = b.add_cell("v", 2.0, 2.0, CellKind::Movable);
        let n = b.add_net("n");
        let d = b.connect(u, n, PinDir::Output, 1.0, 1.0);
        let s = b.connect(v, n, PinDir::Input, 1.0, 1.0);
        let nl = b.build().expect("valid");
        let p = Placement::new(2); // both at origin → pins coincide
        let delay = DelayModel::default().net_delay(&nl, &p, n, d, s);
        assert_eq!(delay, 0.0);
    }

    #[test]
    fn fanout_term_penalizes_wide_nets() {
        // Same driver-sink distance, but a third pin stretches the bbox.
        let mut b = NetlistBuilder::new();
        let u = b.add_cell("u", 2.0, 2.0, CellKind::Movable);
        let v = b.add_cell("v", 2.0, 2.0, CellKind::Movable);
        let w = b.add_cell("w", 2.0, 2.0, CellKind::Movable);
        let n = b.add_net("n");
        let d = b.connect(u, n, PinDir::Output, 1.0, 1.0);
        let s = b.connect(v, n, PinDir::Input, 1.0, 1.0);
        b.connect(w, n, PinDir::Input, 1.0, 1.0);
        let nl = b.build().expect("valid");
        let model = DelayModel::default();

        let mut p = Placement::new(3);
        p.set(v, Point::new(10.0, 0.0));
        p.set(w, Point::new(10.0, 0.0));
        let tight = model.net_delay(&nl, &p, n, d, s);
        p.set(w, Point::new(10.0, 80.0));
        let wide = model.net_delay(&nl, &p, n, d, s);
        assert!(wide > tight);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_coefficient_rejected() {
        let _ = DelayModel::new(-1.0, 0.0);
    }
}
