//! Criterion-free throughput harness for the four diffusion hot kernels
//! (FTCS step, velocity field, cell advection, density splat) at 1/2/4/8
//! worker threads on 256×256 and 1024×1024 bin grids, plus a
//! spectral-vs-FTCS race: the closed-form DCT solver against the stepped
//! sweeps, both as a bare field jump and end-to-end through
//! [`GlobalDiffusion`], with an explicit FLOP model for the field-update
//! work of each solver. A separate `stencil3d` section times the
//! volumetric 7-point FTCS sweep on a 192×192×8 tier stack at the same
//! thread counts.
//!
//! Every sample line carries `lanes` and `precision` keys. The regular
//! thread sweep runs the production configuration (`wide` lanes, `f64`
//! field); at one thread the stencil kernels are additionally timed with
//! scalar lanes (the pre-lane reference path) and with the `f32` field
//! mode, and the per-grid `lane_speedup_1t` / `f32_speedup_1t` ratios
//! compare them. A `calibration` section times a fixed serial FP loop so
//! `scripts/ci.sh` can scale its smoke-test ns/call ceilings to the
//! speed of whatever container it runs on.
//!
//! Writes `BENCH_kernels.json` at the repository root (or the current
//! directory when not run from the workspace). All workloads are
//! deterministic, so the per-thread runs do identical arithmetic — the
//! timings differ only in scheduling.
//!
//! Usage: `cargo run --release --bin perf_kernels [-- [--smoke] <output-path>]`
//!
//! `--smoke` shrinks everything to a 64×64 grid with a short step budget
//! so CI can assert the output shape (every key, including the
//! `spectral_vs_ftcs` section) in a couple of seconds.

use dpm_diffusion::{
    DiffusionConfig, DiffusionEngine, FieldPrecision, GlobalDiffusion, LaneMode, SolverKind,
    SpectralSolver,
};
use dpm_geom::Point;
use dpm_netlist::{CellKind, Netlist, NetlistBuilder};
use dpm_par::ThreadPool;
use dpm_place::{BinGrid, DensityMap, Die, Placement};
use std::fmt::Write as _;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured kernel configuration.
struct Sample {
    kernel: &'static str,
    threads: usize,
    lanes: &'static str,
    precision: &'static str,
    calls: u64,
    ns_per_call: f64,
}

impl Sample {
    /// One JSON object line (no trailing separator or newline).
    fn json(&self) -> String {
        format!(
            "{{\"kernel\": \"{}\", \"threads\": {}, \"lanes\": \"{}\", \"precision\": \"{}\", \"calls\": {}, \"ns_per_call\": {:.1}}}",
            self.kernel, self.threads, self.lanes, self.precision, self.calls, self.ns_per_call
        )
    }
}

/// Deterministic bumpy density field with a wall block, mirroring the
/// bit-identity tests: enough structure that no kernel short-circuits.
fn bumpy_field(n: usize) -> (Vec<f64>, Vec<bool>) {
    let mut density = vec![0.0; n * n];
    for (i, d) in density.iter_mut().enumerate() {
        *d = 0.25 + ((i as u64).wrapping_mul(2654435761) % 997) as f64 / 997.0;
    }
    let mut wall = vec![false; n * n];
    for k in n / 4..n / 4 + n / 8 {
        for j in n / 2..n / 2 + n / 8 {
            wall[k * n + j] = true;
            density[k * n + j] = 0.0;
        }
    }
    (density, wall)
}

/// Synthetic overfull design on an n×n bin grid: cells clustered into the
/// central quarter of the die so the splat, velocity and advection
/// kernels all see real work.
fn clustered_design(n: usize, num_cells: usize) -> (Netlist, Placement, Die) {
    let mut b = NetlistBuilder::new();
    for i in 0..num_cells {
        b.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable);
    }
    let nl = b.build().expect("valid synthetic netlist");
    let side = n as f64;
    let die = Die::new(side, side, 1.0);
    let mut p = Placement::new(nl.num_cells());
    let span = side / 2.0 - 2.0;
    for (i, c) in nl.cell_ids().enumerate() {
        // Deterministic low-discrepancy scatter over the central quarter.
        let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let fx = (h >> 32) as f64 / 4294967296.0;
        let fy = (h & 0xFFFF_FFFF) as f64 / 4294967296.0;
        p.set(
            c,
            Point::new(side / 4.0 + fx * span, side / 4.0 + fy * span),
        );
    }
    (nl, p, die)
}

/// The planar bumpy field extruded into `nz` tiers with a per-tier
/// amplitude ramp, so the z-leg of the 3D stencil sees real gradients
/// instead of copying identical planes.
fn bumpy_field_3d(n: usize, nz: usize) -> (Vec<f64>, Vec<bool>) {
    let (plane, wall_plane) = bumpy_field(n);
    let mut density = Vec::with_capacity(n * n * nz);
    let mut wall = Vec::with_capacity(n * n * nz);
    for t in 0..nz {
        let gain = 1.0 + t as f64 * 0.125;
        for (d, &w) in plane.iter().zip(&wall_plane) {
            density.push(if w { 0.0 } else { d * gain });
            wall.push(w);
        }
    }
    (density, wall)
}

/// Times `reps` calls split into up to eight rounds and reports the
/// fastest round's per-call mean. Shared CI boxes throttle and
/// oversubscribe unpredictably, which inflates a lifetime mean by whole
/// multiples (and by *different* multiples per kernel, corrupting every
/// derived ratio); the best round tracks the hardware's actual
/// throughput and is stable run to run.
fn best_round_ns<F: FnMut()>(reps: u64, mut call: F) -> (u64, f64) {
    let rounds = reps.clamp(1, 8);
    let per = (reps / rounds).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..per {
            call();
        }
        let ns = t0.elapsed().as_nanos() as f64 / per as f64;
        if ns < best {
            best = ns;
        }
    }
    (rounds * per, best)
}

fn time_ftcs(n: usize, threads: usize, reps: u64, lanes: LaneMode, prec: FieldPrecision) -> Sample {
    let (density, wall) = bumpy_field(n);
    let mut e = DiffusionEngine::from_raw(n, n, density, Some(wall));
    e.set_threads(threads);
    e.set_lanes(lanes);
    e.set_precision(prec);
    e.step_density(0.1); // warm-up
    let (calls, ns_per_call) = best_round_ns(reps, || {
        e.step_density(0.1);
    });
    Sample {
        kernel: "ftcs",
        threads,
        lanes: lanes.as_str(),
        precision: prec.as_str(),
        calls,
        ns_per_call,
    }
}

fn time_velocity(
    n: usize,
    threads: usize,
    reps: u64,
    lanes: LaneMode,
    prec: FieldPrecision,
) -> Sample {
    let (density, wall) = bumpy_field(n);
    let mut e = DiffusionEngine::from_raw(n, n, density, Some(wall));
    e.set_threads(threads);
    e.set_lanes(lanes);
    e.set_precision(prec);
    e.compute_velocities(); // warm-up
    let (calls, ns_per_call) = best_round_ns(reps, || {
        e.compute_velocities();
    });
    Sample {
        kernel: "velocity",
        threads,
        lanes: lanes.as_str(),
        precision: prec.as_str(),
        calls,
        ns_per_call,
    }
}

fn time_splat(n: usize, num_cells: usize, threads: usize, reps: u64) -> Sample {
    let (nl, p, die) = clustered_design(n, num_cells);
    let grid = BinGrid::new(die.outline(), 1.0);
    let pool = ThreadPool::new(threads);
    let mut map = DensityMap::from_placement_with_pool(&nl, &p, grid, &pool); // warm-up
    let (calls, ns_per_call) = best_round_ns(reps, || {
        map.recompute_with_pool(&nl, &p, &pool);
    });
    Sample {
        kernel: "splat",
        threads,
        lanes: "wide",
        precision: "f64",
        calls,
        ns_per_call,
    }
}

fn time_advect(n: usize, num_cells: usize, threads: usize, steps: usize) -> Sample {
    let (nl, mut p, die) = clustered_design(n, num_cells);
    let cfg = DiffusionConfig::default()
        .with_bin_size(1.0)
        .with_max_steps(steps)
        .with_threads(threads)
        .with_lanes(LaneMode::Wide);
    let result = GlobalDiffusion::new(cfg).run(&nl, &die, &mut p);
    let advect = result.telemetry.kernels().advect;
    Sample {
        kernel: "advect",
        threads,
        lanes: "wide",
        precision: "f64",
        calls: advect.calls,
        ns_per_call: advect.total_ns() as f64 / advect.calls.max(1) as f64,
    }
}

fn time_stencil3d(
    n: usize,
    nz: usize,
    threads: usize,
    reps: u64,
    lanes: LaneMode,
    prec: FieldPrecision,
) -> Sample {
    let (density, wall) = bumpy_field_3d(n, nz);
    let mut e = DiffusionEngine::from_raw_3d(n, n, nz, density, Some(wall));
    e.set_threads(threads);
    e.set_lanes(lanes);
    e.set_precision(prec);
    // dt·3 ≤ 1 keeps the 7-point stencil stable.
    e.step_density(0.1); // warm-up
    let (calls, ns_per_call) = best_round_ns(reps, || {
        e.step_density(0.1);
    });
    Sample {
        kernel: "stencil3d",
        threads,
        lanes: lanes.as_str(),
        precision: prec.as_str(),
        calls,
        ns_per_call,
    }
}

/// Writes a `{"kernel": ratio, ...}` summary object from ns/call pairs,
/// emitting `null` for non-finite ratios (e.g. a kernel that never ran).
fn ratio_json(body: &mut String, key: &str, pairs: &[(&str, f64, f64)], indent: &str) {
    let _ = write!(body, "{indent}\"{key}\": {{");
    for (i, (kernel, slow_ns, fast_ns)) in pairs.iter().enumerate() {
        let sep = if i + 1 == pairs.len() { "" } else { ", " };
        let ratio = slow_ns / fast_ns;
        if ratio.is_finite() {
            let _ = write!(body, "\"{kernel}\": {ratio:.3}{sep}");
        } else {
            let _ = write!(body, "\"{kernel}\": null{sep}");
        }
    }
    let _ = write!(body, "}}");
}

/// The `stencil3d` JSON section: the volumetric 7-point FTCS sweep on an
/// `n`×`n`×`nz` stack at every thread count, with the 4-thread speedup
/// plus single-thread scalar-lane and f32-field reference timings.
fn stencil3d_json(n: usize, nz: usize, reps: u64) -> String {
    let mut samples = Vec::new();
    for &t in &THREAD_COUNTS {
        eprintln!("  stack {n}x{n}x{nz}, {t} thread(s)...");
        samples.push(time_stencil3d(
            n,
            nz,
            t,
            reps,
            LaneMode::Wide,
            FieldPrecision::F64,
        ));
    }
    eprintln!("  stack {n}x{n}x{nz}, 1 thread, scalar lanes + f32 field...");
    samples.push(time_stencil3d(
        n,
        nz,
        1,
        reps,
        LaneMode::Scalar,
        FieldPrecision::F64,
    ));
    samples.push(time_stencil3d(
        n,
        nz,
        1,
        reps,
        LaneMode::Wide,
        FieldPrecision::F32,
    ));
    let ns_of = |threads: usize, lanes: &str, prec: &str| {
        samples
            .iter()
            .find(|s| s.threads == threads && s.lanes == lanes && s.precision == prec)
            .map(|s| s.ns_per_call)
            .unwrap_or(f64::NAN)
    };
    let mut body = String::new();
    let _ = write!(
        body,
        "  \"stencil3d\": {{\n    \"nx\": {n},\n    \"ny\": {n},\n    \"nz\": {nz},\n    \"samples\": [\n"
    );
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(body, "      {}{sep}", s.json());
    }
    let speedup = ns_of(1, "wide", "f64") / ns_of(4, "wide", "f64");
    let _ = write!(body, "    ],\n    \"speedup_4t_vs_1t\": ");
    if speedup.is_finite() {
        let _ = write!(body, "{speedup:.3}");
    } else {
        let _ = write!(body, "null");
    }
    let _ = writeln!(body, ",");
    ratio_json(
        &mut body,
        "lane_speedup_1t",
        &[(
            "stencil3d",
            ns_of(1, "scalar", "f64"),
            ns_of(1, "wide", "f64"),
        )],
        "    ",
    );
    let _ = writeln!(body, ",");
    ratio_json(
        &mut body,
        "f32_speedup_1t",
        &[(
            "stencil3d",
            ns_of(1, "wide", "f64"),
            ns_of(1, "wide", "f32"),
        )],
        "    ",
    );
    let _ = write!(body, "\n  }}");
    body
}

/// Fixed serial floating-point dependency chain used as a portability
/// yardstick: `scripts/ci.sh` divides measured kernel ns/call by this
/// loop's ns/iter before comparing against its pinned ceilings, so the
/// floors track container speed instead of absolute wall time. The chain
/// is latency-bound (each iteration depends on the previous one), which
/// is also what bounds the stencil sweeps on a single core.
fn calibrate(iters: u64) -> f64 {
    let mut x = std::hint::black_box(1.0f64);
    let t0 = Instant::now();
    for _ in 0..iters {
        x = x * 1.000_000_1 + 1e-9;
    }
    let ns = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(x);
    ns / iters as f64
}

// ---------------------------------------------------------------------------
// Spectral-vs-FTCS race and its FLOP model.
// ---------------------------------------------------------------------------

/// Flops for one *paired* 1D DCT of length `n` (two real sequences packed
/// as the re/im of a single 2n-point complex FFT): ~5 flops per butterfly
/// over (2n)·log2(2n) butterflies, plus the pack/unpack and phase-twist
/// passes at ~12 flops per sample.
fn pair_dct_flops(n: usize) -> f64 {
    let m = (2 * n) as f64;
    5.0 * m * m.log2() + 12.0 * n as f64
}

/// Flops for one full 2D DCT (forward or inverse) on an `nx`×`ny` field:
/// rows transform in pairs, then columns transform in pairs.
fn transform_2d_flops(nx: usize, ny: usize) -> f64 {
    ny.div_ceil(2) as f64 * pair_dct_flops(nx) + nx.div_ceil(2) as f64 * pair_dct_flops(ny)
}

/// Flops for `steps` FTCS sweeps: the 5-point stencil costs ~10 flops per
/// bin per step (4 neighbour reads folded with 4 adds, 2 multiplies).
fn ftcs_field_flops(nx: usize, ny: usize, steps: u64) -> f64 {
    10.0 * (nx * ny) as f64 * steps as f64
}

/// Flops the spectral solver spends updating the field across a run with
/// `iterations` loop iterations: one cached forward transform, then per
/// iteration one decay pass (~2 flops per bin) and one inverse transform.
fn spectral_field_flops(nx: usize, ny: usize, iterations: u64) -> f64 {
    let transforms = 1 + iterations;
    transforms as f64 * transform_2d_flops(nx, ny) + iterations as f64 * 2.0 * (nx * ny) as f64
}

/// Bare field jump: `s_steps` FTCS sweeps versus one spectral round trip
/// (plan + forward + single decayed inverse) reaching the same diffusion
/// time. Returns `(ftcs_ns, spectral_ns)`. Wall-free field so both
/// solvers do pure dense arithmetic.
fn time_jump(n: usize, threads: usize, s_steps: u64) -> (f64, f64) {
    let (mut density, _) = bumpy_field(n);
    // No walls in this race: the spectral solver only runs on unmasked
    // grids, so the comparison is dense-vs-dense by construction.
    for d in density.iter_mut() {
        if *d == 0.0 {
            *d = 0.25;
        }
    }
    let tau = 0.1;

    let mut e = DiffusionEngine::from_raw(n, n, density.clone(), None);
    e.set_threads(threads);
    e.step_density(tau); // warm-up
    let t0 = Instant::now();
    for _ in 0..s_steps {
        e.step_density(tau);
    }
    let ftcs_ns = t0.elapsed().as_nanos() as f64;

    // One step of `step_density(tau)` advances continuous time by tau/2.
    let t_target = s_steps as f64 * tau * 0.5;
    let mut out = vec![0.0; n * n];
    let t0 = Instant::now();
    let mut solver = SpectralSolver::new(n, n, &density);
    solver.density_at(t_target, &mut out);
    let spectral_ns = t0.elapsed().as_nanos() as f64;
    assert!(out.iter().all(|d| d.is_finite()));
    (ftcs_ns, spectral_ns)
}

/// One end-to-end `GlobalDiffusion` run of the clustered design with the
/// given solver, capped at `max_steps` so neither solver converges — an
/// equal-time-budget race (both reach the same diffusion time).
fn run_e2e(n: usize, num_cells: usize, max_steps: usize, solver: SolverKind) -> (u64, f64) {
    let (nl, mut p, die) = clustered_design(n, num_cells);
    let cfg = DiffusionConfig::default()
        .with_bin_size(1.0)
        .with_max_steps(max_steps)
        .with_threads(4)
        .with_solver(solver);
    let t0 = Instant::now();
    let result = GlobalDiffusion::new(cfg).run(&nl, &die, &mut p);
    let wall_ms = t0.elapsed().as_nanos() as f64 / 1e6;
    (result.steps as u64, wall_ms)
}

/// The `spectral_vs_ftcs` JSON section for one grid.
fn spectral_race_json(n: usize, num_cells: usize, jump_steps: u64, e2e_cap: usize) -> String {
    eprintln!("  grid {n}x{n}, spectral-vs-FTCS race...");
    let (jump_ftcs_ns, jump_spectral_ns) = time_jump(n, 4, jump_steps);
    let (ftcs_steps, ftcs_ms) = run_e2e(n, num_cells, e2e_cap, SolverKind::Ftcs);
    let (spec_iters, spec_ms) = run_e2e(n, num_cells, e2e_cap, SolverKind::Spectral);
    let f_flops = ftcs_field_flops(n, n, ftcs_steps);
    let s_flops = spectral_field_flops(n, n, spec_iters);
    let mut body = String::new();
    let _ = write!(
        body,
        "      \"spectral_vs_ftcs\": {{\n\
         \x20       \"jump\": {{\"ftcs_steps\": {jump_steps}, \"ftcs_ns\": {jump_ftcs_ns:.0}, \
         \"spectral_round_trip_ns\": {jump_spectral_ns:.0}, \"wall_speedup\": {:.2}}},\n\
         \x20       \"e2e\": {{\"max_steps\": {e2e_cap}, \"ftcs_steps\": {ftcs_steps}, \
         \"ftcs_wall_ms\": {ftcs_ms:.1}, \"spectral_iterations\": {spec_iters}, \
         \"spectral_wall_ms\": {spec_ms:.1}}},\n\
         \x20       \"field_update_flops\": {{\"ftcs\": {f_flops:.3e}, \"spectral\": {s_flops:.3e}, \
         \"flops_ratio\": {:.1}}}\n\
         \x20     }}",
        jump_ftcs_ns / jump_spectral_ns,
        f_flops / s_flops,
    );
    body
}

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_kernels.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    eprintln!("perf_kernels: {cores} hardware thread(s) available (smoke: {smoke})");

    let grids: &[usize] = if smoke { &[64] } else { &[256, 1024] };
    let mut grids_json = Vec::new();
    for &n in grids {
        // Scale repetitions so the large grid stays in budget on one core.
        let reps: u64 = if smoke {
            4
        } else if n <= 256 {
            40
        } else {
            8
        };
        let steps: usize = if smoke {
            2
        } else if n <= 256 {
            10
        } else {
            4
        };
        // Central-quarter cluster at ~2× target density so global
        // diffusion has genuine overflow to relieve on every grid.
        let num_cells = n * n / 2;

        let mut samples = Vec::new();
        for &t in &THREAD_COUNTS {
            eprintln!("  grid {n}x{n}, {t} thread(s)...");
            samples.push(time_ftcs(n, t, reps, LaneMode::Wide, FieldPrecision::F64));
            samples.push(time_velocity(
                n,
                t,
                reps,
                LaneMode::Wide,
                FieldPrecision::F64,
            ));
            samples.push(time_splat(n, num_cells, t, reps.min(10)));
            samples.push(time_advect(n, num_cells, t, steps));
        }
        // Single-thread lane/precision ladder for the stencil kernels:
        // the scalar-lane run is the pre-lane reference path (bit-identical
        // output), the f32 run is the opt-in single-precision field mode.
        eprintln!("  grid {n}x{n}, 1 thread, scalar lanes + f32 field...");
        samples.push(time_ftcs(n, 1, reps, LaneMode::Scalar, FieldPrecision::F64));
        samples.push(time_velocity(
            n,
            1,
            reps,
            LaneMode::Scalar,
            FieldPrecision::F64,
        ));
        samples.push(time_ftcs(n, 1, reps, LaneMode::Wide, FieldPrecision::F32));
        samples.push(time_velocity(
            n,
            1,
            reps,
            LaneMode::Wide,
            FieldPrecision::F32,
        ));

        // Speedup at 4 threads vs 1 thread, per kernel (production mode).
        let ns_of = |kernel: &str, threads: usize, lanes: &str, prec: &str| {
            samples
                .iter()
                .find(|s| {
                    s.kernel == kernel
                        && s.threads == threads
                        && s.lanes == lanes
                        && s.precision == prec
                })
                .map(|s| s.ns_per_call)
                .unwrap_or(f64::NAN)
        };
        let mut body = String::new();
        let _ = write!(body, "    {{\n      \"nx\": {n},\n      \"ny\": {n},\n      \"cells\": {num_cells},\n      \"samples\": [\n");
        for (i, s) in samples.iter().enumerate() {
            let sep = if i + 1 == samples.len() { "" } else { "," };
            let _ = writeln!(body, "        {}{sep}", s.json());
        }
        let _ = write!(body, "      ],\n      \"speedup_4t_vs_1t\": {{");
        for (i, k) in ["ftcs", "velocity", "advect", "splat"].iter().enumerate() {
            let sep = if i == 3 { "" } else { ", " };
            let speedup = ns_of(k, 1, "wide", "f64") / ns_of(k, 4, "wide", "f64");
            if speedup.is_finite() {
                let _ = write!(body, "\"{k}\": {speedup:.3}{sep}");
            } else {
                let _ = write!(body, "\"{k}\": null{sep}");
            }
        }
        let _ = writeln!(body, "}},");
        ratio_json(
            &mut body,
            "lane_speedup_1t",
            &[
                (
                    "ftcs",
                    ns_of("ftcs", 1, "scalar", "f64"),
                    ns_of("ftcs", 1, "wide", "f64"),
                ),
                (
                    "velocity",
                    ns_of("velocity", 1, "scalar", "f64"),
                    ns_of("velocity", 1, "wide", "f64"),
                ),
            ],
            "      ",
        );
        let _ = writeln!(body, ",");
        ratio_json(
            &mut body,
            "f32_speedup_1t",
            &[
                (
                    "ftcs",
                    ns_of("ftcs", 1, "wide", "f64"),
                    ns_of("ftcs", 1, "wide", "f32"),
                ),
                (
                    "velocity",
                    ns_of("velocity", 1, "wide", "f64"),
                    ns_of("velocity", 1, "wide", "f32"),
                ),
            ],
            "      ",
        );
        let _ = writeln!(body, ",");
        // Equal-time-budget race: cap the step count so neither solver
        // converges; both then reach the same diffusion time and the
        // field-update FLOP comparison is apples to apples.
        let jump_steps: u64 = if smoke { 50 } else { 500 };
        let e2e_cap: usize = if smoke { 200 } else { 2000 };
        let _ = write!(
            body,
            "{}\n    }}",
            spectral_race_json(n, num_cells, jump_steps, e2e_cap)
        );
        grids_json.push(body);
    }

    let (n3, nz3, reps3): (usize, usize, u64) = if smoke { (48, 4, 4) } else { (192, 8, 20) };
    let stencil3d = stencil3d_json(n3, nz3, reps3);

    eprintln!("  calibration loop...");
    let cal_iters: u64 = if smoke { 20_000_000 } else { 50_000_000 };
    let cal_ns = calibrate(cal_iters);

    let json = format!(
        "{{\n  \"bench\": \"perf_kernels\",\n  \"hardware_threads\": {cores},\n  \"thread_counts\": [1, 2, 4, 8],\n  \"note\": \"Deterministic workloads; parallel results are bit-identical to serial. Speedups above 1.0 require more than one hardware thread. Sample keys lanes/precision record the kernel configuration: lanes is wide (explicit 4-wide f64 / 8-wide f32 chunks) or scalar (reference path, bit-identical in f64), precision is the field storage type; non-stencil kernels always report wide/f64. ns_per_call is the fastest of up to 8 timing rounds (calls = total calls made), which filters CI-box throttle noise; the calibration section records a serial FP dependency chain timed in the same process, so ns_per_call divided by ns_per_iter is a machine-independent throughput unit.\",\n  \"calibration\": {{\"iters\": {cal_iters}, \"ns_per_iter\": {cal_ns:.3}}},\n  \"grids\": [\n{}\n  ],\n{stencil3d}\n}}\n",
        grids_json.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_kernels.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
