//! End-to-end test of the Bookshelf flow the CLI automates: export a
//! design, reload it, legalize, write the `.pl`, and reload *that*.

use diffuplace::bookshelf::{load_design, BookshelfDesign};
use diffuplace::gen::{CircuitSpec, InflationSpec};
use diffuplace::legalize::{run_legalizer, DiffusionLegalizer};
use diffuplace::place::{check_legality, hpwl};

#[test]
fn bookshelf_export_legalize_reimport() {
    let mut bench = CircuitSpec::small(121).generate();
    bench.inflate(&InflationSpec::random_width(0.1, 1.6, 122));

    // Export, then reload — the loaded design must describe the same
    // problem.
    let exported = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
    let loaded = load_design(
        &exported.write_nodes(),
        &exported.write_nets(),
        &exported.write_pl(),
        &exported.write_scl(),
    )
    .expect("round trip");
    let twl_orig = hpwl(&bench.netlist, &bench.placement);
    let twl_loaded = hpwl(&loaded.netlist, &loaded.placement);
    assert!((twl_orig - twl_loaded).abs() < 1e-6 * twl_orig);

    // Legalize the reloaded design.
    let mut placement = loaded.placement.clone();
    let outcome = run_legalizer(
        &DiffusionLegalizer::local_default(),
        &loaded.netlist,
        &loaded.die,
        &mut placement,
    );
    assert!(outcome.is_legal, "{outcome}");

    // Export the legalized placement and reload once more: still legal,
    // same wirelength.
    let legal_export = BookshelfDesign::from_parts(&loaded.netlist, &loaded.die, &placement);
    let relegal = load_design(
        &legal_export.write_nodes(),
        &legal_export.write_nets(),
        &legal_export.write_pl(),
        &legal_export.write_scl(),
    )
    .expect("second round trip");
    let report = check_legality(&relegal.netlist, &relegal.die, &relegal.placement, 5);
    assert!(report.is_legal(), "{report}");
    let twl_a = hpwl(&loaded.netlist, &placement);
    let twl_b = hpwl(&relegal.netlist, &relegal.placement);
    assert!((twl_a - twl_b).abs() < 1e-6 * twl_a);
}
