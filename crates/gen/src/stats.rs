//! Workload statistics: sanity checks that generated circuits look like
//! real ones.
//!
//! The substitution argument in DESIGN.md rests on generated circuits
//! having realistic *structure* — net degrees, pin counts, utilization,
//! whitespace distribution. This module measures those properties so the
//! Table I reproduction (and the tests) can assert them instead of
//! assuming them.

use crate::Benchmark;
use dpm_place::{check_legality, BinGrid, DensityMap};
use std::fmt;

/// Structural statistics of a benchmark circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Movable cells.
    pub movable_cells: usize,
    /// Fixed macros.
    pub macros: usize,
    /// I/O pads.
    pub pads: usize,
    /// Nets with at least two pins.
    pub connected_nets: usize,
    /// Pins per net: histogram over degrees 2..=9 (index 0 = degree 2),
    /// with a final bucket for ≥10.
    pub net_degree_histogram: [usize; 9],
    /// Mean pins per connected net.
    pub mean_net_degree: f64,
    /// Mean pins per movable cell.
    pub mean_pins_per_cell: f64,
    /// Movable area / die area.
    pub utilization: f64,
    /// Peak bin density at a 4-row-height bin size.
    pub peak_density: f64,
    /// Total pairwise overlap area / movable area (the paper's Table X
    /// "overlap %").
    pub overlap_fraction: f64,
}

impl WorkloadStats {
    /// Measures a benchmark.
    pub fn measure(bench: &Benchmark) -> Self {
        let nl = &bench.netlist;
        let movable_cells = nl.movable_cell_ids().count();
        let macros = nl.macro_ids().count();
        let pads = nl.num_cells() - movable_cells - macros;

        let mut histogram = [0usize; 9];
        let mut connected = 0usize;
        let mut degree_sum = 0usize;
        for net in nl.net_ids() {
            let k = nl.net(net).pins.len();
            if k < 2 {
                continue;
            }
            connected += 1;
            degree_sum += k;
            let bucket = (k - 2).min(8);
            histogram[bucket] += 1;
        }

        let movable_pin_count: usize = nl.movable_cell_ids().map(|c| nl.cell(c).pins.len()).sum();

        let grid = BinGrid::new(bench.die.outline(), 4.0 * bench.die.row_height());
        let density = DensityMap::from_placement(nl, &bench.placement, grid);
        let report = check_legality(nl, &bench.die, &bench.placement, 0);

        Self {
            movable_cells,
            macros,
            pads,
            connected_nets: connected,
            net_degree_histogram: histogram,
            mean_net_degree: if connected == 0 {
                0.0
            } else {
                degree_sum as f64 / connected as f64
            },
            mean_pins_per_cell: if movable_cells == 0 {
                0.0
            } else {
                movable_pin_count as f64 / movable_cells as f64
            },
            utilization: nl.movable_area() / bench.die.area(),
            peak_density: density.max_density(),
            overlap_fraction: report.total_overlap_area / nl.movable_area().max(1e-12),
        }
    }
}

impl fmt::Display for WorkloadStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} movable cells, {} macros, {} pads, {} nets (mean degree {:.2})",
            self.movable_cells, self.macros, self.pads, self.connected_nets, self.mean_net_degree
        )?;
        writeln!(
            f,
            "utilization {:.2}, peak density {:.2}, overlap {:.2}% of movable area",
            self.utilization,
            self.peak_density,
            self.overlap_fraction * 100.0
        )?;
        write!(f, "net degrees 2..=10+: {:?}", self.net_degree_histogram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitSpec, InflationSpec};

    #[test]
    fn generated_circuit_has_realistic_structure() {
        let bench = CircuitSpec::small(71).generate();
        let s = WorkloadStats::measure(&bench);
        assert_eq!(s.movable_cells, 1000);
        // Net degrees: dominated by 2-5 pin nets like real standard-cell
        // netlists; mean between 2 and 5.
        assert!(
            s.mean_net_degree >= 2.0 && s.mean_net_degree <= 5.0,
            "{}",
            s.mean_net_degree
        );
        assert!(s.net_degree_histogram[0] > 0, "some 2-pin nets must exist");
        assert!(
            s.net_degree_histogram[8] < s.connected_nets / 10,
            "few giant nets"
        );
        // Pins per cell in the 2-6 range typical of standard cells.
        assert!(s.mean_pins_per_cell >= 1.5 && s.mean_pins_per_cell <= 6.0);
        // Legal placement: no overlap, utilization near target.
        assert_eq!(s.overlap_fraction, 0.0);
        assert!((s.utilization - 0.7).abs() < 0.15, "{}", s.utilization);
    }

    #[test]
    fn inflation_shows_up_in_overlap_fraction() {
        let mut bench = CircuitSpec::small(72).generate();
        let before = WorkloadStats::measure(&bench);
        bench.inflate(&InflationSpec::random_width(0.1, 1.6, 73));
        let after = WorkloadStats::measure(&bench);
        assert_eq!(before.overlap_fraction, 0.0);
        assert!(after.overlap_fraction > 0.01, "{}", after.overlap_fraction);
        assert!(after.peak_density > before.peak_density);
    }

    #[test]
    fn display_summarizes() {
        let bench = CircuitSpec::small(74).generate();
        let s = WorkloadStats::measure(&bench).to_string();
        assert!(s.contains("movable cells"));
        assert!(s.contains("utilization"));
    }
}
