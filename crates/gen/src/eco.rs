//! ECO workloads that *add* cells: buffer insertion.
//!
//! The paper's first motivating example of placement migration: "during
//! physical synthesis, one may insert buffers and repower gates, thereby
//! creating overlapping cells. The new instance needs to be legalized,
//! but one wants to avoid moving any cell too far away from its original
//! location." Inflation (the [`InflationSpec`](crate::InflationSpec)
//! workloads) models repowering; this module models the buffer half: the
//! longest nets get a buffer inserted at their centroid, landing on top
//! of whatever is already placed there.

use crate::Benchmark;
use dpm_geom::Point;
use dpm_netlist::{CellKind, NetlistBuilder, PinDir};
use dpm_place::{hpwl, net_hpwl, Placement};

impl Benchmark {
    /// Inserts buffers on the `fraction` longest nets (by HPWL), placing
    /// each buffer at its net's pin centroid. The netlist is rebuilt
    /// (cell/net ids of existing objects are preserved in order); the
    /// placement keeps every existing cell exactly where it was, so the
    /// result typically overlaps and needs legalization.
    ///
    /// `buffer_width` is the new cells' width (height = row height).
    /// Returns the number of buffers inserted.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]` or `buffer_width` is not
    /// positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_gen::CircuitSpec;
    /// use dpm_place::check_legality;
    ///
    /// let mut bench = CircuitSpec::small(17).generate();
    /// let cells_before = bench.netlist.num_cells();
    /// let inserted = bench.insert_buffers(0.05, 6.0);
    /// assert!(inserted > 0);
    /// assert_eq!(bench.netlist.num_cells(), cells_before + inserted);
    /// ```
    pub fn insert_buffers(&mut self, fraction: f64, buffer_width: f64) -> usize {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        assert!(buffer_width > 0.0, "buffer width must be positive");

        // Pick the longest nets with at least a driver and one sink.
        let mut candidates: Vec<(f64, dpm_netlist::NetId)> = self
            .netlist
            .net_ids()
            .filter(|&n| self.netlist.driver_of(n).is_some() && self.netlist.net(n).pins.len() >= 2)
            .map(|n| (net_hpwl(&self.netlist, &self.placement, n), n))
            .collect();
        candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
        let count = ((candidates.len() as f64) * fraction).round() as usize;
        let buffered: std::collections::HashSet<_> =
            candidates.iter().take(count).map(|&(_, n)| n).collect();
        if buffered.is_empty() {
            return 0;
        }

        // Rebuild the netlist: same cells (same order ⇒ same ids), then
        // one buffer per selected net; selected nets are split in two.
        let row_height = self.die.row_height();
        let mut b = NetlistBuilder::with_capacity(
            self.netlist.num_cells() + buffered.len(),
            self.netlist.num_nets() + buffered.len(),
            self.netlist.num_pins() + 2 * buffered.len(),
        );
        for id in self.netlist.cell_ids() {
            let c = self.netlist.cell(id);
            b.add_cell_with_delay(c.name.clone(), c.width, c.height, c.kind, c.delay);
        }
        let mut new_positions: Vec<(u32, Point)> = Vec::new();
        let mut next_cell = self.netlist.num_cells() as u32;

        for net in self.netlist.net_ids() {
            let name = self.netlist.net(net).name.clone();
            if !buffered.contains(&net) {
                let nid = b.add_net(name);
                for &p in &self.netlist.net(net).pins {
                    let pin = self.netlist.pin(p);
                    b.connect(pin.cell, nid, pin.dir, pin.offset.x, pin.offset.y);
                }
                continue;
            }
            // Split: driver keeps the original net; the buffer drives a
            // new net feeding all the sinks.
            let centroid = self
                .placement
                .net_centroid(&self.netlist, net)
                .expect("buffered nets have pins");
            let buf = b.add_cell_with_delay(
                format!("buf_{name}"),
                buffer_width,
                row_height,
                CellKind::Movable,
                0.5,
            );
            debug_assert_eq!(buf.raw(), next_cell);
            new_positions.push((
                next_cell,
                Point::new(
                    centroid.x - buffer_width / 2.0,
                    centroid.y - row_height / 2.0,
                ),
            ));
            next_cell += 1;

            let upstream = b.add_net(name.clone());
            let downstream = b.add_net(format!("{name}_buf"));
            let driver = self.netlist.driver_of(net).expect("checked above");
            for &p in &self.netlist.net(net).pins {
                let pin = self.netlist.pin(p);
                if p == driver {
                    b.connect(
                        pin.cell,
                        upstream,
                        PinDir::Output,
                        pin.offset.x,
                        pin.offset.y,
                    );
                } else {
                    b.connect(pin.cell, downstream, pin.dir, pin.offset.x, pin.offset.y);
                }
            }
            b.connect(buf, upstream, PinDir::Input, 0.0, row_height / 2.0);
            b.connect(
                buf,
                downstream,
                PinDir::Output,
                buffer_width,
                row_height / 2.0,
            );
        }

        let new_netlist = b.build().expect("rebuilt netlist is structurally valid");
        let mut new_placement = Placement::new(new_netlist.num_cells());
        for id in self.netlist.cell_ids() {
            new_placement.set(id, self.placement.get(id));
        }
        for &(raw, pos) in &new_positions {
            new_placement.set(dpm_netlist::CellId::new(raw), pos);
        }
        self.netlist = new_netlist;
        self.placement = new_placement;
        buffered.len()
    }

    /// Total HPWL of the current placement — convenience used by the ECO
    /// examples and tests.
    pub fn wirelength(&self) -> f64 {
        hpwl(&self.netlist, &self.placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitSpec;
    use dpm_place::check_legality;

    #[test]
    fn inserts_expected_count() {
        let mut bench = CircuitSpec::small(51).generate();
        let nets_before = bench.netlist.num_nets();
        let inserted = bench.insert_buffers(0.05, 6.0);
        assert!(inserted > 10, "inserted only {inserted}");
        // Each buffered net becomes two nets.
        assert_eq!(bench.netlist.num_nets(), nets_before + inserted);
    }

    #[test]
    fn existing_cells_do_not_move() {
        let mut bench = CircuitSpec::small(52).generate();
        let before = bench.placement.clone();
        let n_before = before.len();
        bench.insert_buffers(0.05, 6.0);
        for i in 0..n_before {
            let id = dpm_netlist::CellId::new(i as u32);
            assert_eq!(bench.placement.get(id), before.get(id));
        }
    }

    #[test]
    fn buffers_land_on_net_centroids_and_overlap() {
        let mut bench = CircuitSpec::small(53).generate();
        assert!(check_legality(&bench.netlist, &bench.die, &bench.placement, 0).is_legal());
        bench.insert_buffers(0.08, 6.0);
        let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 0);
        assert!(!report.is_legal(), "buffer insertion should create overlap");
    }

    #[test]
    fn netlist_stays_a_dag_and_timing_works() {
        let mut bench = CircuitSpec::small(54).generate();
        bench.insert_buffers(0.05, 6.0);
        let lv = dpm_netlist::levelize(&bench.netlist);
        assert!(lv.is_acyclic(), "{} cells stuck on cycles", lv.cyclic.len());
    }

    #[test]
    fn buffering_then_legalizing_is_consistent() {
        let mut bench = CircuitSpec::small(55).generate();
        bench.insert_buffers(0.05, 6.0);
        // HPWL accessor agrees with the free function.
        assert_eq!(bench.wirelength(), hpwl(&bench.netlist, &bench.placement));
    }

    #[test]
    fn zero_fraction_is_a_no_op() {
        let mut bench = CircuitSpec::small(56).generate();
        let cells = bench.netlist.num_cells();
        assert_eq!(bench.insert_buffers(0.0, 6.0), 0);
        assert_eq!(bench.netlist.num_cells(), cells);
    }
}
