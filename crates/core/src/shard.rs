//! Die partitioning for horizontal sharding of the migration service.
//!
//! The paper's local diffusion (Algorithm 2/3) confines work to windows
//! around overfull bins, which makes a *region of the die* the natural
//! unit of horizontal scale: density fields decompose cleanly over
//! rectangular regions as long as boundary conditions are exchanged.
//! This module supplies the geometry half of that story:
//!
//! - [`ShardPartition`] splits a die's bin grid into K rectangular shard
//!   regions aligned to bin boundaries, each carrying an H-bin **halo**
//!   — a ring of neighbor bins whose cells are copied in as read-only
//!   ghosts so every shard sees the density context just beyond its own
//!   edge;
//! - [`ShardPartition::extract_problem`] cuts one shard out as a
//!   self-contained sub-problem (sub-netlist, sub-die, sub-placement)
//!   that any diffusion runner — or a remote `dpm-serve` server — can
//!   process without knowing it is a shard;
//! - [`stitch_positions`] merges a shard's result back into the global
//!   placement, writing **owned cells only**: every cell is owned by
//!   exactly one shard (the one whose core region contains its center),
//!   and whatever a shard did to its ghost copies is discarded — the
//!   neighbor that owns them has the authoritative answer.
//!
//! The routing loop that alternates shard-local diffusion passes with
//! halo refreshes lives in `dpm-serve`'s `ShardRouter`; this module is
//! deliberately transport-free.

use dpm_geom::{Point, Rect};
use dpm_netlist::{CellId, CellKind, Netlist, NetlistBuilder};
use dpm_place::{BinGrid, BinIdx, Die, Placement};

/// A half-open rectangular block of bins: columns `[j0, j1)`, rows
/// `[k0, k1)` of a [`BinGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinRect {
    /// First column (inclusive).
    pub j0: usize,
    /// First row (inclusive).
    pub k0: usize,
    /// Past-the-end column.
    pub j1: usize,
    /// Past-the-end row.
    pub k1: usize,
}

impl BinRect {
    /// Width in bins.
    #[inline]
    pub fn width(&self) -> usize {
        self.j1.saturating_sub(self.j0)
    }

    /// Height in bins.
    #[inline]
    pub fn height(&self) -> usize {
        self.k1.saturating_sub(self.k0)
    }

    /// Number of bins covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.width() * self.height()
    }

    /// `true` if the block covers no bins.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the block contains bin `b`.
    #[inline]
    pub fn contains(&self, b: BinIdx) -> bool {
        b.j >= self.j0 && b.j < self.j1 && b.k >= self.k0 && b.k < self.k1
    }

    /// The block grown by `h` bins on every side, clamped to an
    /// `nx × ny` grid. A block already touching a grid edge simply stops
    /// there — a shard narrower than the halo width ends up with a halo
    /// covering the whole axis, which is valid (just not useful).
    pub fn expanded(&self, h: usize, nx: usize, ny: usize) -> BinRect {
        BinRect {
            j0: self.j0.saturating_sub(h),
            k0: self.k0.saturating_sub(h),
            j1: (self.j1 + h).min(nx),
            k1: (self.k1 + h).min(ny),
        }
    }

    /// World rectangle covered by the block. Edges that coincide with
    /// the grid boundary reuse the grid region's own coordinates
    /// bit-for-bit, so a block covering the whole grid reproduces
    /// `grid.region()` exactly.
    pub fn world_rect(&self, grid: &BinGrid) -> Rect {
        let region = grid.region();
        let llx = if self.j0 == 0 {
            region.llx
        } else {
            region.llx + self.j0 as f64 * grid.bin_width()
        };
        let lly = if self.k0 == 0 {
            region.lly
        } else {
            region.lly + self.k0 as f64 * grid.bin_height()
        };
        let urx = if self.j1 == grid.nx() {
            region.urx
        } else {
            region.llx + self.j1 as f64 * grid.bin_width()
        };
        let ury = if self.k1 == grid.ny() {
            region.ury
        } else {
            region.lly + self.k1 as f64 * grid.bin_height()
        };
        Rect::new(llx, lly, urx, ury)
    }
}

/// One shard of a [`ShardPartition`]: the exclusively-owned `core`
/// block plus the halo-expanded block the shard actually sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRegion {
    /// Shard index within the partition.
    pub index: usize,
    /// Bins this shard owns exclusively. Cores tile the grid: every bin
    /// belongs to exactly one core.
    pub core: BinRect,
    /// `core` grown by the halo width and clamped to the grid; always
    /// contains `core`. Cells in `halo \ core` enter the shard's
    /// sub-problem as read-only ghosts.
    pub halo: BinRect,
}

/// A partition of a die's bin grid into K rectangular shard regions
/// with H-bin halos.
///
/// The requested shard count is factored into a `kx × ky` grid of
/// near-square regions; each axis is split into contiguous chunks whose
/// sizes differ by at most one bin, so dies that do not divide evenly
/// still partition cleanly. If the grid has fewer bins than requested
/// shards on an axis the count is clamped — [`len`](Self::len) reports
/// the number of shards actually created.
///
/// # Examples
///
/// ```
/// use dpm_place::Die;
/// use dpm_diffusion::ShardPartition;
///
/// let die = Die::new(192.0, 96.0, 12.0);
/// let part = ShardPartition::new(&die, 24.0, 4, 2);
/// assert_eq!(part.len(), 4);
/// // Cores tile the grid: every bin is owned by exactly one shard.
/// let owners: Vec<usize> = part
///     .grid()
///     .iter()
///     .map(|b| part.owner_of_bin(b))
///     .collect();
/// assert!(owners.iter().all(|&o| o < 4));
/// ```
#[derive(Debug, Clone)]
pub struct ShardPartition {
    grid: BinGrid,
    halo_bins: usize,
    kx: usize,
    ky: usize,
    shards: Vec<ShardRegion>,
}

/// Splits `n` items into `k` contiguous chunks with sizes differing by
/// at most one; chunk `c` spans `[c*n/k, (c+1)*n/k)`.
#[inline]
fn chunk_bounds(n: usize, k: usize, c: usize) -> (usize, usize) {
    (c * n / k, (c + 1) * n / k)
}

/// Which chunk of `k` over `n` items contains item `i`.
#[inline]
fn chunk_of(n: usize, k: usize, i: usize) -> usize {
    // (i*k)/n inverts the floor-division bounds up to boundary rounding;
    // fix up with a bounded scan.
    let mut c = (i * k / n).min(k - 1);
    loop {
        let (lo, hi) = chunk_bounds(n, k, c);
        if i < lo {
            c -= 1;
        } else if i >= hi {
            c += 1;
        } else {
            return c;
        }
    }
}

impl ShardPartition {
    /// Partitions `die` (binned at `bin_size`, exactly like the
    /// diffusion runners) into `shards` regions with `halo_bins`-wide
    /// halos.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `bin_size` is not positive.
    pub fn new(die: &Die, bin_size: f64, shards: usize, halo_bins: usize) -> Self {
        assert!(shards >= 1, "shard count must be positive");
        let grid = BinGrid::new(die.outline(), bin_size);
        let (nx, ny) = (grid.nx(), grid.ny());

        // Factor the shard count into the divisor pair that keeps the
        // most shards after clamping to the grid, breaking ties toward
        // near-square regions.
        let mut best = (1usize, 1usize);
        let mut best_count = 0usize;
        let mut best_aspect = f64::INFINITY;
        for a in 1..=shards {
            if !shards.is_multiple_of(a) {
                continue;
            }
            let b = shards / a;
            let (ax, by) = (a.min(nx), b.min(ny));
            let count = ax * by;
            let aspect = (nx as f64 / ax as f64 - ny as f64 / by as f64).abs();
            if count > best_count || (count == best_count && aspect < best_aspect) {
                best = (ax, by);
                best_count = count;
                best_aspect = aspect;
            }
        }
        let (kx, ky) = best;

        let mut regions = Vec::with_capacity(kx * ky);
        for cy in 0..ky {
            let (k0, k1) = chunk_bounds(ny, ky, cy);
            for cx in 0..kx {
                let (j0, j1) = chunk_bounds(nx, kx, cx);
                let core = BinRect { j0, k0, j1, k1 };
                regions.push(ShardRegion {
                    index: regions.len(),
                    core,
                    halo: core.expanded(halo_bins, nx, ny),
                });
            }
        }
        Self {
            grid,
            halo_bins,
            kx,
            ky,
            shards: regions,
        }
    }

    /// The bin grid the partition is aligned to — identical to the grid
    /// the diffusion runners build for the same die and bin size.
    #[inline]
    pub fn grid(&self) -> &BinGrid {
        &self.grid
    }

    /// Halo width in bins.
    #[inline]
    pub fn halo_bins(&self) -> usize {
        self.halo_bins
    }

    /// Number of shards actually created (may be less than requested on
    /// tiny grids).
    #[inline]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` if the partition has no shards (never happens — there is
    /// always at least one).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard regions, indexed by shard id.
    #[inline]
    pub fn shards(&self) -> &[ShardRegion] {
        &self.shards
    }

    /// The shard whose core owns bin `b`.
    #[inline]
    pub fn owner_of_bin(&self, b: BinIdx) -> usize {
        let cx = chunk_of(self.grid.nx(), self.kx, b.j);
        let cy = chunk_of(self.grid.ny(), self.ky, b.k);
        cy * self.kx + cx
    }

    /// The shard that owns a world point (by its containing bin; points
    /// outside the grid clamp to the nearest bin, like
    /// [`BinGrid::bin_of_point`]).
    #[inline]
    pub fn owner_of_point(&self, p: Point) -> usize {
        self.owner_of_bin(self.grid.bin_of_point(p))
    }

    /// Assigns every cell to the shard whose core contains its center —
    /// the ownership rule: exactly one shard per cell. Returns one owner
    /// index per cell, in cell-id order.
    pub fn assign_owners(&self, netlist: &Netlist, placement: &Placement) -> Vec<usize> {
        netlist
            .cell_ids()
            .map(|c| self.owner_of_point(placement.cell_center(netlist, c)))
            .collect()
    }

    /// Cuts shard `shard` out as a self-contained sub-problem, or `None`
    /// if the shard owns no cells (nothing to migrate there).
    ///
    /// The sub-problem contains, in this order:
    ///
    /// 1. every cell **owned** by the shard (center in the core), in
    ///    global cell-id order;
    /// 2. every **ghost**: movable cells and pads whose center lies in
    ///    the halo ring, plus fixed macros overlapping the halo region
    ///    at all (so density walls near the boundary stay correct).
    ///
    /// Positions stay in world coordinates — the sub-die is a window of
    /// the parent die, so no translation is ever applied and a
    /// round-trip through a shard is exact. Nets are not copied:
    /// diffusion is density-driven and never reads connectivity.
    ///
    /// The sub-die spans the halo region, snapped outward to whole
    /// parent rows (a [`Die`] must hold whole rows); a shard whose halo
    /// covers the entire grid reuses the parent die unchanged, which
    /// makes the single-shard case bit-identical to running the engine
    /// directly.
    pub fn extract_problem(
        &self,
        shard: usize,
        netlist: &Netlist,
        die: &Die,
        placement: &Placement,
        owners: &[usize],
    ) -> Option<ShardProblem> {
        let region = self.shards[shard];
        let halo_rect = region.halo.world_rect(&self.grid);

        let mut members: Vec<CellId> = Vec::new();
        let mut owned = 0usize;
        for (i, c) in netlist.cell_ids().enumerate() {
            if owners[i] == shard {
                members.push(c);
                owned += 1;
            }
        }
        if owned == 0 {
            return None;
        }
        for (i, c) in netlist.cell_ids().enumerate() {
            if owners[i] == shard {
                continue;
            }
            let cell = netlist.cell(c);
            let is_ghost = match cell.kind {
                CellKind::FixedMacro => placement.cell_rect(netlist, c).intersects(&halo_rect),
                CellKind::Movable | CellKind::Pad => region
                    .halo
                    .contains(self.grid.bin_of_point(placement.cell_center(netlist, c))),
            };
            if is_ghost {
                members.push(c);
            }
        }

        let full_grid = BinRect {
            j0: 0,
            k0: 0,
            j1: self.grid.nx(),
            k1: self.grid.ny(),
        };
        let sub_die = if region.halo == full_grid {
            die.clone()
        } else {
            let outline = die.outline();
            let rh = die.row_height();
            let r0 = (((halo_rect.lly - outline.lly) / rh + 1e-9).floor() as usize)
                .min(die.num_rows() - 1);
            let r1 = ((((halo_rect.ury - outline.lly) / rh - 1e-9).ceil() as usize).max(r0 + 1))
                .min(die.num_rows());
            let lly = outline.lly + r0 as f64 * rh;
            // Half a row of slack keeps with_origin's whole-row floor
            // from losing a row to float noise.
            let height = (r1 - r0) as f64 * rh + rh * 0.5;
            Die::with_origin(halo_rect.llx, lly, halo_rect.width(), height, rh)
        };

        let mut b = NetlistBuilder::with_capacity(members.len(), 0, 0);
        let mut sub_placement = Placement::new(members.len());
        for (local, &c) in members.iter().enumerate() {
            let cell = netlist.cell(c);
            let id = b.add_cell_with_delay(
                cell.name.clone(),
                cell.width,
                cell.height,
                cell.kind,
                cell.delay,
            );
            debug_assert_eq!(id.index(), local);
            sub_placement.set(id, placement.get(c));
        }
        let sub_netlist = b.build().expect("cells without nets always build");

        Some(ShardProblem {
            shard,
            netlist: sub_netlist,
            die: sub_die,
            placement: sub_placement,
            cell_map: members,
            owned,
        })
    }
}

/// One shard's self-contained migration sub-problem, produced by
/// [`ShardPartition::extract_problem`].
#[derive(Debug, Clone)]
pub struct ShardProblem {
    /// Index of the shard this problem was cut from.
    pub shard: usize,
    /// Sub-netlist: owned cells first (global cell-id order), then
    /// ghosts. Carries no nets — diffusion never reads connectivity.
    pub netlist: Netlist,
    /// The shard's window of the parent die (halo region snapped to
    /// whole rows), in parent world coordinates.
    pub die: Die,
    /// Positions of the sub-netlist's cells, world coordinates.
    pub placement: Placement,
    /// Local cell index → global [`CellId`]; the first
    /// [`owned`](Self::owned) entries are the owned cells.
    pub cell_map: Vec<CellId>,
    /// Number of owned cells at the head of
    /// [`cell_map`](Self::cell_map); the rest are read-only ghosts.
    pub owned: usize,
}

/// Merges a shard's result back into the global placement: writes the
/// post-migration position of every **owned** cell and discards ghost
/// movement (the owning neighbor shard has the authoritative position).
/// Returns the number of positions written.
///
/// `positions` must hold one point per sub-problem cell, in the
/// sub-netlist's cell order — exactly what a diffusion run (or a
/// `dpm-serve` `JobResponse`) produces for the sub-problem.
///
/// # Panics
///
/// Panics if `positions` does not match the sub-problem's cell count.
pub fn stitch_positions(problem: &ShardProblem, positions: &[Point], out: &mut Placement) -> usize {
    assert_eq!(
        positions.len(),
        problem.cell_map.len(),
        "shard result has a different cell count than its sub-problem"
    );
    for (local, &global) in problem.cell_map.iter().take(problem.owned).enumerate() {
        out.set(global, positions[local]);
    }
    problem.owned
}

/// One z-slab of a [`ZSlabPartition`]: a contiguous run of tiers owned
/// exclusively by one backend, plus the halo-expanded run of tiers the
/// backend actually sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZSlab {
    /// Slab index within the partition.
    pub index: usize,
    /// First owned tier (inclusive). Cores tile `[0, nz)`: every tier
    /// belongs to exactly one slab.
    pub z0: usize,
    /// Past-the-end owned tier.
    pub z1: usize,
    /// First visible tier: `z0` minus the halo width, clamped to 0.
    pub h0: usize,
    /// Past-the-end visible tier: `z1` plus the halo width, clamped to
    /// the tier count.
    pub h1: usize,
}

impl ZSlab {
    /// Number of owned tiers (always at least 1).
    #[inline]
    pub fn core_layers(&self) -> usize {
        self.z1 - self.z0
    }

    /// Number of visible tiers (core plus clamped halo).
    #[inline]
    pub fn visible_layers(&self) -> usize {
        self.h1 - self.h0
    }

    /// Whether tier `z` is owned by this slab.
    #[inline]
    pub fn owns(&self, z: usize) -> bool {
        z >= self.z0 && z < self.z1
    }

    /// Whether tier `z` is visible to this slab (owned or halo).
    #[inline]
    pub fn sees(&self, z: usize) -> bool {
        z >= self.h0 && z < self.h1
    }
}

/// Splits a volumetric grid's tier stack into `K` contiguous z-slabs,
/// each carrying an `H`-tier halo above and below — the z-axis analogue
/// of [`ShardPartition`] for 3D-IC migration, where each backend owns a
/// stack of whole tiers and sees `H` extra tiers of read-only density
/// context on each side.
///
/// Tiers are distributed by the same balanced rule as the planar
/// partition (`chunk_bounds`), so slab sizes differ by at most one tier
/// when `K` does not divide `nz`. A halo thicker than a neighbor slab
/// simply clamps at the stack boundary — the slab then sees the whole
/// stack, which is valid (just not useful for scaling).
///
/// # Examples
///
/// ```
/// use dpm_diffusion::ZSlabPartition;
///
/// let part = ZSlabPartition::new(5, 2, 1);
/// assert_eq!(part.len(), 2);
/// let lower = part.slabs()[0];
/// assert_eq!((lower.z0, lower.z1), (0, 2));
/// assert_eq!((lower.h0, lower.h1), (0, 3));
/// assert_eq!(part.owner_of_layer(2), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ZSlabPartition {
    nz: usize,
    halo_layers: usize,
    slabs: Vec<ZSlab>,
}

impl ZSlabPartition {
    /// Partitions an `nz`-tier stack into `shards` z-slabs with an
    /// `halo_layers`-tier halo. The slab count is clamped to `[1, nz]`
    /// so every slab owns at least one whole tier.
    ///
    /// # Panics
    ///
    /// Panics if `nz` is zero.
    pub fn new(nz: usize, shards: usize, halo_layers: usize) -> Self {
        assert!(nz > 0, "a volumetric stack needs at least one tier");
        let k = shards.clamp(1, nz);
        let slabs = (0..k)
            .map(|c| {
                let (z0, z1) = chunk_bounds(nz, k, c);
                ZSlab {
                    index: c,
                    z0,
                    z1,
                    h0: z0.saturating_sub(halo_layers),
                    h1: (z1 + halo_layers).min(nz),
                }
            })
            .collect();
        Self {
            nz,
            halo_layers,
            slabs,
        }
    }

    /// Number of tiers in the partitioned stack.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Halo width in tiers.
    #[inline]
    pub fn halo_layers(&self) -> usize {
        self.halo_layers
    }

    /// Number of slabs actually created (may be less than requested on
    /// short stacks).
    #[inline]
    pub fn len(&self) -> usize {
        self.slabs.len()
    }

    /// `true` if the partition has no slabs (never happens — there is
    /// always at least one).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slabs.is_empty()
    }

    /// The slabs, indexed by slab id, ordered bottom tier first.
    #[inline]
    pub fn slabs(&self) -> &[ZSlab] {
        &self.slabs
    }

    /// The slab whose core owns tier `z`.
    #[inline]
    pub fn owner_of_layer(&self, z: usize) -> usize {
        chunk_of(self.nz, self.slabs.len(), z)
    }

    /// The slab that owns a cell at depth `z` (tier units, tier `t`
    /// spanning `[t, t+1)`). Depths outside the stack clamp to the
    /// nearest tier, like [`BinGrid::bin_of_point`] does in-plane.
    #[inline]
    pub fn owner_of_depth(&self, z: f64) -> usize {
        let tier = (z.floor().max(0.0) as usize).min(self.nz - 1);
        self.owner_of_layer(tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify_windows_into;
    use dpm_place::DensityMap;

    /// `n` movable cells staggered around `at`.
    fn pile(b: &mut NetlistBuilder, p: &mut Vec<(usize, Point)>, n: usize, at: Point) {
        for i in 0..n {
            let id = b.add_cell(format!("c{}", p.len()), 6.0, 12.0, CellKind::Movable);
            p.push((
                id.index(),
                Point::new(at.x + (i % 8) as f64 * 3.0, at.y + (i / 8) as f64 * 3.0),
            ));
        }
    }

    fn design(piles: &[Point], per_pile: usize, die: Die) -> (Netlist, Die, Placement) {
        let mut b = NetlistBuilder::new();
        let mut pts = Vec::new();
        for &at in piles {
            pile(&mut b, &mut pts, per_pile, at);
        }
        let nl = b.build().expect("valid");
        let mut placement = Placement::new(nl.num_cells());
        for (c, (i, pt)) in nl.cell_ids().zip(pts) {
            assert_eq!(c.index(), i);
            placement.set(c, pt);
        }
        (nl, die, placement)
    }

    #[test]
    fn single_shard_is_a_pass_through() {
        let (nl, die, placement) =
            design(&[Point::new(30.0, 30.0)], 40, Die::new(144.0, 144.0, 12.0));
        let part = ShardPartition::new(&die, 24.0, 1, 2);
        assert_eq!(part.len(), 1);
        let region = part.shards()[0];
        assert_eq!(region.core.len(), part.grid().len());
        assert_eq!(region.halo, region.core);

        let owners = part.assign_owners(&nl, &placement);
        assert!(owners.iter().all(|&o| o == 0));
        let problem = part
            .extract_problem(0, &nl, &die, &placement, &owners)
            .expect("all cells owned");
        // Bit-identical pass-through: same die, every cell in order,
        // every position preserved.
        assert_eq!(problem.die.outline(), die.outline());
        assert_eq!(problem.die.num_rows(), die.num_rows());
        assert_eq!(problem.owned, nl.num_cells());
        assert_eq!(problem.cell_map.len(), nl.num_cells());
        for (local, &global) in problem.cell_map.iter().enumerate() {
            assert_eq!(local, global.index());
            let sub = problem.netlist.cell(CellId::new(local as u32));
            let orig = nl.cell(global);
            assert_eq!(sub.name, orig.name);
            assert_eq!(
                (sub.width, sub.height, sub.kind),
                (orig.width, orig.height, orig.kind)
            );
        }
        assert_eq!(problem.placement.as_slice(), placement.as_slice());
    }

    #[test]
    fn uneven_grid_tiles_exactly_once() {
        // 7 × 5 bins split 3 ways: the die does not divide evenly by K.
        let die = Die::new(168.0, 120.0, 12.0);
        let part = ShardPartition::new(&die, 24.0, 3, 1);
        assert_eq!((part.grid().nx(), part.grid().ny()), (7, 5));
        assert_eq!(part.len(), 3);
        // Every bin owned by exactly one core, and owner_of_bin agrees
        // with direct core containment.
        let mut per_shard = vec![0usize; part.len()];
        for b in part.grid().iter() {
            let owners: Vec<usize> = part
                .shards()
                .iter()
                .filter(|s| s.core.contains(b))
                .map(|s| s.index)
                .collect();
            assert_eq!(owners.len(), 1, "bin {b:?} owned by {owners:?}");
            assert_eq!(part.owner_of_bin(b), owners[0]);
            per_shard[owners[0]] += 1;
        }
        // Chunks differ by at most one column.
        let widths: Vec<usize> = part.shards().iter().map(|s| s.core.width()).collect();
        let (min, max) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
        assert!(max - min <= 1, "uneven split too lopsided: {widths:?}");
        assert_eq!(per_shard.iter().sum::<usize>(), part.grid().len());
    }

    #[test]
    fn halo_wider_than_shard_clamps_to_grid() {
        // 4 × 1-wide shards with a 3-bin halo: the halo swallows the
        // whole axis and must clamp instead of underflowing.
        let die = Die::new(96.0, 48.0, 12.0);
        let part = ShardPartition::new(&die, 24.0, 4, 3);
        assert_eq!((part.grid().nx(), part.grid().ny()), (4, 2));
        assert_eq!(part.len(), 4);
        for s in part.shards() {
            assert!(s.core.width() <= part.halo_bins());
            assert!(s.halo.j0 == 0 || s.halo.j0 >= s.core.j0.saturating_sub(3));
            assert!(s.halo.j1 <= part.grid().nx());
            assert!(s.halo.k1 <= part.grid().ny());
            for b in part.grid().iter() {
                if s.core.contains(b) {
                    assert!(s.halo.contains(b), "halo must contain its own core");
                }
            }
        }
        // Sub-problems still extract: every cell lands somewhere and the
        // ghosts of each shard include the neighbors' piles.
        let (nl, die, placement) =
            design(&[Point::new(10.0, 10.0), Point::new(60.0, 10.0)], 24, die);
        let owners = part.assign_owners(&nl, &placement);
        let mut owned_total = 0;
        for s in 0..part.len() {
            if let Some(p) = part.extract_problem(s, &nl, &die, &placement, &owners) {
                owned_total += p.owned;
                // Halo spans the whole grid here, so every other cell is
                // a ghost.
                assert_eq!(p.cell_map.len(), nl.num_cells());
            }
        }
        assert_eq!(owned_total, nl.num_cells());
    }

    #[test]
    fn window_straddling_a_shard_boundary_is_visible_to_both_shards() {
        // 8 × 4 bins split into two 4-column shards; a pile straddling
        // the x = 96 boundary (columns 3 and 4).
        let die = Die::new(192.0, 96.0, 12.0);
        let (nl, die, placement) = design(&[Point::new(84.0, 40.0)], 64, die);
        let part = ShardPartition::new(&die, 24.0, 2, 3);
        assert_eq!((part.grid().nx(), part.grid().ny()), (8, 4));
        assert_eq!(part.len(), 2);

        let map = DensityMap::from_placement(&nl, &placement, part.grid().clone());
        let mut avg = Vec::new();
        map.windowed_average_into(1, &mut avg);
        let mut frozen = Vec::new();
        identify_windows_into(&map, &avg, 1, 1.0, &mut frozen);

        let unfrozen: Vec<BinIdx> = part
            .grid()
            .iter()
            .filter(|&b| !frozen[part.grid().flat(b)])
            .collect();
        assert!(!unfrozen.is_empty(), "the pile must open a window");
        // The window straddles the boundary...
        assert!(unfrozen.iter().any(|b| part.shards()[0].core.contains(*b)));
        assert!(unfrozen.iter().any(|b| part.shards()[1].core.contains(*b)));
        // ...and with a halo at least as wide as the window reach, every
        // window bin is inside BOTH shards' halo regions, so each
        // sub-problem sees the full straddling window.
        for b in &unfrozen {
            assert!(
                part.shards()[0].halo.contains(*b),
                "{b:?} outside shard 0 halo"
            );
            assert!(
                part.shards()[1].halo.contains(*b),
                "{b:?} outside shard 1 halo"
            );
        }
        // Both sub-problems therefore carry ghost copies of the other
        // side's pile cells.
        let owners = part.assign_owners(&nl, &placement);
        for s in 0..2 {
            let p = part
                .extract_problem(s, &nl, &die, &placement, &owners)
                .expect("both shards own pile cells");
            assert!(p.owned > 0);
            assert!(
                p.cell_map.len() > p.owned,
                "shard {s} must see ghosts across the boundary"
            );
        }
    }

    #[test]
    fn ownership_is_exclusive_and_stitch_round_trips() {
        let die = Die::new(192.0, 96.0, 12.0);
        let (nl, die, placement) =
            design(&[Point::new(30.0, 30.0), Point::new(150.0, 50.0)], 32, die);
        let part = ShardPartition::new(&die, 24.0, 4, 2);
        let owners = part.assign_owners(&nl, &placement);
        assert_eq!(owners.len(), nl.num_cells());
        assert!(owners.iter().all(|&o| o < part.len()));

        // Extract every shard and stitch the *unchanged* sub-positions
        // back: the global placement must be reproduced exactly, each
        // cell written by exactly its owner.
        let mut out = Placement::new(nl.num_cells());
        let mut written = 0usize;
        for s in 0..part.len() {
            if let Some(problem) = part.extract_problem(s, &nl, &die, &placement, &owners) {
                let positions: Vec<Point> = problem.placement.as_slice().to_vec();
                written += stitch_positions(&problem, &positions, &mut out);
                // The sub-die must contain every owned cell's center.
                for &c in problem.cell_map.iter().take(problem.owned) {
                    let center = placement.cell_center(&nl, c);
                    assert!(
                        problem.die.outline().contains(center),
                        "owned cell {c} center outside shard {s} die"
                    );
                }
            }
        }
        assert_eq!(written, nl.num_cells());
        assert_eq!(out.as_slice(), placement.as_slice());
    }

    #[test]
    fn macros_near_the_boundary_become_ghost_walls() {
        let mut b = NetlistBuilder::new();
        // A macro sitting right on the two-shard boundary of a 192-wide
        // die, plus a movable pile in shard 0.
        let m = b.add_cell("blk", 36.0, 24.0, CellKind::FixedMacro);
        for i in 0..16 {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(192.0, 96.0, 12.0);
        let mut placement = Placement::new(nl.num_cells());
        placement.set(m, Point::new(100.0, 36.0)); // center x = 118 → shard 1
        for (i, c) in nl.cell_ids().skip(1).enumerate() {
            placement.set(
                c,
                Point::new(30.0 + (i % 4) as f64 * 4.0, 30.0 + (i / 4) as f64 * 4.0),
            );
        }
        let part = ShardPartition::new(&die, 24.0, 2, 1);
        let owners = part.assign_owners(&nl, &placement);
        assert_eq!(owners[0], 1, "macro center is in shard 1");
        let p0 = part
            .extract_problem(0, &nl, &die, &placement, &owners)
            .expect("shard 0 owns the pile");
        // The macro overlaps shard 0's halo region, so it must ride
        // along as a ghost wall even though its center is elsewhere.
        assert!(
            p0.cell_map.contains(&m),
            "boundary macro missing from shard 0 ghosts"
        );
        assert!(p0.cell_map.iter().position(|&c| c == m).unwrap() >= p0.owned);
    }

    #[test]
    fn more_shards_than_bins_clamps() {
        let die = Die::new(48.0, 24.0, 12.0); // 2 × 1 bins
        let part = ShardPartition::new(&die, 24.0, 16, 1);
        assert!(part.len() <= part.grid().len());
        assert!(!part.is_empty());
        let covered: usize = part.shards().iter().map(|s| s.core.len()).sum();
        assert_eq!(covered, part.grid().len());
    }

    #[test]
    fn z_slab_cores_tile_the_stack_when_k_divides() {
        let part = ZSlabPartition::new(6, 3, 1);
        assert_eq!(part.len(), 3);
        let sizes: Vec<usize> = part.slabs().iter().map(|s| s.core_layers()).collect();
        assert_eq!(sizes, vec![2, 2, 2]);
        for z in 0..6 {
            let owner = part.owner_of_layer(z);
            assert!(part.slabs()[owner].owns(z));
            for (i, s) in part.slabs().iter().enumerate() {
                assert_eq!(s.owns(z), i == owner, "tier {z} owned by exactly one slab");
            }
        }
    }

    #[test]
    fn z_slab_handles_k_not_dividing_layer_count() {
        let part = ZSlabPartition::new(7, 3, 1);
        let sizes: Vec<usize> = part.slabs().iter().map(|s| s.core_layers()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 7, "cores must tile the stack");
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "balanced split");
        // Slabs are contiguous bottom-to-top.
        for w in part.slabs().windows(2) {
            assert_eq!(w[0].z1, w[1].z0);
        }
    }

    #[test]
    fn z_slab_halo_thicker_than_a_slab_clamps_to_the_stack() {
        // 4 tiers, 4 slabs of 1 tier each, halo of 3 tiers: every slab
        // sees the whole stack, and nothing under/overflows.
        let part = ZSlabPartition::new(4, 4, 3);
        for s in part.slabs() {
            assert_eq!((s.h0, s.h1), (0, 4), "halo clamps to the stack");
            assert_eq!(s.core_layers(), 1);
            assert_eq!(s.visible_layers(), 4);
        }
        // Ownership is still exclusive even though visibility overlaps.
        for z in 0..4 {
            assert_eq!(part.owner_of_layer(z), z);
        }
    }

    #[test]
    fn z_slab_clamps_more_slabs_than_tiers() {
        let part = ZSlabPartition::new(3, 16, 1);
        assert_eq!(part.len(), 3, "every slab owns at least one tier");
        assert!(!part.is_empty());
    }

    #[test]
    fn z_slab_depth_ownership_clamps_out_of_range() {
        let part = ZSlabPartition::new(5, 2, 2);
        assert_eq!(part.owner_of_depth(-1.0), 0);
        assert_eq!(part.owner_of_depth(0.5), 0);
        assert_eq!(part.owner_of_depth(1.99), 0);
        assert_eq!(part.owner_of_depth(2.0), 1, "tier 2 belongs to slab 1");
        assert_eq!(part.owner_of_depth(99.0), 1);
        // A cell exactly on the slab boundary depth belongs to the upper
        // slab — its containing tier is tier 2.
        assert!(part.slabs()[1].owns(2));
        // Both slabs see the boundary tiers through their halos.
        assert!(part.slabs()[0].sees(3) && part.slabs()[1].sees(1));
    }
}
